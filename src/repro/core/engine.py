"""Event-driven training orchestration engine.

Both training modes of :class:`~repro.core.trainer.SpatioTemporalTrainer`
run on one discrete-event engine built on
:class:`~repro.simnet.events.Simulator`.  The engine schedules four kinds
of occurrences:

* **uplink arrival** — a smashed-activation message lands at its shard's
  server and is admitted into (or shed by) that shard's parameter-
  scheduling queue;
* **server step** — a shard trains on its queued messages.  In
  *asynchronous* mode a dispatch event fires per shard whenever that
  shard is free and work has arrived; in *synchronous* mode each shard's
  dispatch is a **barrier** event scheduled at the shard's last arrival
  of the round, and the shard's next round starts once its *own*
  gradients have landed — shards progress independently and meet only
  at sync rendezvous, so nobody waits for stragglers they do not own;
* **gradient landing** — a gradient message reaches its end-system, which
  finishes back-propagation and (asynchronously) ships its next batch;
* **inter-server sync** — with more than one shard, the shards'
  server-segment weights are periodically synchronized over the
  inter-server links: ``"average"`` mode installs a sample-weighted full
  average as a barrier event between rounds, ``"staleness"`` mode
  gossips snapshots whose merge coefficient decays with their transit
  staleness (see :mod:`repro.cluster.coordinator`).

The engine is **shard-generalized**: every queue, arena, backpressure
deque and dispatch state is per shard, and a single-shard cluster runs
the exact same event chains the pre-cluster engine ran (pinned to 1e-9
by ``tests/core/test_engine_equivalence.py`` and
``tests/cluster/test_cluster_equivalence.py``).

Lossy-network semantics
-----------------------
Every way a batch can be lost funnels through
:meth:`EndSystem.notify_drop`, so client-side pending activations never
leak:

* the uplink drops the message in transit (the client immediately moves
  on to its next batch);
* a bounded queue (``TrainingConfig.max_queue_size``) overflows under the
  ``"drop"`` backpressure policy.  The server NACKs the client **over the
  downlink**: the client learns of the loss one downlink delay after the
  overflow (not instantaneously), which is when it forgets the pending
  activation and ships its next batch.  A NACK lost in transit degrades
  to an immediate notification (the timeout abstraction also used for
  lost gradients), so accounting never leaks;
* the downlink drops the gradient (the client forgets the batch when the
  server's reply fails to appear).

Under the ``"block"`` backpressure policy nothing is ever shed at the
queue: an end-system defers its next send until its shard's queue has
room, counting messages already in flight towards the capacity, so
admission never overflows.  Blocked senders wait in per-shard FIFO order
and are released as the shard pops messages.

Failure injection and failover
------------------------------
With a :class:`~repro.cluster.failover.FailureModel` installed, shard
**crash/recovery transitions** become simulator events too.  A crash
sheds the shard's queued (and arena-staged) work through the same
``notify_drop`` path — counted in ``EngineStats.failover_dropped`` so
the cross-layer drop accounting still balances — takes the hub's links
down in the topology, and kills the shard's event chains via a
generation guard.  One ``failover_delay_s`` later the configured
:class:`~repro.cluster.failover.FailoverPolicy` reassigns the dead
shard's clients to the healthy survivors (their uplinks are rerouted in
the topology and they rejoin the survivors' round chains / dispatch
loops).  A recovery restores the freshest durable state available — the
newest intact checkpoint from the :class:`~repro.state.CheckpointStore`
when checkpointing is on, else the coordinator's last sync snapshot,
else the cluster's initial weights — accounts the lost work into the
shard's RPO counters, fails the original clients back (policy
permitting), and restarts the shard's chain; ``"average"`` rendezvous
and ``"staleness"`` gossip always skip unhealthy shards, so a dead hub
can neither hang a barrier nor absorb a merge.

Durable checkpoints
-------------------
With a :class:`~repro.state.CheckpointStore` installed and a
``checkpoint_every_s`` cadence configured, per-shard checkpoint captures
become simulator events as well: ``"interval"`` mode schedules a
dedicated periodic event per shard, ``"round"`` mode captures
opportunistically at round barriers / step dispatches once the cadence
has elapsed.  Captures are pure observers of the training state, and
with the feature off the engine schedules no checkpoint events at all.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..chaos.message_chaos import DUPLICATE_ARRIVAL_KEY
from ..chaos.plan import FaultEvent, FaultPlan
from ..cluster.coordinator import ClusterCoordinator
from ..cluster.failover import FailoverPolicy, FailureModel, ShardTransition
from ..cluster.shard import ServerShard
from ..nn.metrics import MetricTracker
from ..obs.plane import NULL_OBS, QUEUE_WAIT_BOUNDS_S, RETRY_BOUNDS, Observability
from ..obs.registry import samples_from_mapping
from ..simnet.events import Simulator
from ..simnet.transport import Transport
from ..state import CheckpointStore, ShardCheckpoint
from ..utils.logging import get_logger
from .config import TrainingConfig
from .end_system import EndSystem
from .messages import ActivationMessage, GradientMessage
from .server import CentralServer

__all__ = [
    "TrainingEngine",
    "EngineStats",
    "PRIORITY_ARRIVAL",
    "PRIORITY_LANDING",
    "PRIORITY_CHECKPOINT",
    "PRIORITY_FAILURE",
    "PRIORITY_OBS",
    "PRIORITY_DISPATCH",
]

logger = get_logger("core.engine")

#: Event priorities: at equal simulated times, arrivals are admitted and
#: gradients land *before* the server dispatches, so a step always sees
#: every message that has arrived by its start time.  Failure transitions
#: sit between landings and dispatches: a crash at time ``t`` still lets
#: ``t``-stamped gradients land, but kills the step that would have
#: started at ``t``.  Checkpoints sit between landings and failures: a
#: capture at ``t`` sees every ``t``-stamped landing, and a crash at the
#: same instant finds the checkpoint already durable.  Observability
#: flushes sit between failures and dispatches: a metrics snapshot at
#: ``t`` reflects post-crash state and the queue depth the next dispatch
#: will actually see.
PRIORITY_ARRIVAL = 0
PRIORITY_LANDING = 1
PRIORITY_CHECKPOINT = 2
PRIORITY_FAILURE = 3
PRIORITY_OBS = 4
PRIORITY_DISPATCH = 5


@dataclass
class EngineStats:
    """Counters the engine accumulates across runs (epochs)."""

    queue_drops: int = 0        #: messages shed by a full queue ("drop" policy)
    blocked_sends: int = 0      #: sends deferred by backpressure ("block" policy)
    cancelled_at_stop: int = 0  #: batches abandoned when a time budget cut the run
    events_processed: int = 0   #: simulator events executed
    server_steps: int = 0       #: training steps dispatched (across all shards)
    rounds: int = 0             #: synchronous rounds driven to completion
    nacks_sent: int = 0         #: queue-drop NACKs shipped over the downlink
    nacks_lost: int = 0         #: NACKs the downlink dropped (immediate fallback)
    nack_delay_total_s: float = 0.0  #: summed client-side notification delays
    weight_syncs: int = 0       #: sync events: one per "average" barrier or
                                #: per "staleness" broadcast (NOT per-destination
                                #: merge — per-shard merge counts live in
                                #: ``ServerShard.syncs_applied``)
    sync_messages: int = 0      #: weight snapshots shipped between shards
    sync_messages_lost: int = 0  #: snapshots the inter-server links dropped
    shard_crashes: int = 0      #: shard crash events applied (failure injection)
    shard_recoveries: int = 0   #: shard recovery events applied
    clients_reassigned: int = 0  #: client moves: failover to survivors + failback
    failover_dropped: int = 0   #: messages shed because their shard crashed
                                #: (queued/arena contents at crash time plus
                                #: uplinks that arrived at a dead hub) — every
                                #: one notifies its client via ``notify_drop``
    checkpoints_written: int = 0  #: per-shard checkpoints captured to the store
    retries: int = 0            #: reliable-delivery retransmissions shipped
    gave_up: int = 0            #: transfers abandoned after every retry was
                                #: physically lost (each notifies its client)
    deduped: int = 0            #: duplicate copies absorbed by the idempotent
                                #: receiver (retransmissions + chaos duplicates)
    quorum_syncs: int = 0       #: degraded "average" barriers fired on a
                                #: quorum after the sync timeout expired
    sync_timeouts: int = 0      #: sync timeouts that released the parked
                                #: shards without any sync (quorum not met)
    chaos_events: int = 0       #: chaos-plane fault events applied

    @property
    def mean_nack_delay_s(self) -> float:
        """Mean delay before a client learned of a queue drop (0 if none)."""
        if self.nacks_sent == 0:
            return 0.0
        return self.nack_delay_total_s / self.nacks_sent

    def as_dict(self) -> Dict[str, float]:
        return {
            "queue_drops": self.queue_drops,
            "blocked_sends": self.blocked_sends,
            "cancelled_at_stop": self.cancelled_at_stop,
            "events_processed": self.events_processed,
            "server_steps": self.server_steps,
            "rounds": self.rounds,
            "nacks_sent": self.nacks_sent,
            "nacks_lost": self.nacks_lost,
            "mean_nack_delay_s": self.mean_nack_delay_s,
            "weight_syncs": self.weight_syncs,
            "sync_messages": self.sync_messages,
            "sync_messages_lost": self.sync_messages_lost,
            "shard_crashes": self.shard_crashes,
            "shard_recoveries": self.shard_recoveries,
            "clients_reassigned": self.clients_reassigned,
            "failover_dropped": self.failover_dropped,
            "checkpoints_written": self.checkpoints_written,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "deduped": self.deduped,
            "quorum_syncs": self.quorum_syncs,
            "sync_timeouts": self.sync_timeouts,
            "chaos_events": self.chaos_events,
        }


class _ShardRuntime:
    """Per-shard engine state (transit counts, backpressure, dispatch)."""

    __slots__ = ("shard", "in_transit", "deferred", "waiting", "accepted",
                 "next_free", "dispatch_scheduled", "clock", "active",
                 "generation", "round_index", "chain_idle", "last_checkpoint_s",
                 "service_factor")

    def __init__(self, shard: ServerShard) -> None:
        self.shard = shard
        #: Uplink messages admitted (or in transit) but not yet resolved
        #: at this shard; counted towards queue capacity so the "block"
        #: policy can never overflow the queue on arrival.
        self.in_transit = 0
        self.deferred: Deque[EndSystem] = deque()   # sync-mode blocked senders
        self.waiting: Deque[EndSystem] = deque()    # async-mode blocked senders
        self.accepted: List[ActivationMessage] = []  # sync mode, current round
        self.next_free = 0.0
        self.dispatch_scheduled = False
        #: This shard's round clock (synchronous mode): shards progress
        #: through their rounds independently, so a shard of nearby
        #: clients is not throttled by a far-away band it does not own.
        self.clock = 0.0
        #: System ids (of this shard's clients) still holding data this
        #: epoch.
        self.active: set = set()
        #: Bumped on every crash *and* recovery: scheduled round/dispatch
        #: events capture the generation they were created under and
        #: no-op when it has moved on, so a dead shard's event chain dies
        #: cleanly and cannot double-fire after a recovery restart.
        self.generation = 0
        #: Last round index this shard started (synchronous mode); a
        #: restarted chain resumes at ``round_index + 1``.
        self.round_index = -1
        #: True while the shard has no live round chain (crashed, out of
        #: data, or down at epoch start) — the restart logic's idempotence
        #: latch.
        self.chain_idle = False
        #: Simulated time of this shard's last checkpoint capture
        #: (``checkpoint_mode="round"`` cadence; spans epochs like the
        #: round clock does).
        self.last_checkpoint_s = 0.0
        #: Chaos-plane straggler multiplier on the shard's service time
        #: (``1.0`` = nominal speed; ``x * 1.0`` is exact in IEEE-754, so
        #: an un-straggled shard's timing is bit-identical to a build
        #: without the chaos plane).
        self.service_factor = 1.0


class TrainingEngine:
    """Discrete-event orchestrator shared by both training modes.

    Parameters
    ----------
    end_systems:
        The deployment's clients, in system-id order.
    transport:
        Network transport over the (possibly multi-hub) topology.
    system_to_node:
        Map from end-system ids to topology node names.
    config:
        Training configuration; the engine consults ``mode``-independent
        fields (``server_batching``, ``server_step_time_s``,
        ``max_in_flight``, ``max_queue_size``, ``queue_backpressure``).
        The weight-sync cadence and mode live on the ``cluster``.
    cluster:
        The shard cluster (owns the sync cadence/mode the trainer seeds
        from the config).  May be omitted (legacy single-server
        construction) when ``server`` is given instead.
    server:
        Legacy single-server argument; wrapped into a one-shard cluster.
    failure_model:
        Optional :class:`~repro.cluster.failover.FailureModel` whose
        crash/recovery transitions are injected as simulator events.
        ``None`` (the default) disables failure injection entirely — the
        engine then runs the exact event chains it ran before failures
        existed.
    failover:
        The :class:`~repro.cluster.failover.FailoverPolicy` applied when
        a shard crashes (reassign its clients to survivors, or park them
        until recovery).  Only consulted when a failure model is set.
    checkpoint_store:
        Optional :class:`~repro.state.CheckpointStore` the engine writes
        per-shard checkpoints to on the ``config.checkpoint_every_s``
        cadence, and reads from at crash recovery (the newest intact
        checkpoint is preferred over the last sync snapshot).  ``None``
        — or a ``None`` cadence — disables checkpointing entirely: no
        events are scheduled and no state is touched, so the run is
        byte-for-byte identical to a checkpoint-free build.
    """

    def __init__(
        self,
        end_systems: List[EndSystem],
        transport: Transport,
        system_to_node: Dict[int, str],
        config: TrainingConfig,
        cluster: Optional[ClusterCoordinator] = None,
        server: Optional[CentralServer] = None,
        failure_model: Optional[FailureModel] = None,
        failover: Optional[FailoverPolicy] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        fault_plan: Optional[FaultPlan] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.end_systems = list(end_systems)
        if cluster is None:
            if server is None:
                raise ValueError("need either a cluster or a server")
            cluster = ClusterCoordinator(
                shards=[ServerShard(0, server, "server")],
                assignment={es.system_id: 0 for es in self.end_systems},
                sync_every=config.server_sync_every,
                sync_mode=config.server_sync_mode,
            )
        self.cluster = cluster
        #: Shard 0's server (back-compat alias for single-server callers).
        self.server = cluster.shards[0].server
        self.transport = transport
        self.system_to_node = dict(system_to_node)
        self.config = config
        self.clock = 0.0
        self.stats = EngineStats()
        self._by_id = {end_system.system_id: end_system for end_system in self.end_systems}
        self._runtimes: List[_ShardRuntime] = [
            _ShardRuntime(shard) for shard in cluster.shards
        ]
        self._runtime_of: Dict[int, _ShardRuntime] = {
            system_id: self._runtimes[shard_index]
            for system_id, shard_index in cluster.assignment.items()
        }
        # Queue-dropped batches whose NACK is still in flight, keyed by
        # activation sequence; a budget stop resolves them immediately.
        self._awaiting_nack: Dict[int, Tuple[EndSystem, int]] = {}
        self.failure_model = failure_model
        self.failover = failover
        self.checkpoint_store = checkpoint_store
        #: Chaos plane: scripted/stochastic network and client faults,
        #: injected as simulator events exactly like shard failures.
        self.fault_plan = fault_plan
        #: Observability plane (repro.obs).  The default NULL_OBS bundle
        #: answers every hook with a no-op, so an obs-off run executes
        #: the identical simulation codepath (pinned byte-identical by
        #: tests/obs/test_obs_equivalence.py).  Instruments are resolved
        #: once here; the hot paths only ``observe``/``inc`` on them.
        self.obs = obs if obs is not None else NULL_OBS
        self.obs.registry.register_collector(
            lambda: samples_from_mapping("engine", self.stats.as_dict()))
        self._obs_queue_wait = self.obs.registry.histogram(
            "engine.queue_wait_seconds", QUEUE_WAIT_BOUNDS_S)
        self._obs_retries = self.obs.registry.histogram(
            "engine.retries_per_transfer", RETRY_BOUNDS)
        #: Attempts shipped by the most recent reliable transfer (trace
        #: span annotation only; meaningless with reliability off).
        self._obs_last_attempts = 0
        #: Retry-timeout jitter stream (reliable delivery only): seeded
        #: from the run seed so identical configs retry identically;
        #: ``None`` with the feature off so no RNG state even exists.
        self._retry_rng: Optional[np.random.Generator] = (
            np.random.default_rng(config.seed + 15485863)
            if config.reliable_delivery else None
        )
        #: Whether arriving uplink copies must be deduplicated: reliable
        #: delivery retransmits, and chaos duplication clones — either
        #: one can land several copies of a single logical message.
        self._dedup_enabled = (
            config.reliable_delivery or config.chaos_duplicate_probability > 0.0
        )
        # Deferred sends of clients whose shard is down (async mode):
        # system id -> number of sends to re-issue once the client is
        # failed over or its shard recovers.
        self._stranded: Dict[int, int] = {}
        # Per-epoch callbacks the mode drivers install so the shared
        # crash/recovery machinery can restart round chains, re-trigger
        # sends and unblock rendezvous without knowing the mode.
        self._epoch_hooks: Dict[str, object] = self._inert_hooks()

    @staticmethod
    def _inert_hooks() -> Dict[str, object]:
        return {
            "live": lambda: False,
            "on_shard_down": lambda sim, runtime, flushed, parked: None,
            "on_shard_up": lambda sim, runtime: None,
            "on_client_moved": lambda sim, end_system, runtime, was_parked: None,
        }

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _blocking(self) -> bool:
        return (
            self.config.max_queue_size is not None
            and self.config.queue_backpressure == "block"
        )

    def _queue_has_room(self, runtime: _ShardRuntime) -> bool:
        capacity = self.config.max_queue_size
        if capacity is None:
            return True
        return len(runtime.shard.queue) + runtime.in_transit < capacity

    def _send_uplink(
        self,
        end_system: EndSystem,
        images: np.ndarray,
        labels: np.ndarray,
        at_time: float,
        round_index: int = 0,
    ) -> Optional[ActivationMessage]:
        """Forward a batch and ship it; ``None`` when the uplink dropped it."""
        message = end_system.forward_batch(
            images, labels, round_index=round_index, created_at=at_time
        )
        network_message = self.transport.send_to_server(
            self.system_to_node[end_system.system_id],
            {"activations": message.activations, "labels": message.labels},
            now=at_time,
        )
        if network_message is None:
            end_system.notify_drop(message.batch_id)
            return None
        message.arrival_time = network_message.arrival_time
        message.size_bytes = network_message.size_bytes
        duplicate_arrival = network_message.metadata.get(DUPLICATE_ARRIVAL_KEY)
        if duplicate_arrival is not None:
            # Chaos duplication cloned the wire message: both copies land
            # (the receiver deduplicates), and the barrier/arrival logic
            # reads the full arrival list from the metadata.
            message.metadata["wire_arrivals"] = sorted(
                [network_message.arrival_time, float(duplicate_arrival)]
            )
        if self.obs.tracer.enabled:
            self._obs_uplink(end_system, message, at_time)
        return message

    def _ship_with_retries(self, ship, at_time: float):
        """Resolve one reliable transfer's full retry chain eagerly.

        ``ship(t)`` performs one physical send attempt at time ``t`` and
        returns the wire message (or ``None`` when the network lost it).
        Attempt ``k`` is acknowledged when its copy arrives within
        ``min(cap, timeout * backoff**k)`` (plus seeded jitter) of being
        sent; a missing ack triggers a retransmission at the deadline —
        even when the earlier copy is merely *late* (a spurious timeout:
        both copies stay in flight and the receiver deduplicates).  The
        chain ends at the first in-deadline arrival or after
        ``retry_max`` retransmissions.

        Returns ``(deliveries, give_up_time)``: the wire messages that
        physically made it, sorted by arrival (possibly several), and
        the deadline at which the sender abandons the transfer when
        ``deliveries`` is empty.  A transfer counts as *given up* only
        when every attempt was physically lost — a copy that arrives
        after its deadline still completes the transfer.
        """
        config = self.config
        attempt_time = at_time
        deliveries = []
        give_up_time = at_time
        for attempt in range(config.retry_max + 1):
            wire = ship(attempt_time)
            if attempt > 0:
                self.stats.retries += 1
            timeout = min(
                config.retry_timeout_cap_s,
                config.retry_timeout_s * config.retry_backoff ** attempt,
            )
            if config.retry_jitter > 0.0:
                timeout *= 1.0 + float(
                    self._retry_rng.uniform(0.0, config.retry_jitter)
                )
            deadline = attempt_time + timeout
            if wire is not None:
                deliveries.append(wire)
                if wire.arrival_time <= deadline:
                    break  # acked in time: the chain ends here
                # Spurious timeout: the copy is still in flight but the
                # ack deadline passed — retransmit anyway.
            give_up_time = deadline
            attempt_time = deadline
        deliveries.sort(key=lambda wire: wire.arrival_time)
        if self.obs.enabled:
            # ``attempt`` leaks the last loop index: attempts = index + 1.
            self._obs_last_attempts = attempt + 1
            self._obs_retries.observe(attempt)
        return deliveries, give_up_time

    def _send_uplink_reliable(
        self,
        end_system: EndSystem,
        images: np.ndarray,
        labels: np.ndarray,
        at_time: float,
        round_index: int = 0,
    ) -> ActivationMessage:
        """Reliable-delivery uplink: forward once, retransmit until acked.

        Retransmissions reship the *same* smashed activations (the client
        segment ran exactly once — a retry is a network event, not a
        recompute).  On delivery the message carries every copy's
        arrival in ``metadata["wire_arrivals"]`` and is stamped with the
        earliest; when every attempt was lost, ``metadata["gave_up_at"]``
        holds the deadline at which the client abandons the batch.
        """
        message = end_system.forward_batch(
            images, labels, round_index=round_index, created_at=at_time
        )
        node = self.system_to_node[end_system.system_id]
        payload = {"activations": message.activations, "labels": message.labels}
        deliveries, give_up_time = self._ship_with_retries(
            lambda t: self.transport.send_to_server(
                node, payload, now=t, reliable=True
            ),
            at_time,
        )
        if not deliveries:
            message.metadata["gave_up_at"] = give_up_time
            return message
        arrivals: List[float] = []
        for wire in deliveries:
            arrivals.append(wire.arrival_time)
            duplicate_arrival = wire.metadata.get(DUPLICATE_ARRIVAL_KEY)
            if duplicate_arrival is not None:
                arrivals.append(float(duplicate_arrival))
        arrivals.sort()
        message.arrival_time = arrivals[0]
        message.size_bytes = deliveries[0].size_bytes
        message.metadata["wire_arrivals"] = arrivals
        if self.obs.tracer.enabled:
            self._obs_uplink(end_system, message, at_time)
        return message

    def _send_downlink(self, end_system: EndSystem, gradient_message: GradientMessage,
                       at_time: float):
        return self.transport.send_to_end_system(
            self.system_to_node[end_system.system_id],
            gradient_message.gradient,
            now=at_time,
        )

    def _send_downlink_reliable(
        self, end_system: EndSystem, gradient_message: GradientMessage,
        at_time: float,
    ):
        """Reliable-delivery downlink (``(deliveries, give_up_time)``)."""
        node = self.system_to_node[end_system.system_id]
        return self._ship_with_retries(
            lambda t: self.transport.send_to_end_system(
                node, gradient_message.gradient, now=t, reliable=True
            ),
            at_time,
        )

    @staticmethod
    def _uplink_arrivals(message: ActivationMessage) -> List[float]:
        """Every wire arrival of a delivered uplink message (sorted)."""
        arrivals = message.metadata.get("wire_arrivals")
        if arrivals is None:
            return [message.arrival_time]
        return list(arrivals)

    def _send_nack(self, sim: Simulator, message: ActivationMessage,
                   end_system: EndSystem, on_notified=None) -> None:
        """NACK a queue-dropped batch to its client over the downlink.

        The client forgets the pending activation when the NACK *lands*,
        one downlink delay after the overflow; ``on_notified`` (async
        mode's retry hook) fires at the same moment.  A NACK lost on the
        downlink degrades to an immediate notification — the same
        timeout abstraction lost gradients use — so nothing ever leaks.
        """
        self.stats.nacks_sent += 1
        sent_at = sim.now
        nack = self.transport.send_to_end_system(
            self.system_to_node[end_system.system_id],
            {"nack_batch_id": message.batch_id},
            now=sent_at,
            kind="nack",
        )
        if nack is None:
            self.stats.nacks_lost += 1
            if self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "nack-lost", "message", sent_at,
                    pid=self._runtime_of[end_system.system_id].shard.shard_id,
                    tid=end_system.system_id, args={"batch": message.batch_id})
            end_system.notify_drop(message.batch_id)
            if on_notified is not None:
                on_notified(sim)
            return
        self._awaiting_nack[message.sequence] = (end_system, message.batch_id)
        self.stats.nack_delay_total_s += nack.arrival_time - sent_at
        if self.obs.tracer.enabled:
            self.obs.tracer.span(
                "nack", "message", sent_at, nack.arrival_time,
                pid=self._runtime_of[end_system.system_id].shard.shard_id,
                tid=end_system.system_id, args={"batch": message.batch_id})

        def land_nack(landing_sim: Simulator) -> None:
            if self._awaiting_nack.pop(message.sequence, None) is None:
                return  # already resolved by a budget stop
            end_system.notify_drop(message.batch_id)
            if on_notified is not None:
                on_notified(landing_sim)

        sim.schedule(nack.arrival_time, land_nack, priority=PRIORITY_LANDING,
                     label="queue-nack")

    def _admit(self, sim: Simulator, message: ActivationMessage,
               end_system: EndSystem, runtime: _ShardRuntime,
               on_notified=None, sent_generation: Optional[int] = None) -> bool:
        """Resolve an arrival: enqueue it, or shed it and NACK the client."""
        runtime.in_transit -= 1
        if self._dedup_enabled and runtime.shard.has_seen(message.sequence):
            # Duplicate copy (retransmission or chaos clone) of a
            # sequence the shard already ruled on: absorb it silently.
            # The charge/credit pair is net zero in the drop ledger and
            # the original copy owns the batch's fate — no NACK, no
            # client notification, whatever that fate was.
            runtime.shard.queue.charge_drop()
            self.stats.deduped += 1
            if self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "dedup", "message", sim.now,
                    pid=runtime.shard.shard_id, tid=end_system.system_id,
                    args={"batch": message.batch_id})
            return False
        stale = (
            sent_generation is not None
            and runtime.generation != sent_generation
        )
        if not runtime.shard.healthy or stale:
            # The hub died while the message was in flight — or crashed
            # *and recovered* before it landed, which severs the message's
            # round/dispatch chain just the same (connections do not
            # survive a crash).  Shed it through the same leak-free
            # notification path a queue drop uses; there is no server
            # context left to NACK from, so the client learns immediately
            # (the timeout abstraction again).
            if message.metadata.get("reliability_resolved"):
                # A sibling copy of this transfer already resolved the
                # batch's fate at this dead/severed shard: later copies
                # must neither notify again nor mint another send token.
                return False
            if self._dedup_enabled:
                message.metadata["reliability_resolved"] = True
            self.stats.failover_dropped += 1
            if self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "failover-drop", "message", sim.now,
                    pid=runtime.shard.shard_id, tid=end_system.system_id,
                    args={"batch": message.batch_id})
            end_system.notify_drop(message.batch_id)
            if on_notified is not None:
                on_notified(sim)
            return False
        if self._dedup_enabled:
            # Idempotent admission: the shard remembers every sequence it
            # rules on, so a copy landing later takes the dedup branch
            # above — including copies of a *rejected* sequence, which
            # must not trigger a second NACK.
            outcome = runtime.shard.admit(message)
            if outcome == "ok":
                self._obs_admit(sim, message, runtime, end_system)
                return True
            if outcome == "dup":  # raced with the has_seen check above
                self.stats.deduped += 1
                return False
        elif runtime.shard.receive(message):
            self._obs_admit(sim, message, runtime, end_system)
            return True
        self.stats.queue_drops += 1
        if self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "queue-drop", "message", sim.now,
                pid=runtime.shard.shard_id, tid=end_system.system_id,
                args={"batch": message.batch_id})
        self._send_nack(sim, message, end_system, on_notified=on_notified)
        return False

    @staticmethod
    def _trace_key(system_id: int, batch_id: int) -> int:
        """Run-local sampling key for a message's lifecycle.

        ``message.sequence`` is a *process-wide* counter, so keying the
        sampler on it would make same-seed runs in one process trace
        different subsets.  Mixing the client id into its batch id is
        run-local, collision-free across clients and shared by every
        leg of the batch's journey (uplink, admit, wait, downlink), so
        a sampled batch is traced end to end.
        """
        return system_id * 1_000_003 + batch_id

    def _obs_admit(self, sim: Simulator, message: ActivationMessage,
                   runtime: _ShardRuntime, end_system: EndSystem) -> None:
        """Trace a successful queue admission (arena staging included)."""
        tracer = self.obs.tracer
        if tracer.enabled and tracer.sampled(
                self._trace_key(message.end_system_id, message.batch_id)):
            tracer.instant("queue-admit", "message", sim.now,
                           pid=runtime.shard.shard_id,
                           tid=end_system.system_id,
                           args={"batch": message.batch_id,
                                 "depth": len(runtime.shard.queue)})

    def _sync_due(self, completed: int) -> bool:
        # The coordinator owns the sync cadence and mode (the trainer
        # seeds them from TrainingConfig).
        return (
            self.cluster.num_shards > 1
            and completed % self.cluster.sync_every == 0
        )

    def _broadcast_weights(self, sim: Simulator, source: _ShardRuntime,
                           at_time: float, merge_on_landing: bool,
                           delivered: Optional[Dict[int, set]] = None,
                           snapshot_out: Optional[Dict[int, Dict]] = None,
                           among: Optional[set] = None) -> float:
        """Ship one shard's weight snapshot to every other shard.

        Returns the latest arrival time among the delivered snapshots
        (``at_time`` when everything was dropped).  With
        ``merge_on_landing`` each delivery schedules a staleness-weighted
        merge at its arrival; otherwise the caller owns what happens
        once the transfers have landed (the ``"average"`` barrier), and
        each successful delivery is recorded in ``delivered`` (a
        ``destination shard id -> source shard ids`` map) so a dropped
        snapshot genuinely never contributes to its destination.
        ``snapshot_out`` receives the shipped copy keyed by source shard
        id, so the barrier can average exactly what travelled the wire
        without snapshotting a second time.  ``among`` (shard ids)
        restricts the destinations — a quorum-degraded barrier exchanges
        weights among the present shards only.
        """
        snapshot = source.shard.weights_snapshot()
        if snapshot_out is not None:
            snapshot_out[source.shard.shard_id] = snapshot
        latest_arrival = at_time
        for destination in self._runtimes:
            if destination is source or not destination.shard.healthy:
                continue
            if among is not None and destination.shard.shard_id not in among:
                continue
            sync_message = self.transport.send_between_servers(
                source.shard.node_name, destination.shard.node_name,
                snapshot, now=at_time,
            )
            self.stats.sync_messages += 1
            if sync_message is None:
                self.stats.sync_messages_lost += 1
                continue
            if delivered is not None:
                delivered.setdefault(destination.shard.shard_id, set()).add(
                    source.shard.shard_id
                )
            latest_arrival = max(latest_arrival, sync_message.arrival_time)
            if merge_on_landing:
                sim.schedule(
                    sync_message.arrival_time,
                    lambda s, d=destination.shard, snap=snapshot, m=sync_message: (
                        self._apply_staleness_merge(d, snap, m.transit_time)
                    ),
                    priority=PRIORITY_LANDING,
                    label="weight-merge",
                )
        return latest_arrival

    def _apply_staleness_merge(self, shard: ServerShard, snapshot, staleness_s: float
                               ) -> None:
        self.cluster.merge_staleness(shard, snapshot, staleness_s)

    def _healthy_count(self) -> int:
        return sum(1 for runtime in self._runtimes if runtime.shard.healthy)

    # ------------------------------------------------------------------ #
    # Durable checkpoints (repro.state)
    # ------------------------------------------------------------------ #
    def _checkpoint_enabled(self) -> bool:
        return (
            self.checkpoint_store is not None
            and self.config.checkpoint_every_s is not None
        )

    def _capture_checkpoint(self, sim: Simulator, runtime: _ShardRuntime) -> None:
        """Snapshot one shard into the store and refresh its recovery point."""
        shard = runtime.shard
        checkpoint = ShardCheckpoint.capture(
            shard, sim_time=sim.now, round_index=runtime.round_index,
            generation=runtime.generation,
        )
        self.checkpoint_store.save_shard(checkpoint)
        runtime.last_checkpoint_s = sim.now
        shard.checkpoints_taken += 1
        shard.note_recovery_point(sim.now, "checkpoint")
        self.stats.checkpoints_written += 1
        logger.debug("checkpoint: shard %d captured at t=%.4fs (round %d, "
                     "%d samples)", shard.shard_id, sim.now,
                     runtime.round_index, shard.samples_processed)
        if self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "checkpoint", "control", sim.now, pid=shard.shard_id,
                args={"samples": shard.samples_processed})

    def _schedule_checkpoint_events(self, sim: Simulator) -> None:
        """Start each shard's periodic capture chain (``"interval"`` mode).

        Called once per epoch run, next to the failure-event scheduling:
        checkpoint events are pure observers (they never touch the round
        clocks or the dispatch state), fire between landings and failure
        transitions (:data:`PRIORITY_CHECKPOINT`), skip a crashed shard
        without breaking the cadence, and stop rescheduling once the
        epoch's real work is done so they can never keep the simulator
        alive on their own.
        """
        if not self._checkpoint_enabled() or self.config.checkpoint_mode != "interval":
            return
        every = self.config.checkpoint_every_s
        # Each epoch's simulator starts at 0 but the run's clock is
        # absolute and spans epochs; anchor the cadence on the later of
        # the two so captures never time-travel backwards.
        for runtime in self._runtimes:
            base = max(sim.now, self.clock, runtime.last_checkpoint_s)
            self._schedule_next_checkpoint(sim, runtime, base + every)

    def _schedule_next_checkpoint(self, sim: Simulator, runtime: _ShardRuntime,
                                  at_time: float) -> None:
        def fire(fire_sim: Simulator, rt=runtime) -> None:
            if not self._epoch_hooks["live"]():
                return  # epoch is done: let the chain die
            if rt.shard.healthy:
                self._capture_checkpoint(fire_sim, rt)
            self._schedule_next_checkpoint(
                fire_sim, rt, fire_sim.now + self.config.checkpoint_every_s
            )

        sim.schedule(max(at_time, sim.now), fire,
                     priority=PRIORITY_CHECKPOINT, label="checkpoint")

    def _maybe_round_checkpoint(self, sim: Simulator, runtime: _ShardRuntime) -> None:
        """Opportunistic capture riding an existing event (``"round"`` mode)."""
        if not self._checkpoint_enabled() or self.config.checkpoint_mode != "round":
            return
        if sim.now - runtime.last_checkpoint_s >= self.config.checkpoint_every_s:
            self._capture_checkpoint(sim, runtime)

    # ------------------------------------------------------------------ #
    # Observability plane (repro.obs)
    # ------------------------------------------------------------------ #
    def _schedule_obs_events(self, sim: Simulator) -> None:
        """Start the periodic metrics-flush chain (``obs_flush_every_s``).

        Mirrors the checkpoint chain: flush events are pure observers at
        :data:`PRIORITY_OBS` (post-failure, pre-dispatch, so a snapshot
        reflects the state the next dispatch will see), and the chain
        dies once the epoch's real work is done so it can never keep the
        simulator alive on its own.  With obs off (or no cadence) no
        event is ever scheduled.
        """
        if not self.obs.enabled or self.obs.flush_every_s is None:
            return
        base = max(sim.now, self.clock)
        self._schedule_next_obs_flush(sim, base + self.obs.flush_every_s)

    def _schedule_next_obs_flush(self, sim: Simulator, at_time: float) -> None:
        def fire(fire_sim: Simulator) -> None:
            if not self._epoch_hooks["live"]():
                return
            self.obs.flush(fire_sim.now)
            self._schedule_next_obs_flush(
                fire_sim, fire_sim.now + self.obs.flush_every_s
            )

        sim.schedule(max(at_time, sim.now), fire, priority=PRIORITY_OBS,
                     label="obs-flush")

    def _obs_drain(self, runtime: _ShardRuntime,
                   results: List[Tuple[ActivationMessage, GradientMessage]],
                   start_time: float) -> None:
        """Record a drain's queue waits + spans (called only when obs is on)."""
        shard_id = runtime.shard.shard_id
        tracer = self.obs.tracer
        for activation_message, _ in results:
            wait = max(0.0, start_time - activation_message.arrival_time)
            self._obs_queue_wait.observe(wait)
            if tracer.enabled and tracer.sampled(self._trace_key(
                    activation_message.end_system_id,
                    activation_message.batch_id)):
                tracer.span(
                    "queue-wait", "message",
                    activation_message.arrival_time, start_time,
                    pid=shard_id, tid=activation_message.end_system_id,
                    args={"batch": activation_message.batch_id},
                )
        if tracer.enabled and results:
            step_time = self.config.server_step_time_s * runtime.service_factor
            tracer.span("server-step", "server", start_time,
                        start_time + step_time, pid=shard_id,
                        args={"batches": len(results)})

    def _obs_uplink(self, end_system: EndSystem,
                    message: ActivationMessage, sent_at: float) -> None:
        """Trace one delivered uplink (called only when the tracer is on)."""
        tracer = self.obs.tracer
        if not tracer.sampled(
                self._trace_key(message.end_system_id, message.batch_id)):
            return
        args: Dict[str, object] = {"batch": message.batch_id,
                                   "bytes": message.size_bytes}
        if self.config.reliable_delivery and self._obs_last_attempts > 1:
            args["attempts"] = self._obs_last_attempts
        tracer.span(
            "uplink", "message", sent_at, message.arrival_time,
            pid=self._runtime_of[end_system.system_id].shard.shard_id,
            tid=end_system.system_id, args=args,
        )

    def _obs_downlink(self, end_system: EndSystem, batch_id: int,
                      sent_at: float, arrival_time: float) -> None:
        """Trace one delivered downlink (called only when the tracer is on).

        Shares the uplink's run-local key, so a sampled batch's whole
        round trip appears in the trace (or none of it does).
        """
        tracer = self.obs.tracer
        if not tracer.sampled(self._trace_key(end_system.system_id, batch_id)):
            return
        tracer.span(
            "downlink", "message", sent_at, arrival_time,
            pid=self._runtime_of[end_system.system_id].shard.shard_id,
            tid=end_system.system_id, args={"batch": batch_id},
        )

    @staticmethod
    def _reset_optimizer(shard: ServerShard) -> None:
        """Deterministically clear a recovered shard's optimizer moments.

        The snapshot paths that carry no optimizer state (sync snapshot,
        initial weights) model a process restart: the dead replica's
        moment buffers did not survive, so the restored optimizer starts
        from cleared slots — the same state a freshly built optimizer
        holds — instead of resurrecting pre-crash moments that no longer
        match the installed weights.
        """
        optimizer = shard.server.optimizer
        state = optimizer.state_dict()
        state["step_count"] = 0
        state["slots"] = {
            name: [None] * len(buffers)
            for name, buffers in state["slots"].items()
        }
        optimizer.load_state_dict(state)

    # ------------------------------------------------------------------ #
    # Failure injection: crash / recovery / failover
    # ------------------------------------------------------------------ #
    def _schedule_failure_events(self, sim: Simulator) -> None:
        """Schedule each shard's next pending health transition.

        Called once per epoch run: the failure model's timelines are in
        absolute simulated time and span epochs, so a transition that did
        not fire last epoch (it lay beyond the training horizon) is
        re-scheduled here, clamped to the fresh simulator's clock.
        """
        if self.failure_model is None:
            return
        for runtime in self._runtimes:
            self._schedule_next_transition(sim, runtime)

    def _schedule_next_transition(self, sim: Simulator, runtime: _ShardRuntime) -> None:
        transition = self.failure_model.peek(runtime.shard.shard_id)
        if transition is None:
            return
        sim.schedule(
            max(transition.time, sim.now),
            lambda s, rt=runtime, tr=transition: self._on_transition(s, rt, tr),
            priority=PRIORITY_FAILURE,
            label=f"shard-{transition.kind}",
        )

    def _on_transition(self, sim: Simulator, runtime: _ShardRuntime,
                       transition: ShardTransition) -> None:
        if not self._epoch_hooks["live"]():
            # The epoch's real work is already done: leave the transition
            # pending (not advanced) so the next epoch re-schedules it.
            return
        self.failure_model.advance(runtime.shard.shard_id)
        if transition.kind == "crash":
            if runtime.shard.healthy:
                self._crash_shard(sim, runtime)
        elif not runtime.shard.healthy:
            self._recover_shard(sim, runtime)
        self._schedule_next_transition(sim, runtime)

    def _crash_shard(self, sim: Simulator, runtime: _ShardRuntime) -> None:
        """Apply a shard crash: shed its work leak-free, then fail over.

        The shard's queued/arena contents are flushed and every owning
        client is notified (``notify_drop``), in-flight uplinks will be
        shed on arrival (:meth:`_admit`), the hub's links go down in the
        topology, and — when a failover policy is installed — the shard's
        clients are reassigned to the healthy survivors one failover
        delay later.
        """
        shard = runtime.shard
        shard.mark_down(sim.now)
        self.stats.shard_crashes += 1
        runtime.generation += 1
        runtime.chain_idle = True
        runtime.dispatch_scheduled = False
        runtime.accepted = []
        self.transport.topology.set_node_up(shard.node_name, False)
        logger.info("shard %d (%s) crashed at t=%.4fs", shard.shard_id,
                    shard.node_name, sim.now)
        if self.obs.tracer.enabled:
            self.obs.tracer.instant("shard-crash", "control", sim.now,
                                    pid=shard.shard_id)
        flushed = shard.flush_queue()
        if flushed:
            logger.debug("crash shed %d queued batch(es) from shard %d",
                         len(flushed), shard.shard_id)
        for message in flushed:
            self.stats.failover_dropped += 1
            self._by_id[message.end_system_id].notify_drop(message.batch_id)
        # Blocked senders hold no pending work; pull them off the dead
        # shard's deques — failover or recovery re-triggers their sends.
        parked = list(runtime.deferred) + list(runtime.waiting)
        runtime.deferred.clear()
        runtime.waiting.clear()
        self._epoch_hooks["on_shard_down"](sim, runtime, flushed, parked)
        if self.failover is not None:
            sim.schedule(
                sim.now + max(0.0, self.config.failover_delay_s),
                lambda s, rt=runtime: self._failover_clients(s, rt),
                priority=PRIORITY_FAILURE,
                label="failover",
            )

    def _failover_clients(self, sim: Simulator, dead_runtime: _ShardRuntime) -> None:
        """Reassign a dead shard's clients to the healthy survivors."""
        shard = dead_runtime.shard
        if shard.healthy:
            return  # recovered before the failover delay elapsed
        # The coordinator keeps each shard's client list sorted and in
        # sync with the assignment map.
        clients = list(shard.client_ids)
        survivors = [
            runtime.shard.shard_id for runtime in self._runtimes
            if runtime.shard.healthy
        ]
        if not clients or not survivors:
            return  # nothing to move, or a total outage: everyone waits
        latencies = [
            self.transport.topology.uplink(self.system_to_node[system_id]).latency.mean()
            for system_id in clients
        ]
        loads = [self._by_id[system_id].num_local_samples for system_id in clients]
        moves = self.failover.reassign(
            clients, survivors, latencies_s=latencies, loads=loads
        )
        self._apply_reassignment(
            sim,
            {
                system_id: shard_index
                for system_id, shard_index in moves.items()
                if shard_index != shard.shard_id
            },
        )

    def _apply_reassignment(self, sim: Simulator, moves: Dict[int, int]) -> None:
        """Move clients between shards: assignment, topology and runtime."""
        moved = 0
        for system_id, shard_index in sorted(moves.items()):
            old_runtime = self._runtime_of[system_id]
            if not self.cluster.reassign(system_id, shard_index):
                continue
            new_runtime = self._runtimes[shard_index]
            self._runtime_of[system_id] = new_runtime
            end_system = self._by_id[system_id]
            self.transport.topology.reroute_end_system(
                self.system_to_node[system_id], new_runtime.shard.node_name
            )
            self.stats.clients_reassigned += 1
            moved += 1
            if system_id in old_runtime.active:
                old_runtime.active.discard(system_id)
                new_runtime.active.add(system_id)
            was_parked = False
            for blocked in (old_runtime.deferred, old_runtime.waiting):
                if end_system in blocked:
                    blocked.remove(end_system)
                    was_parked = True
            self._epoch_hooks["on_client_moved"](sim, end_system, new_runtime,
                                                 was_parked)
        if moved:
            logger.info("failover: reassigned %d client(s) at t=%.4fs", moved,
                        sim.now)
            if self.obs.tracer.enabled:
                self.obs.tracer.instant("failover", "control", sim.now,
                                        args={"clients": moved})

    def _recover_shard(self, sim: Simulator, runtime: _ShardRuntime) -> None:
        """Apply a shard recovery: restore state, fail clients back, restart.

        The restore source is the freshest durable state available, in
        preference order:

        1. the **newest intact checkpoint** from the store (when
           checkpointing is on and the checkpoint is at least as fresh
           as the last sync snapshot) — weights *and* optimizer moments
           *and* module RNG streams come back exactly;
        2. the coordinator's **last sync snapshot** — weights only, so
           the optimizer restarts with cleared moments (a crash destroys
           them) and the shard rejoins near the cluster consensus;
        3. the cluster's **initial weights** — the deterministic point
           of last resort when the shard crashed before any sync or
           checkpoint existed (a real restart reloads the seed model; it
           cannot resurrect the dead process's weights).

        Either way the recovery's lost work — the seconds and samples
        between the chosen restore point and the crash — is accounted
        into the shard's RPO counters.
        """
        shard = runtime.shard
        # RPO accounting reads the crash state before mark_up clears it.
        crash_time = shard.down_since if shard.down_since is not None else sim.now
        samples_at_crash = shard.samples_processed
        # install_weights (paths 2 and 3) resets samples_since_sync, so
        # derive "samples already durable at the last sync" first.
        samples_at_last_sync = shard.samples_processed - shard.samples_since_sync
        shard.mark_up(sim.now)
        self.stats.shard_recoveries += 1
        runtime.generation += 1
        runtime.clock = max(runtime.clock, sim.now)
        # The pre-crash dispatch chain died with its generation, so a
        # stale next_free (e.g. a slow downlink's landing time) would
        # gate maybe_dispatch with no event left to fire at it — post-
        # recovery arrivals would sit in the queue forever.  A freshly
        # recovered server is free now.
        runtime.next_free = min(runtime.next_free, sim.now)
        self.transport.topology.set_node_up(shard.node_name, True)
        logger.info("shard %d (%s) recovered at t=%.4fs", shard.shard_id,
                    shard.node_name, sim.now)
        checkpoint = None
        if self._checkpoint_enabled():
            checkpoint = self.checkpoint_store.latest_shard(shard.shard_id)
        snapshot = self.cluster.last_sync_snapshot
        sync_time = self.cluster.last_sync_time_s or 0.0
        restored_from = "initial"
        if checkpoint is not None and (snapshot is None
                                       or checkpoint.sim_time >= sync_time):
            checkpoint.restore(shard)
            shard.record_recovery(crash_time, samples_at_crash,
                                  checkpoint.sim_time,
                                  checkpoint.samples_processed, "checkpoint")
            restored_from = "checkpoint"
        elif snapshot is not None:
            shard.install_weights(snapshot)
            self._reset_optimizer(shard)
            shard.record_recovery(crash_time, samples_at_crash,
                                  sync_time, samples_at_last_sync, "sync")
            restored_from = "sync"
        else:
            # Nothing durable exists yet: deterministically reload the
            # cluster's initial weights (every shard was built from the
            # same server seed) with cleared optimizer state and per-sync
            # counters — exactly the state a freshly provisioned replica
            # would boot with.
            shard.server.load_state_dict(self.cluster.initial_snapshot)
            self._reset_optimizer(shard)
            shard.samples_since_sync = 0
            shard.steps_since_sync = 0
            shard.record_recovery(crash_time, samples_at_crash, 0.0, 0, "initial")
        logger.info("shard %d restored from %s (downtime %.4fs, "
                    "rpo_lost_s=%.4f)", shard.shard_id, restored_from,
                    sim.now - crash_time, shard.rpo_lost_s)
        if self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "shard-recovery", "control", sim.now, pid=shard.shard_id,
                args={"source": restored_from,
                      "downtime_s": sim.now - crash_time})
        if self.failover is not None and self.failover.failback:
            self._apply_reassignment(
                sim,
                {
                    system_id: shard.shard_id
                    for system_id in self.cluster.original_clients(shard.shard_id)
                    if self.cluster.assignment[system_id] != shard.shard_id
                },
            )
        self._epoch_hooks["on_shard_up"](sim, runtime)

    # ------------------------------------------------------------------ #
    # Chaos plane: link flaps, partitions, churn, stragglers
    # ------------------------------------------------------------------ #
    def _schedule_chaos_events(self, sim: Simulator) -> None:
        """Schedule the fault plan's next pending event.

        Mirrors the failure-injection machinery: the plan's timeline is
        in absolute simulated time and spans epochs, each applied event
        re-schedules the next peek, and an event firing after the
        epoch's real work is done stays pending (not advanced) so the
        next epoch re-schedules it.
        """
        if self.fault_plan is None:
            return
        self._schedule_next_chaos(sim)

    def _schedule_next_chaos(self, sim: Simulator) -> None:
        event = self.fault_plan.peek()
        if event is None:
            return
        sim.schedule(
            max(event.time, sim.now),
            lambda s, ev=event: self._on_chaos_event(s, ev),
            priority=PRIORITY_FAILURE,
            label=f"chaos-{event.kind}",
        )

    def _on_chaos_event(self, sim: Simulator, event: FaultEvent) -> None:
        if not self._epoch_hooks["live"]():
            return
        self.fault_plan.advance()
        self._apply_chaos_event(sim, event)
        self._schedule_next_chaos(sim)

    def _apply_chaos_event(self, sim: Simulator, event: FaultEvent) -> None:
        """Apply one fault-plan event to the topology / cluster / runtime.

        * ``flap``/``leave`` — the client's access link goes down at
          ``begin`` and comes back at ``end``; in-flight and future
          sends are lost on the wire and funnel through the ordinary
          loss (or retry) paths, so no special stranding is needed.
        * ``partition`` — the hub↔hub edge is administratively
          partitioned (both directions) until the matching ``end``.
        * ``straggler`` — the shard's service time is multiplied by
          ``value`` until the matching ``end`` restores ``1.0``.
        * ``move`` — client churn/mobility: the client is reassigned to
          the target shard through the same machinery failover uses
          (topology reroute + runtime migration + chain restart hooks).
        """
        self.stats.chaos_events += 1
        if self.obs.tracer.enabled:
            self.obs.tracer.instant(
                f"chaos-{event.kind}", "chaos", sim.now,
                args={"phase": event.phase, "target": int(event.target)},
            )
        topology = self.transport.topology
        if event.kind in ("flap", "leave"):
            node = self.system_to_node[int(event.target)]
            topology.set_node_up(node, event.phase == "end")
            logger.info("chaos: %s %s for %s at t=%.4fs", event.kind,
                        event.phase, node, sim.now)
        elif event.kind == "partition":
            node_a = self._runtimes[int(event.target)].shard.node_name
            node_b = self._runtimes[int(event.peer)].shard.node_name
            topology.set_edge_partitioned(node_a, node_b,
                                          event.phase == "begin")
            logger.info("chaos: partition %s between %s and %s at t=%.4fs",
                        event.phase, node_a, node_b, sim.now)
        elif event.kind == "straggler":
            runtime = self._runtimes[int(event.target)]
            runtime.service_factor = (
                float(event.value) if event.phase == "begin" else 1.0
            )
            logger.info("chaos: straggler %s on shard %d (factor %.1fx) "
                        "at t=%.4fs", event.phase, runtime.shard.shard_id,
                        runtime.service_factor, sim.now)
        elif event.kind == "move":
            self._apply_reassignment(
                sim, {int(event.target): int(event.value)}
            )

    # ------------------------------------------------------------------ #
    # Synchronous mode: rounds as barrier events
    # ------------------------------------------------------------------ #
    def run_synchronous_epoch(
        self, iterators: Dict[int, Iterator[Tuple[np.ndarray, np.ndarray]]]
    ) -> MetricTracker:
        """Drive one synchronous epoch as per-shard chains of round events.

        Each shard runs its own round chain: a *round-start* event where
        the shard's active end-systems each ship one batch, per-message
        *arrival* events that admit (or shed) messages at the shard's
        queue, and one *barrier* event at the shard's last arrival, where
        it drains its queue — as one concatenated step when
        ``server_batching`` is on, or one step per message in policy
        order otherwise — and the gradients flow back.  A shard's next
        round starts once *its own* gradients have landed; shards do not
        wait for each other's stragglers, which is the straggler
        isolation a latency-aware assignment buys.

        The chains meet only at synchronization points: every
        ``server_sync_every`` rounds, ``"average"`` mode parks each shard
        at a **rendezvous** until all still-running shards arrive, then
        exchanges weights over the inter-server links and releases
        everyone once the slowest transfer lands (a shard that already
        exhausted its data joins the average but never blocks the
        rendezvous); ``"staleness"`` mode broadcasts snapshots without
        stopping and peers merge them on landing.  With one shard no
        sync ever fires and the chain reduces exactly to the
        pre-cluster engine's round loop.
        """
        tracker = MetricTracker()
        sim = Simulator()
        for runtime in self._runtimes:
            runtime.in_transit = 0
            runtime.accepted = []
            runtime.clock = self.clock
            runtime.round_index = -1
            # A shard that is down when the epoch starts has no chain; a
            # recovery transition restarts it mid-epoch.
            runtime.chain_idle = not runtime.shard.healthy
            runtime.active = {
                system_id for system_id in iterators
                if self._runtime_of[system_id] is runtime
            }
        # Rendezvous state ("average" mode): shards parked at a sync
        # point (mapped to the round they just finished) and shards done
        # with their data for this epoch.
        arrived: Dict[int, int] = {}
        finished: set = set()

        def schedule_round_start(at_time: float, runtime: _ShardRuntime,
                                 round_index: int) -> None:
            # Generation-guarded: a crash (or recovery) between scheduling
            # and firing orphans the event, so a dead shard's chain dies
            # cleanly and a restarted chain never double-fires.
            generation = runtime.generation
            runtime.chain_idle = False

            def fire(sim: Simulator) -> None:
                if runtime.generation != generation or not runtime.shard.healthy:
                    return
                start_round(sim, runtime, round_index)

            sim.schedule(max(at_time, sim.now), fire, label="round-start")

        def on_arrival(sim: Simulator, message: ActivationMessage,
                       end_system: EndSystem, runtime: _ShardRuntime,
                       sent_generation: int) -> None:
            if self._admit(sim, message, end_system, runtime,
                           sent_generation=sent_generation):
                runtime.accepted.append(message)

        def start_round(sim: Simulator, runtime: _ShardRuntime,
                        round_index: int) -> None:
            runtime.round_index = round_index
            if self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "round-start", "control", runtime.clock,
                    pid=runtime.shard.shard_id, args={"round": round_index})
            if not runtime.active:
                finish_shard(sim, runtime)
                return
            senders: List[EndSystem] = list(runtime.deferred)
            already_queued = {end_system.system_id for end_system in senders}
            runtime.deferred.clear()
            senders.extend(
                end_system for end_system in self.end_systems
                if end_system.system_id in runtime.active
                and end_system.system_id not in already_queued
            )
            in_flight = 0
            last_arrival = runtime.clock
            latest_give_up = runtime.clock
            for end_system in senders:
                if end_system.system_id not in runtime.active:
                    continue
                if self._blocking() and not self._queue_has_room(runtime):
                    runtime.deferred.append(end_system)
                    self.stats.blocked_sends += 1
                    continue
                try:
                    images, labels = next(iterators[end_system.system_id])
                except StopIteration:
                    runtime.active.discard(end_system.system_id)
                    continue
                if self.config.reliable_delivery:
                    message = self._send_uplink_reliable(
                        end_system, images, labels, runtime.clock,
                        round_index=round_index,
                    )
                    gave_up_at = message.metadata.get("gave_up_at")
                    if gave_up_at is not None:
                        # Every retry was physically lost.  The client
                        # learns at the give-up deadline and ships its
                        # next batch when the following round starts —
                        # the same cadence as the unreliable loss path.
                        self.stats.gave_up += 1
                        end_system.notify_drop(message.batch_id)
                        latest_give_up = max(latest_give_up, gave_up_at)
                        continue
                else:
                    message = self._send_uplink(
                        end_system, images, labels, runtime.clock,
                        round_index=round_index,
                    )
                    if message is None:
                        # The link dropped the batch; the client forgets it
                        # and ships its next batch when the following round
                        # starts.
                        continue
                arrivals = self._uplink_arrivals(message)
                runtime.in_transit += len(arrivals)
                in_flight += 1
                last_arrival = max(last_arrival, arrivals[-1])
                for arrival in arrivals:
                    sim.schedule(
                        arrival,
                        lambda s, m=message, e=end_system, r=runtime,
                        g=runtime.generation: on_arrival(s, m, e, r, g),
                        priority=PRIORITY_ARRIVAL,
                        label="uplink-arrival",
                    )
            self.stats.rounds += 1
            if in_flight:
                generation = runtime.generation

                def fire_barrier(sim: Simulator, r=round_index, rt=runtime,
                                 gen=generation) -> None:
                    if rt.generation != gen or not rt.shard.healthy:
                        return
                    barrier(sim, r, rt)

                sim.schedule(
                    max(last_arrival, sim.now),
                    fire_barrier,
                    priority=PRIORITY_DISPATCH,
                    label="round-barrier",
                )
            elif runtime.active:
                # Every send this round was dropped in transit; retry
                # immediately — the simulated clock does not advance
                # (reliable delivery is the exception: abandoned retry
                # chains occupied the sender until their give-up
                # deadlines, so the round clock moves there instead of
                # spinning at a frozen instant).
                runtime.clock = max(runtime.clock, latest_give_up)
                schedule_round_start(max(sim.now, runtime.clock), runtime,
                                     round_index + 1)
            else:
                finish_shard(sim, runtime)

        def barrier(sim: Simulator, round_index: int, runtime: _ShardRuntime) -> None:
            # The shard's queue is drained at every barrier and capacity
            # is >= 1, so a round that put messages in flight always
            # lands at least one (the shard's first arrival cannot be
            # shed).
            arrived_messages = list(runtime.accepted)
            runtime.accepted = []
            # Queue-dropped messages never reached the server segment, so
            # they do not hold the barrier back.
            latest_arrival = max(
                (message.arrival_time for message in arrived_messages),
                default=runtime.clock,
            )
            if runtime.service_factor != 1.0:
                # Chaos straggler: the shard serves slower, so the drain
                # completes late by the extra service time and every
                # gradient of the round ships late with it.  The stall is
                # a real simulated-time delay, so the drain is re-parked
                # at the stalled instant — a rendezvous quorum timer must
                # get the chance to fire before the straggler shows up.
                latest_arrival += (
                    self.config.server_step_time_s
                    * (runtime.service_factor - 1.0)
                )
                if latest_arrival > sim.now:
                    generation = runtime.generation

                    def fire_drain(drain_sim: Simulator,
                                   msgs=arrived_messages, t=latest_arrival,
                                   r=round_index, rt=runtime,
                                   gen=generation) -> None:
                        # A crash during the stall flushed the queued
                        # messages (with notifications) already; the
                        # orphaned drain must not double-process them.
                        if rt.generation != gen or not rt.shard.healthy:
                            return
                        drain_round(drain_sim, r, rt, msgs, t)

                    sim.schedule(latest_arrival, fire_drain,
                                 priority=PRIORITY_DISPATCH,
                                 label="straggler-drain")
                    return
            drain_round(sim, round_index, runtime, arrived_messages,
                        latest_arrival)

        def drain_round(sim: Simulator, round_index: int,
                        runtime: _ShardRuntime,
                        arrived_messages: List[ActivationMessage],
                        latest_arrival: float) -> None:
            gradient_arrivals = [latest_arrival]
            if self.config.server_batching:
                # The concatenated step cannot start before the shard's
                # last accepted message of the round has arrived, so every
                # gradient is sent back at latest_arrival.
                results = runtime.shard.process_pending_batch(now=latest_arrival)
                send_times = [latest_arrival] * len(results)
            else:
                results = []
                send_times = []
                while runtime.shard.has_pending():
                    activation_message, gradient_message = runtime.shard.process_next(
                        now=latest_arrival
                    )
                    results.append((activation_message, gradient_message))
                    send_times.append(activation_message.arrival_time)
            self.stats.server_steps += 1
            if self.obs.enabled:
                self._obs_drain(runtime, results, latest_arrival)
            for (activation_message, gradient_message), send_time in zip(results, send_times):
                tracker.update(
                    {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                    count=activation_message.batch_size,
                )
                end_system = self._by_id[activation_message.end_system_id]
                if self.config.reliable_delivery:
                    deliveries, give_up_time = self._send_downlink_reliable(
                        end_system, gradient_message, send_time
                    )
                    if not deliveries:
                        # Every retry lost: the client abandons the batch
                        # at the give-up deadline, which also holds its
                        # next round back (the sender was busy retrying).
                        self.stats.gave_up += 1
                        end_system.notify_drop(gradient_message.batch_id)
                        gradient_arrivals.append(give_up_time)
                        continue
                    # The earliest copy completes back-propagation; any
                    # spurious-timeout duplicates change nothing (the
                    # gradient is applied inline exactly once).
                    gradient_arrivals.append(deliveries[0].arrival_time)
                    if self.obs.tracer.enabled:
                        self._obs_downlink(end_system,
                                           gradient_message.batch_id,
                                           send_time,
                                           deliveries[0].arrival_time)
                    end_system.apply_gradient(gradient_message)
                    continue
                downlink = self._send_downlink(end_system, gradient_message, send_time)
                if downlink is None:
                    end_system.notify_drop(gradient_message.batch_id)
                    continue
                gradient_arrivals.append(downlink.arrival_time)
                if self.obs.tracer.enabled:
                    self._obs_downlink(end_system, gradient_message.batch_id,
                                       send_time, downlink.arrival_time)
                end_system.apply_gradient(gradient_message)
            # Shard-local barrier: this shard's next round starts once its
            # own gradients have landed (and not before this barrier fired).
            runtime.clock = max(runtime.clock, max(gradient_arrivals), sim.now)
            round_done(sim, runtime, round_index)

        def round_done(sim: Simulator, runtime: _ShardRuntime,
                       round_index: int) -> None:
            # "round" checkpoint cadence: the barrier just drained the
            # queue, so the shard is quiescent — capture rides this event.
            self._maybe_round_checkpoint(sim, runtime)
            # A sync needs at least two healthy shards — with the rest of
            # the cluster down there is nobody to exchange weights with,
            # so the chain continues straight into its next round.
            if self._sync_due(round_index + 1) and self._healthy_count() > 1:
                if self.cluster.sync_mode == "average":
                    # Park this shard at the rendezvous; the sync fires
                    # once every still-running healthy shard has arrived
                    # — or, with a sync timeout configured, when the
                    # quorum timer the *first* parked shard started runs
                    # out (degraded sync without the stragglers).
                    arrived[runtime.shard.shard_id] = round_index
                    if (self.config.sync_timeout_s is not None
                            and len(arrived) == 1):
                        schedule_sync_timeout(sim)
                    maybe_fire_sync(sim)
                    return
                # Staleness gossip: snapshots broadcast now, merges land
                # between rounds, and nobody blocks.
                self.stats.weight_syncs += 1
                self._broadcast_weights(sim, runtime, runtime.clock,
                                        merge_on_landing=True)
            schedule_round_start(runtime.clock, runtime, round_index + 1)

        def finish_shard(sim: Simulator, runtime: _ShardRuntime) -> None:
            # Out of data for this epoch.  A rendezvous must not wait for
            # a shard that will never arrive.
            runtime.chain_idle = True
            if runtime.shard.shard_id not in finished:
                finished.add(runtime.shard.shard_id)
                maybe_fire_sync(sim)

        def ensure_chain_running(sim: Simulator, runtime: _ShardRuntime) -> None:
            # Restart latch for failover/recovery: give the shard a live
            # round chain when it has gained clients (or come back up)
            # and its previous chain has died.
            if not runtime.chain_idle or not runtime.shard.healthy:
                return
            if not runtime.active:
                finish_shard(sim, runtime)
                return
            finished.discard(runtime.shard.shard_id)
            runtime.clock = max(runtime.clock, sim.now)
            schedule_round_start(runtime.clock, runtime, runtime.round_index + 1)

        # Quorum-degraded sync state: the epoch counter orphans a pending
        # timeout once its rendezvous resolved (normally or degraded),
        # and the event handle lets a normal resolution *cancel* the
        # timeout outright so a retracted timer never stretches the
        # simulated end time.
        sync_state: Dict[str, object] = {"epoch": 0, "event": None}

        def resolve_rendezvous(sim: Simulator) -> None:
            sync_state["epoch"] += 1
            event = sync_state["event"]
            if event is not None:
                sim.cancel(event)
                sync_state["event"] = None

        def schedule_sync_timeout(sim: Simulator) -> None:
            epoch = sync_state["epoch"]

            def fire_timeout(timeout_sim: Simulator) -> None:
                if sync_state["epoch"] != epoch:
                    return
                sync_state["event"] = None
                on_sync_timeout(timeout_sim)

            sync_state["event"] = sim.schedule(
                sim.now + self.config.sync_timeout_s, fire_timeout,
                priority=PRIORITY_DISPATCH, label="sync-timeout",
            )

        def on_sync_timeout(sim: Simulator) -> None:
            # The first shard has been parked at the rendezvous for a
            # full sync timeout and stragglers are still out there.
            # With a quorum of the healthy running shards present, fire
            # a *degraded* sync among the present shards only; otherwise
            # release everyone un-synced — either way nobody waits on
            # the stragglers any longer.
            if not arrived:
                return
            healthy_unfinished = sum(
                1 for runtime in self._runtimes
                if runtime.shard.healthy
                and runtime.shard.shard_id not in finished
            )
            participant_runtimes = [
                runtime for runtime in self._runtimes
                if runtime.shard.healthy
                and (runtime.shard.shard_id in arrived
                     or runtime.shard.shard_id in finished)
            ]
            quorum_met = (
                len(arrived) >= self.config.sync_quorum * healthy_unfinished
                and len(participant_runtimes) >= 2
            )
            if quorum_met:
                self.stats.quorum_syncs += 1
                logger.info(
                    "quorum sync: %d/%d running shard(s) present at t=%.4fs; "
                    "syncing without the stragglers", len(arrived),
                    healthy_unfinished, sim.now)
                if self.obs.tracer.enabled:
                    self.obs.tracer.instant(
                        "quorum-sync", "control", sim.now,
                        args={"present": len(arrived),
                              "running": healthy_unfinished})
                resolve_rendezvous(sim)
                fire_sync(sim, participant_runtimes, restrict=True)
                return
            self.stats.sync_timeouts += 1
            logger.info(
                "sync timeout: quorum not met (%d/%d) at t=%.4fs; releasing "
                "parked shard(s) un-synced", len(arrived), healthy_unfinished,
                sim.now)
            if self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "sync-timeout", "control", sim.now,
                    args={"present": len(arrived),
                          "running": healthy_unfinished})
            resolve_rendezvous(sim)
            for runtime in self._runtimes:
                round_index = arrived.get(runtime.shard.shard_id)
                if round_index is None or not runtime.shard.healthy:
                    continue
                runtime.clock = max(runtime.clock, sim.now)
                schedule_round_start(runtime.clock, runtime, round_index + 1)
            arrived.clear()

        def maybe_fire_sync(sim: Simulator) -> None:
            if not arrived:
                return
            if any(
                runtime.shard.shard_id not in arrived
                and runtime.shard.shard_id not in finished
                and runtime.shard.healthy
                for runtime in self._runtimes
            ):
                # The rendezvous waits only for *healthy* running shards;
                # a crashed shard can never arrive and must not hang the
                # barrier (its rendezvous entry was dropped at crash time).
                return
            resolve_rendezvous(sim)
            # Full-averaging barrier: every healthy shard (finished ones
            # too — their weights still count) broadcasts its snapshot,
            # and the parked shards resume once the slowest transfer has
            # landed.
            fire_sync(
                sim,
                [runtime for runtime in self._runtimes if runtime.shard.healthy],
                restrict=False,
            )

        def fire_sync(sim: Simulator, healthy_runtimes: List[_ShardRuntime],
                      restrict: bool) -> None:
            sync_start = max([sim.now] + [rt.clock for rt in healthy_runtimes])
            participant_ids = {
                runtime.shard.shard_id for runtime in healthy_runtimes
            }
            sync_done = sync_start
            delivered: Dict[int, set] = {}
            snapshots: Dict[int, Dict] = {}
            for runtime in healthy_runtimes:
                sync_done = max(
                    sync_done,
                    self._broadcast_weights(sim, runtime, sync_start,
                                            merge_on_landing=False,
                                            delivered=delivered,
                                            snapshot_out=snapshots,
                                            among=participant_ids
                                            if restrict else None),
                )
            complete = all(
                len(delivered.get(runtime.shard.shard_id, ()))
                == len(healthy_runtimes) - 1
                for runtime in healthy_runtimes
            )
            # Release tickets carry the parked shard's generation: a shard
            # that crashes (or crashes AND recovers) while the sync is in
            # flight must not be released here — its chain either died or
            # was already restarted by the recovery, and a second release
            # would run a duplicate round chain.
            released = {
                runtime.shard.shard_id: (arrived[runtime.shard.shard_id],
                                         runtime.generation)
                for runtime in self._runtimes
                if runtime.shard.shard_id in arrived
            }
            arrived.clear()

            def apply_average(sim: Simulator) -> None:
                # Average the snapshots that travelled the wire (every
                # shard is parked, so nobody trained since broadcast).
                # Lossy inter-server links: a shard averages only the
                # snapshots that actually reached it, so replicas may
                # diverge under loss exactly like a real deployment's.
                # The coordinator skips shards that crashed since the
                # broadcast; their rendezvous release below is skipped
                # too (a recovery restarts the chain instead).  A
                # quorum-degraded barrier restricts the average (and the
                # install) to the shards that made the rendezvous —
                # stragglers neither contribute nor receive.
                self.cluster.sync_average(
                    None if complete else delivered, snapshots=snapshots,
                    participants=sorted(participant_ids) if restrict else None,
                )
                self.stats.weight_syncs += 1
                logger.debug("weight sync: %d participant(s)%s at t=%.4fs",
                             len(participant_ids),
                             " (quorum-restricted)" if restrict else "",
                             sim.now)
                if self.obs.tracer.enabled:
                    self.obs.tracer.span(
                        "weight-sync", "control", sync_start, sim.now,
                        args={"participants": len(participant_ids),
                              "restricted": restrict})
                # The installed average is durable cluster state: a crash
                # after this instant can be recovered from it, so it is
                # every participant's freshest recovery point (unless a
                # newer checkpoint supersedes it).
                self.cluster.last_sync_time_s = sim.now
                for runtime in self._runtimes:
                    if runtime.shard.healthy and (
                        not restrict
                        or runtime.shard.shard_id in participant_ids
                    ):
                        runtime.shard.note_recovery_point(sim.now, "sync")
                for runtime in self._runtimes:
                    ticket = released.get(runtime.shard.shard_id)
                    if ticket is None or not runtime.shard.healthy:
                        continue
                    round_index, generation = ticket
                    if runtime.generation != generation:
                        continue
                    runtime.clock = max(runtime.clock, sim.now)
                    schedule_round_start(runtime.clock, runtime, round_index + 1)

            sim.schedule(sync_done, apply_average, priority=PRIORITY_DISPATCH,
                         label="weight-sync")

        def on_shard_down(sim: Simulator, runtime: _ShardRuntime,
                          flushed, parked) -> None:
            # The crashed shard cannot resume from a rendezvous it was
            # parked at — and the survivors must not wait for it.
            arrived.pop(runtime.shard.shard_id, None)
            if not arrived:
                # The rendezvous emptied out: retract its quorum timer so
                # a later, unrelated park starts a fresh one.
                resolve_rendezvous(sim)
            maybe_fire_sync(sim)

        self._epoch_hooks = {
            "live": lambda: len(finished) < len(self._runtimes),
            "on_shard_down": on_shard_down,
            "on_shard_up": ensure_chain_running,
            "on_client_moved": lambda sim, end_system, runtime, was_parked: (
                ensure_chain_running(sim, runtime)
            ),
        }
        try:
            for runtime in self._runtimes:
                if runtime.shard.healthy:
                    schedule_round_start(runtime.clock, runtime, 0)
            self._schedule_failure_events(sim)
            self._schedule_chaos_events(sim)
            self._schedule_checkpoint_events(sim)
            self._schedule_obs_events(sim)
            sim.run()
        finally:
            # Always drop the epoch's closures: an exception escaping the
            # run must not leave the engine pinning a dead epoch's state
            # (or reporting its liveness to later failure transitions).
            self._epoch_hooks = self._inert_hooks()
        self.stats.events_processed += sim.processed_events
        self.clock = max([self.clock] + [rt.clock for rt in self._runtimes])
        return tracker

    # ------------------------------------------------------------------ #
    # Asynchronous mode: arrival / dispatch / landing events
    # ------------------------------------------------------------------ #
    def run_asynchronous(
        self,
        iterators: Dict[int, Iterator[Tuple[np.ndarray, np.ndarray]]],
        stop_time: Optional[float] = None,
    ) -> MetricTracker:
        """Event-driven asynchronous training.

        Clients keep at most ``config.max_in_flight`` batches outstanding;
        each shard dispatches a step whenever it is free and at least one
        message has arrived, draining every arrived message into one
        concatenated step when ``server_batching`` is on or taking one
        step per message otherwise.  A step that started at ``t`` ends at
        ``t + server_step_time_s``; a shard may dispatch again once the
        step has ended *and* the step's gradients have landed.  With more
        than one shard, every ``server_sync_every`` steps a shard gossips
        its weights to its peers (staleness-weighted merge on landing).
        When ``stop_time`` is given, no step starts at or after that
        simulated time, and every batch still in flight is abandoned
        (clients discard the pending activations — nothing leaks).
        """
        tracker = MetricTracker()
        sim = Simulator()
        exhausted: set = set()
        in_flight: Dict[int, Tuple[ActivationMessage, EndSystem]] = {}
        # Reliable delivery: transfers whose every retry was physically
        # lost, keyed by (system id, batch id) and resolved by a give-up
        # event at the retry chain's final deadline (a budget stop drains
        # them as plain cancellations instead — the losses were absorbed,
        # so no drop notification is owed).
        pending_giveups: Dict[Tuple[int, int], Tuple[EndSystem, int]] = {}
        # Gradient transfers that already completed back-propagation —
        # the landing guard that makes duplicate downlink copies inert.
        landed: set = set()
        self._stranded = {}
        for runtime in self._runtimes:
            runtime.in_transit = 0
            runtime.waiting.clear()
            runtime.next_free = self.clock
            runtime.dispatch_scheduled = False

        def try_send(end_system: EndSystem, at_time: float) -> None:
            if end_system.system_id in exhausted or sim.stopped:
                return
            if stop_time is not None and at_time >= stop_time:
                # Past the budget: stop feeding new work into the pipeline.
                return
            runtime = self._runtime_of[end_system.system_id]
            if not runtime.shard.healthy:
                # The client's shard is down and nobody has failed it
                # over (yet): park the send — failover or recovery
                # re-issues it.
                self._stranded[end_system.system_id] = (
                    self._stranded.get(end_system.system_id, 0) + 1
                )
                return
            if self._blocking() and not self._queue_has_room(runtime):
                runtime.waiting.append(end_system)
                self.stats.blocked_sends += 1
                return
            try:
                images, labels = next(iterators[end_system.system_id])
            except StopIteration:
                exhausted.add(end_system.system_id)
                return
            if self.config.reliable_delivery:
                message = self._send_uplink_reliable(
                    end_system, images, labels, at_time
                )
                gave_up_at = message.metadata.get("gave_up_at")
                if gave_up_at is not None:
                    # Every retry was physically lost: the client keeps
                    # the batch pending until the give-up deadline, then
                    # abandons it and computes its next one.
                    key = (end_system.system_id, message.batch_id)
                    pending_giveups[key] = (end_system, message.batch_id)

                    def fire_give_up(give_up_sim: Simulator, k=key,
                                     e=end_system, m=message) -> None:
                        if pending_giveups.pop(k, None) is None:
                            return  # already drained by a budget stop
                        self.stats.gave_up += 1
                        e.notify_drop(m.batch_id)
                        try_send(e, give_up_sim.now)

                    sim.schedule(gave_up_at, fire_give_up,
                                 priority=PRIORITY_LANDING,
                                 label="uplink-give-up")
                    return
                arrivals = self._uplink_arrivals(message)
            else:
                message = self._send_uplink(end_system, images, labels, at_time)
                if message is None:
                    # Dropped in transit; the lost batch is forgotten and
                    # the client immediately computes its next one.
                    try_send(end_system, at_time)
                    return
                arrivals = self._uplink_arrivals(message)
            runtime.in_transit += len(arrivals)
            in_flight[message.sequence] = (message, end_system)
            for arrival in arrivals:
                sim.schedule(
                    arrival,
                    lambda s, m=message, e=end_system, r=runtime,
                    g=runtime.generation: on_arrival(s, m, e, r, g),
                    priority=PRIORITY_ARRIVAL,
                    label="uplink-arrival",
                )

        def on_arrival(sim: Simulator, message: ActivationMessage,
                       end_system: EndSystem, runtime: _ShardRuntime,
                       sent_generation: int) -> None:
            in_flight.pop(message.sequence, None)
            if not self._admit(
                sim, message, end_system, runtime,
                # Queue overflow ("drop" policy): the client is NACKed
                # over the downlink and moves on to its next batch when
                # the NACK lands.
                on_notified=lambda s, e=end_system: try_send(e, s.now),
                sent_generation=sent_generation,
            ):
                return
            maybe_dispatch(sim, runtime)

        def schedule_dispatch(at_time: float, runtime: _ShardRuntime) -> None:
            generation = runtime.generation

            def fire(sim: Simulator) -> None:
                if runtime.generation != generation or not runtime.shard.healthy:
                    return
                dispatch(sim, runtime)

            sim.schedule(at_time, fire, priority=PRIORITY_DISPATCH,
                         label="server-step")

        def maybe_dispatch(sim: Simulator, runtime: _ShardRuntime) -> None:
            if runtime.dispatch_scheduled or sim.now < runtime.next_free:
                return
            if not runtime.shard.healthy or not runtime.shard.has_pending():
                return
            runtime.dispatch_scheduled = True
            schedule_dispatch(sim.now, runtime)

        def release_waiters(sim: Simulator, runtime: _ShardRuntime,
                            at_time: float) -> None:
            while runtime.waiting and self._queue_has_room(runtime):
                try_send(runtime.waiting.popleft(), at_time)

        def dispatch(sim: Simulator, runtime: _ShardRuntime) -> None:
            runtime.dispatch_scheduled = False
            if not runtime.shard.has_pending():
                # Went idle; the next arrival re-triggers a dispatch.
                return
            start_time = sim.now
            if stop_time is not None and start_time >= stop_time:
                halt(sim)
                return
            if self.config.server_batching:
                # Batched draining: every message that has arrived by
                # start_time is folded into one concatenated server step
                # costing a single server_step_time_s.
                results = runtime.shard.process_pending_batch(now=start_time)
            else:
                results = [runtime.shard.process_next(now=start_time)]
            self.stats.server_steps += 1
            if self.obs.enabled:
                self._obs_drain(runtime, results, start_time)
            # The pops above freed queue slots; blocked senders go first.
            release_waiters(sim, runtime, start_time)
            finish_time = (
                start_time
                + self.config.server_step_time_s * runtime.service_factor
            )
            self.clock = max(self.clock, finish_time)
            next_dispatch_at = finish_time
            for activation_message, gradient_message in results:
                tracker.update(
                    {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                    count=activation_message.batch_size,
                )
                end_system = self._by_id[activation_message.end_system_id]
                if self.config.reliable_delivery:
                    deliveries, give_up_time = self._send_downlink_reliable(
                        end_system, gradient_message, finish_time
                    )
                    if not deliveries:
                        # Every retry lost: the client abandons the batch
                        # at the give-up deadline and moves on then.
                        key = (end_system.system_id,
                               gradient_message.batch_id)
                        pending_giveups[key] = (end_system,
                                                gradient_message.batch_id)

                        def fire_give_up(give_up_sim: Simulator, k=key,
                                         e=end_system,
                                         g=gradient_message) -> None:
                            if pending_giveups.pop(k, None) is None:
                                return
                            self.stats.gave_up += 1
                            e.notify_drop(g.batch_id)
                            try_send(e, give_up_sim.now)

                        self.clock = max(self.clock, give_up_time)
                        sim.schedule(give_up_time, fire_give_up,
                                     priority=PRIORITY_LANDING,
                                     label="downlink-give-up")
                        continue
                    # The earliest copy completes back-propagation; any
                    # later duplicates are absorbed by the landing guard.
                    # The shard's flow control waits only on that first
                    # copy — a spurious duplicate must not throttle it.
                    arrival = deliveries[0].arrival_time
                    next_dispatch_at = max(next_dispatch_at, arrival)
                    self.clock = max(self.clock, arrival)
                    if self.obs.tracer.enabled:
                        self._obs_downlink(end_system,
                                           gradient_message.batch_id,
                                           finish_time, arrival)
                    for wire in deliveries:
                        sim.schedule(
                            wire.arrival_time,
                            lambda s, e=end_system,
                            g=gradient_message: land(s, e, g),
                            priority=PRIORITY_LANDING,
                            label="gradient-landing",
                        )
                    continue
                downlink = self._send_downlink(end_system, gradient_message, finish_time)
                if downlink is None:
                    end_system.notify_drop(gradient_message.batch_id)
                    # The client moves on as soon as the step has ended.
                    sim.schedule(
                        finish_time,
                        lambda s, e=end_system: try_send(e, s.now),
                        priority=PRIORITY_LANDING,
                        label="gradient-lost",
                    )
                    continue
                next_dispatch_at = max(next_dispatch_at, downlink.arrival_time)
                self.clock = max(self.clock, downlink.arrival_time)
                if self.obs.tracer.enabled:
                    self._obs_downlink(end_system, gradient_message.batch_id,
                                       finish_time, downlink.arrival_time)
                sim.schedule(
                    downlink.arrival_time,
                    lambda s, e=end_system, g=gradient_message: land(s, e, g),
                    priority=PRIORITY_LANDING,
                    label="gradient-landing",
                )
            if (
                self.cluster.num_shards > 1
                and self._healthy_count() > 1
                and runtime.shard.steps_since_sync >= self.cluster.sync_every
            ):
                # Gossip this shard's weights; peers merge on landing
                # with a staleness-decayed coefficient.  The broadcast
                # happens when the step's results ship (finish_time) and
                # never blocks the pipeline.  With every peer down there
                # is nobody to gossip with — the cadence counter keeps
                # running and the next due step after a recovery gossips.
                runtime.shard.steps_since_sync = 0
                self.stats.weight_syncs += 1
                self._broadcast_weights(sim, runtime, finish_time,
                                        merge_on_landing=True)
            # "round" checkpoint cadence rides the dispatch event: the
            # step's state is final and the queue slots it drained are
            # accounted.
            self._maybe_round_checkpoint(sim, runtime)
            # The shard may start its next step once it is free and this
            # step's gradients have all landed.
            runtime.next_free = next_dispatch_at
            runtime.dispatch_scheduled = True
            schedule_dispatch(next_dispatch_at, runtime)

        def land(sim: Simulator, end_system: EndSystem,
                 gradient_message: GradientMessage) -> None:
            if self.config.reliable_delivery:
                # Only the first copy of a gradient completes the batch;
                # spurious-timeout duplicates land and evaporate (and
                # must not mint extra send tokens).
                key = (end_system.system_id, gradient_message.batch_id)
                if key in landed:
                    return
                landed.add(key)
            end_system.apply_gradient(gradient_message)
            # The client computes its next batch as soon as the gradient lands.
            try_send(end_system, sim.now)

        def halt(sim: Simulator) -> None:
            # Budget exhausted.  Abandon whatever has not been trained on —
            # uplinks still in flight and messages sitting in the shard
            # queues — and make sure the owning clients forget the
            # activations.
            if stop_time is not None:
                self.clock = max(self.clock, stop_time)
            for message, end_system in in_flight.values():
                end_system.discard_pending(message.batch_id)
                self.stats.cancelled_at_stop += 1
            in_flight.clear()
            # Pending reliable-delivery give-ups resolve as plain
            # cancellations: their losses were absorbed into the retry
            # ledger, so no drop notification is owed (and none may be
            # issued, or the cross-layer balance would tilt).
            for end_system, batch_id in pending_giveups.values():
                end_system.discard_pending(batch_id)
                self.stats.cancelled_at_stop += 1
            pending_giveups.clear()
            # Queue-dropped batches whose NACK is still in flight resolve
            # as if the NACK had just landed (they were already counted
            # as queue drops, not cancellations).
            for end_system, batch_id in self._awaiting_nack.values():
                end_system.notify_drop(batch_id)
            self._awaiting_nack.clear()
            # flush_all also releases the messages' activation-arena
            # rows on every shard, so a budgeted stop does not pin
            # staged memory.
            for message in self.cluster.flush_all():
                self._by_id[message.end_system_id].discard_pending(message.batch_id)
                self.stats.cancelled_at_stop += 1
            for runtime in self._runtimes:
                runtime.waiting.clear()
                runtime.in_transit = 0
            # Stranded sends hold no pending activations — just forget them.
            self._stranded.clear()
            sim.stop()

        def live() -> bool:
            if sim.stopped:
                return False
            if len(exhausted) < len(self.end_systems):
                return True
            return bool(in_flight) or any(
                runtime.shard.has_pending() for runtime in self._runtimes
            )

        def on_shard_down(sim: Simulator, runtime: _ShardRuntime,
                          flushed, parked) -> None:
            # Clients whose batches were shed at the crash (or who were
            # parked in the dead shard's backpressure queue) immediately
            # try again; the send strands until failover or recovery.
            for message in flushed:
                try_send(self._by_id[message.end_system_id], sim.now)
            for end_system in parked:
                try_send(end_system, sim.now)

        def on_client_moved(sim: Simulator, end_system: EndSystem,
                            runtime: _ShardRuntime, was_parked: bool) -> None:
            pending_sends = self._stranded.pop(end_system.system_id, 0)
            if was_parked:
                pending_sends += 1
            for _ in range(pending_sends):
                try_send(end_system, sim.now)

        def on_shard_up(sim: Simulator, runtime: _ShardRuntime) -> None:
            # Standby clients (never failed over) resume their sends.
            for system_id in list(runtime.shard.client_ids):
                for _ in range(self._stranded.pop(system_id, 0)):
                    try_send(self._by_id[system_id], sim.now)
            maybe_dispatch(sim, runtime)

        self._epoch_hooks = {
            "live": live,
            "on_shard_down": on_shard_down,
            "on_shard_up": on_shard_up,
            "on_client_moved": on_client_moved,
        }
        try:
            # Prime the pipeline: every client ships max_in_flight batches.
            for end_system in self.end_systems:
                for _ in range(self.config.max_in_flight):
                    try_send(end_system, self.clock)
            self._schedule_failure_events(sim)
            self._schedule_chaos_events(sim)
            self._schedule_checkpoint_events(sim)
            self._schedule_obs_events(sim)
            sim.run()
        finally:
            self._epoch_hooks = self._inert_hooks()
        self.stats.events_processed += sim.processed_events
        return tracker
