"""Event-driven training orchestration engine.

Both training modes of :class:`~repro.core.trainer.SpatioTemporalTrainer`
run on one discrete-event engine built on
:class:`~repro.simnet.events.Simulator`.  The engine schedules four kinds
of occurrences:

* **uplink arrival** — a smashed-activation message lands at its shard's
  server and is admitted into (or shed by) that shard's parameter-
  scheduling queue;
* **server step** — a shard trains on its queued messages.  In
  *asynchronous* mode a dispatch event fires per shard whenever that
  shard is free and work has arrived; in *synchronous* mode each shard's
  dispatch is a **barrier** event scheduled at the shard's last arrival
  of the round, and the shard's next round starts once its *own*
  gradients have landed — shards progress independently and meet only
  at sync rendezvous, so nobody waits for stragglers they do not own;
* **gradient landing** — a gradient message reaches its end-system, which
  finishes back-propagation and (asynchronously) ships its next batch;
* **inter-server sync** — with more than one shard, the shards'
  server-segment weights are periodically synchronized over the
  inter-server links: ``"average"`` mode installs a sample-weighted full
  average as a barrier event between rounds, ``"staleness"`` mode
  gossips snapshots whose merge coefficient decays with their transit
  staleness (see :mod:`repro.cluster.coordinator`).

The engine is **shard-generalized**: every queue, arena, backpressure
deque and dispatch state is per shard, and a single-shard cluster runs
the exact same event chains the pre-cluster engine ran (pinned to 1e-9
by ``tests/core/test_engine_equivalence.py`` and
``tests/cluster/test_cluster_equivalence.py``).

Lossy-network semantics
-----------------------
Every way a batch can be lost funnels through
:meth:`EndSystem.notify_drop`, so client-side pending activations never
leak:

* the uplink drops the message in transit (the client immediately moves
  on to its next batch);
* a bounded queue (``TrainingConfig.max_queue_size``) overflows under the
  ``"drop"`` backpressure policy.  The server NACKs the client **over the
  downlink**: the client learns of the loss one downlink delay after the
  overflow (not instantaneously), which is when it forgets the pending
  activation and ships its next batch.  A NACK lost in transit degrades
  to an immediate notification (the timeout abstraction also used for
  lost gradients), so accounting never leaks;
* the downlink drops the gradient (the client forgets the batch when the
  server's reply fails to appear).

Under the ``"block"`` backpressure policy nothing is ever shed at the
queue: an end-system defers its next send until its shard's queue has
room, counting messages already in flight towards the capacity, so
admission never overflows.  Blocked senders wait in per-shard FIFO order
and are released as the shard pops messages.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..cluster.coordinator import ClusterCoordinator
from ..cluster.shard import ServerShard
from ..nn.metrics import MetricTracker
from ..simnet.events import Simulator
from ..simnet.transport import Transport
from ..utils.logging import get_logger
from .config import TrainingConfig
from .end_system import EndSystem
from .messages import ActivationMessage, GradientMessage
from .server import CentralServer

__all__ = [
    "TrainingEngine",
    "EngineStats",
    "PRIORITY_ARRIVAL",
    "PRIORITY_LANDING",
    "PRIORITY_DISPATCH",
]

logger = get_logger("core.engine")

#: Event priorities: at equal simulated times, arrivals are admitted and
#: gradients land *before* the server dispatches, so a step always sees
#: every message that has arrived by its start time.
PRIORITY_ARRIVAL = 0
PRIORITY_LANDING = 1
PRIORITY_DISPATCH = 5


@dataclass
class EngineStats:
    """Counters the engine accumulates across runs (epochs)."""

    queue_drops: int = 0        #: messages shed by a full queue ("drop" policy)
    blocked_sends: int = 0      #: sends deferred by backpressure ("block" policy)
    cancelled_at_stop: int = 0  #: batches abandoned when a time budget cut the run
    events_processed: int = 0   #: simulator events executed
    server_steps: int = 0       #: training steps dispatched (across all shards)
    rounds: int = 0             #: synchronous rounds driven to completion
    nacks_sent: int = 0         #: queue-drop NACKs shipped over the downlink
    nacks_lost: int = 0         #: NACKs the downlink dropped (immediate fallback)
    nack_delay_total_s: float = 0.0  #: summed client-side notification delays
    weight_syncs: int = 0       #: sync events: one per "average" barrier or
                                #: per "staleness" broadcast (NOT per-destination
                                #: merge — per-shard merge counts live in
                                #: ``ServerShard.syncs_applied``)
    sync_messages: int = 0      #: weight snapshots shipped between shards
    sync_messages_lost: int = 0  #: snapshots the inter-server links dropped

    @property
    def mean_nack_delay_s(self) -> float:
        """Mean delay before a client learned of a queue drop (0 if none)."""
        if self.nacks_sent == 0:
            return 0.0
        return self.nack_delay_total_s / self.nacks_sent

    def as_dict(self) -> Dict[str, float]:
        return {
            "queue_drops": self.queue_drops,
            "blocked_sends": self.blocked_sends,
            "cancelled_at_stop": self.cancelled_at_stop,
            "events_processed": self.events_processed,
            "server_steps": self.server_steps,
            "rounds": self.rounds,
            "nacks_sent": self.nacks_sent,
            "nacks_lost": self.nacks_lost,
            "mean_nack_delay_s": self.mean_nack_delay_s,
            "weight_syncs": self.weight_syncs,
            "sync_messages": self.sync_messages,
            "sync_messages_lost": self.sync_messages_lost,
        }


class _ShardRuntime:
    """Per-shard engine state (transit counts, backpressure, dispatch)."""

    __slots__ = ("shard", "in_transit", "deferred", "waiting", "accepted",
                 "next_free", "dispatch_scheduled", "clock", "active")

    def __init__(self, shard: ServerShard) -> None:
        self.shard = shard
        #: Uplink messages admitted (or in transit) but not yet resolved
        #: at this shard; counted towards queue capacity so the "block"
        #: policy can never overflow the queue on arrival.
        self.in_transit = 0
        self.deferred: Deque[EndSystem] = deque()   # sync-mode blocked senders
        self.waiting: Deque[EndSystem] = deque()    # async-mode blocked senders
        self.accepted: List[ActivationMessage] = []  # sync mode, current round
        self.next_free = 0.0
        self.dispatch_scheduled = False
        #: This shard's round clock (synchronous mode): shards progress
        #: through their rounds independently, so a shard of nearby
        #: clients is not throttled by a far-away band it does not own.
        self.clock = 0.0
        #: System ids (of this shard's clients) still holding data this
        #: epoch.
        self.active: set = set()


class TrainingEngine:
    """Discrete-event orchestrator shared by both training modes.

    Parameters
    ----------
    end_systems:
        The deployment's clients, in system-id order.
    transport:
        Network transport over the (possibly multi-hub) topology.
    system_to_node:
        Map from end-system ids to topology node names.
    config:
        Training configuration; the engine consults ``mode``-independent
        fields (``server_batching``, ``server_step_time_s``,
        ``max_in_flight``, ``max_queue_size``, ``queue_backpressure``).
        The weight-sync cadence and mode live on the ``cluster``.
    cluster:
        The shard cluster (owns the sync cadence/mode the trainer seeds
        from the config).  May be omitted (legacy single-server
        construction) when ``server`` is given instead.
    server:
        Legacy single-server argument; wrapped into a one-shard cluster.
    """

    def __init__(
        self,
        end_systems: List[EndSystem],
        transport: Transport,
        system_to_node: Dict[int, str],
        config: TrainingConfig,
        cluster: Optional[ClusterCoordinator] = None,
        server: Optional[CentralServer] = None,
    ) -> None:
        self.end_systems = list(end_systems)
        if cluster is None:
            if server is None:
                raise ValueError("need either a cluster or a server")
            cluster = ClusterCoordinator(
                shards=[ServerShard(0, server, "server")],
                assignment={es.system_id: 0 for es in self.end_systems},
                sync_every=config.server_sync_every,
                sync_mode=config.server_sync_mode,
            )
        self.cluster = cluster
        #: Shard 0's server (back-compat alias for single-server callers).
        self.server = cluster.shards[0].server
        self.transport = transport
        self.system_to_node = dict(system_to_node)
        self.config = config
        self.clock = 0.0
        self.stats = EngineStats()
        self._by_id = {end_system.system_id: end_system for end_system in self.end_systems}
        self._runtimes: List[_ShardRuntime] = [
            _ShardRuntime(shard) for shard in cluster.shards
        ]
        self._runtime_of: Dict[int, _ShardRuntime] = {
            system_id: self._runtimes[shard_index]
            for system_id, shard_index in cluster.assignment.items()
        }
        # Queue-dropped batches whose NACK is still in flight, keyed by
        # activation sequence; a budget stop resolves them immediately.
        self._awaiting_nack: Dict[int, Tuple[EndSystem, int]] = {}

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _blocking(self) -> bool:
        return (
            self.config.max_queue_size is not None
            and self.config.queue_backpressure == "block"
        )

    def _queue_has_room(self, runtime: _ShardRuntime) -> bool:
        capacity = self.config.max_queue_size
        if capacity is None:
            return True
        return len(runtime.shard.queue) + runtime.in_transit < capacity

    def _send_uplink(
        self,
        end_system: EndSystem,
        images: np.ndarray,
        labels: np.ndarray,
        at_time: float,
        round_index: int = 0,
    ) -> Optional[ActivationMessage]:
        """Forward a batch and ship it; ``None`` when the uplink dropped it."""
        message = end_system.forward_batch(
            images, labels, round_index=round_index, created_at=at_time
        )
        network_message = self.transport.send_to_server(
            self.system_to_node[end_system.system_id],
            {"activations": message.activations, "labels": message.labels},
            now=at_time,
        )
        if network_message is None:
            end_system.notify_drop(message.batch_id)
            return None
        message.arrival_time = network_message.arrival_time
        message.size_bytes = network_message.size_bytes
        return message

    def _send_downlink(self, end_system: EndSystem, gradient_message: GradientMessage,
                       at_time: float):
        return self.transport.send_to_end_system(
            self.system_to_node[end_system.system_id],
            gradient_message.gradient,
            now=at_time,
        )

    def _send_nack(self, sim: Simulator, message: ActivationMessage,
                   end_system: EndSystem, on_notified=None) -> None:
        """NACK a queue-dropped batch to its client over the downlink.

        The client forgets the pending activation when the NACK *lands*,
        one downlink delay after the overflow; ``on_notified`` (async
        mode's retry hook) fires at the same moment.  A NACK lost on the
        downlink degrades to an immediate notification — the same
        timeout abstraction lost gradients use — so nothing ever leaks.
        """
        self.stats.nacks_sent += 1
        sent_at = sim.now
        nack = self.transport.send_to_end_system(
            self.system_to_node[end_system.system_id],
            {"nack_batch_id": message.batch_id},
            now=sent_at,
            kind="nack",
        )
        if nack is None:
            self.stats.nacks_lost += 1
            end_system.notify_drop(message.batch_id)
            if on_notified is not None:
                on_notified(sim)
            return
        self._awaiting_nack[message.sequence] = (end_system, message.batch_id)
        self.stats.nack_delay_total_s += nack.arrival_time - sent_at

        def land_nack(landing_sim: Simulator) -> None:
            if self._awaiting_nack.pop(message.sequence, None) is None:
                return  # already resolved by a budget stop
            end_system.notify_drop(message.batch_id)
            if on_notified is not None:
                on_notified(landing_sim)

        sim.schedule(nack.arrival_time, land_nack, priority=PRIORITY_LANDING,
                     label="queue-nack")

    def _admit(self, sim: Simulator, message: ActivationMessage,
               end_system: EndSystem, runtime: _ShardRuntime,
               on_notified=None) -> bool:
        """Resolve an arrival: enqueue it, or shed it and NACK the client."""
        runtime.in_transit -= 1
        if runtime.shard.receive(message):
            return True
        self.stats.queue_drops += 1
        self._send_nack(sim, message, end_system, on_notified=on_notified)
        return False

    def _sync_due(self, completed: int) -> bool:
        # The coordinator owns the sync cadence and mode (the trainer
        # seeds them from TrainingConfig).
        return (
            self.cluster.num_shards > 1
            and completed % self.cluster.sync_every == 0
        )

    def _broadcast_weights(self, sim: Simulator, source: _ShardRuntime,
                           at_time: float, merge_on_landing: bool,
                           delivered: Optional[Dict[int, set]] = None,
                           snapshot_out: Optional[Dict[int, Dict]] = None) -> float:
        """Ship one shard's weight snapshot to every other shard.

        Returns the latest arrival time among the delivered snapshots
        (``at_time`` when everything was dropped).  With
        ``merge_on_landing`` each delivery schedules a staleness-weighted
        merge at its arrival; otherwise the caller owns what happens
        once the transfers have landed (the ``"average"`` barrier), and
        each successful delivery is recorded in ``delivered`` (a
        ``destination shard id -> source shard ids`` map) so a dropped
        snapshot genuinely never contributes to its destination.
        ``snapshot_out`` receives the shipped copy keyed by source shard
        id, so the barrier can average exactly what travelled the wire
        without snapshotting a second time.
        """
        snapshot = source.shard.weights_snapshot()
        if snapshot_out is not None:
            snapshot_out[source.shard.shard_id] = snapshot
        latest_arrival = at_time
        for destination in self._runtimes:
            if destination is source:
                continue
            sync_message = self.transport.send_between_servers(
                source.shard.node_name, destination.shard.node_name,
                snapshot, now=at_time,
            )
            self.stats.sync_messages += 1
            if sync_message is None:
                self.stats.sync_messages_lost += 1
                continue
            if delivered is not None:
                delivered.setdefault(destination.shard.shard_id, set()).add(
                    source.shard.shard_id
                )
            latest_arrival = max(latest_arrival, sync_message.arrival_time)
            if merge_on_landing:
                sim.schedule(
                    sync_message.arrival_time,
                    lambda s, d=destination.shard, snap=snapshot, m=sync_message: (
                        self._apply_staleness_merge(d, snap, m.transit_time)
                    ),
                    priority=PRIORITY_LANDING,
                    label="weight-merge",
                )
        return latest_arrival

    def _apply_staleness_merge(self, shard: ServerShard, snapshot, staleness_s: float
                               ) -> None:
        self.cluster.merge_staleness(shard, snapshot, staleness_s)

    # ------------------------------------------------------------------ #
    # Synchronous mode: rounds as barrier events
    # ------------------------------------------------------------------ #
    def run_synchronous_epoch(
        self, iterators: Dict[int, Iterator[Tuple[np.ndarray, np.ndarray]]]
    ) -> MetricTracker:
        """Drive one synchronous epoch as per-shard chains of round events.

        Each shard runs its own round chain: a *round-start* event where
        the shard's active end-systems each ship one batch, per-message
        *arrival* events that admit (or shed) messages at the shard's
        queue, and one *barrier* event at the shard's last arrival, where
        it drains its queue — as one concatenated step when
        ``server_batching`` is on, or one step per message in policy
        order otherwise — and the gradients flow back.  A shard's next
        round starts once *its own* gradients have landed; shards do not
        wait for each other's stragglers, which is the straggler
        isolation a latency-aware assignment buys.

        The chains meet only at synchronization points: every
        ``server_sync_every`` rounds, ``"average"`` mode parks each shard
        at a **rendezvous** until all still-running shards arrive, then
        exchanges weights over the inter-server links and releases
        everyone once the slowest transfer lands (a shard that already
        exhausted its data joins the average but never blocks the
        rendezvous); ``"staleness"`` mode broadcasts snapshots without
        stopping and peers merge them on landing.  With one shard no
        sync ever fires and the chain reduces exactly to the
        pre-cluster engine's round loop.
        """
        tracker = MetricTracker()
        sim = Simulator()
        for runtime in self._runtimes:
            runtime.in_transit = 0
            runtime.accepted = []
            runtime.clock = self.clock
            runtime.active = {
                system_id for system_id in iterators
                if self._runtime_of[system_id] is runtime
            }
        # Rendezvous state ("average" mode): shards parked at a sync
        # point (mapped to the round they just finished) and shards done
        # with their data for this epoch.
        arrived: Dict[int, int] = {}
        finished: set = set()

        def on_arrival(sim: Simulator, message: ActivationMessage,
                       end_system: EndSystem, runtime: _ShardRuntime) -> None:
            if self._admit(sim, message, end_system, runtime):
                runtime.accepted.append(message)

        def start_round(sim: Simulator, runtime: _ShardRuntime,
                        round_index: int) -> None:
            if not runtime.active:
                finish_shard(sim, runtime)
                return
            senders: List[EndSystem] = list(runtime.deferred)
            already_queued = {end_system.system_id for end_system in senders}
            runtime.deferred.clear()
            senders.extend(
                end_system for end_system in self.end_systems
                if end_system.system_id in runtime.active
                and end_system.system_id not in already_queued
            )
            in_flight = 0
            last_arrival = runtime.clock
            for end_system in senders:
                if end_system.system_id not in runtime.active:
                    continue
                if self._blocking() and not self._queue_has_room(runtime):
                    runtime.deferred.append(end_system)
                    self.stats.blocked_sends += 1
                    continue
                try:
                    images, labels = next(iterators[end_system.system_id])
                except StopIteration:
                    runtime.active.discard(end_system.system_id)
                    continue
                message = self._send_uplink(
                    end_system, images, labels, runtime.clock, round_index=round_index
                )
                if message is None:
                    # The link dropped the batch; the client forgets it and
                    # ships its next batch when the following round starts.
                    continue
                runtime.in_transit += 1
                in_flight += 1
                last_arrival = max(last_arrival, message.arrival_time)
                sim.schedule(
                    message.arrival_time,
                    lambda s, m=message, e=end_system, r=runtime: on_arrival(s, m, e, r),
                    priority=PRIORITY_ARRIVAL,
                    label="uplink-arrival",
                )
            self.stats.rounds += 1
            if in_flight:
                sim.schedule(
                    max(last_arrival, sim.now),
                    lambda s, r=round_index, rt=runtime: barrier(s, r, rt),
                    priority=PRIORITY_DISPATCH,
                    label="round-barrier",
                )
            elif runtime.active:
                # Every send this round was dropped in transit; retry
                # immediately — the simulated clock does not advance.
                sim.schedule(
                    sim.now,
                    lambda s, r=round_index, rt=runtime: start_round(s, rt, r + 1),
                    label="round-start",
                )
            else:
                finish_shard(sim, runtime)

        def barrier(sim: Simulator, round_index: int, runtime: _ShardRuntime) -> None:
            # The shard's queue is drained at every barrier and capacity
            # is >= 1, so a round that put messages in flight always
            # lands at least one (the shard's first arrival cannot be
            # shed).
            arrived_messages = list(runtime.accepted)
            runtime.accepted = []
            # Queue-dropped messages never reached the server segment, so
            # they do not hold the barrier back.
            latest_arrival = max(
                (message.arrival_time for message in arrived_messages),
                default=runtime.clock,
            )
            gradient_arrivals = [latest_arrival]
            if self.config.server_batching:
                # The concatenated step cannot start before the shard's
                # last accepted message of the round has arrived, so every
                # gradient is sent back at latest_arrival.
                results = runtime.shard.process_pending_batch(now=latest_arrival)
                send_times = [latest_arrival] * len(results)
            else:
                results = []
                send_times = []
                while runtime.shard.has_pending():
                    activation_message, gradient_message = runtime.shard.process_next(
                        now=latest_arrival
                    )
                    results.append((activation_message, gradient_message))
                    send_times.append(activation_message.arrival_time)
            self.stats.server_steps += 1
            for (activation_message, gradient_message), send_time in zip(results, send_times):
                tracker.update(
                    {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                    count=activation_message.batch_size,
                )
                end_system = self._by_id[activation_message.end_system_id]
                downlink = self._send_downlink(end_system, gradient_message, send_time)
                if downlink is None:
                    end_system.notify_drop(gradient_message.batch_id)
                    continue
                gradient_arrivals.append(downlink.arrival_time)
                end_system.apply_gradient(gradient_message)
            # Shard-local barrier: this shard's next round starts once its
            # own gradients have landed (and not before this barrier fired).
            runtime.clock = max(runtime.clock, max(gradient_arrivals), sim.now)
            round_done(sim, runtime, round_index)

        def round_done(sim: Simulator, runtime: _ShardRuntime,
                       round_index: int) -> None:
            if self._sync_due(round_index + 1):
                if self.cluster.sync_mode == "average":
                    # Park this shard at the rendezvous; the sync fires
                    # once every still-running shard has arrived.
                    arrived[runtime.shard.shard_id] = round_index
                    maybe_fire_sync(sim)
                    return
                # Staleness gossip: snapshots broadcast now, merges land
                # between rounds, and nobody blocks.
                self.stats.weight_syncs += 1
                self._broadcast_weights(sim, runtime, runtime.clock,
                                        merge_on_landing=True)
            sim.schedule(
                runtime.clock,
                lambda s, r=round_index, rt=runtime: start_round(s, rt, r + 1),
                label="round-start",
            )

        def finish_shard(sim: Simulator, runtime: _ShardRuntime) -> None:
            # Out of data for this epoch.  A rendezvous must not wait for
            # a shard that will never arrive.
            if runtime.shard.shard_id not in finished:
                finished.add(runtime.shard.shard_id)
                maybe_fire_sync(sim)

        def maybe_fire_sync(sim: Simulator) -> None:
            if not arrived:
                return
            if any(
                runtime.shard.shard_id not in arrived
                and runtime.shard.shard_id not in finished
                for runtime in self._runtimes
            ):
                return
            # Full-averaging barrier: every shard (finished ones too —
            # their weights still count) broadcasts its snapshot, and the
            # parked shards resume once the slowest transfer has landed.
            sync_start = max([sim.now] + [rt.clock for rt in self._runtimes])
            sync_done = sync_start
            delivered: Dict[int, set] = {}
            snapshots: Dict[int, Dict] = {}
            for runtime in self._runtimes:
                sync_done = max(
                    sync_done,
                    self._broadcast_weights(sim, runtime, sync_start,
                                            merge_on_landing=False,
                                            delivered=delivered,
                                            snapshot_out=snapshots),
                )
            complete = all(
                len(delivered.get(runtime.shard.shard_id, ())) == len(self._runtimes) - 1
                for runtime in self._runtimes
            )
            released = dict(arrived)
            arrived.clear()

            def apply_average(sim: Simulator) -> None:
                # Average the snapshots that travelled the wire (every
                # shard is parked, so nobody trained since broadcast).
                # Lossy inter-server links: a shard averages only the
                # snapshots that actually reached it, so replicas may
                # diverge under loss exactly like a real deployment's.
                self.cluster.sync_average(
                    None if complete else delivered,
                    snapshots=[snapshots[rt.shard.shard_id] for rt in self._runtimes],
                )
                self.stats.weight_syncs += 1
                for runtime in self._runtimes:
                    round_index = released.get(runtime.shard.shard_id)
                    if round_index is None:
                        continue
                    runtime.clock = max(runtime.clock, sim.now)
                    sim.schedule(
                        runtime.clock,
                        lambda s, r=round_index, rt=runtime: start_round(s, rt, r + 1),
                        label="round-start",
                    )

            sim.schedule(sync_done, apply_average, priority=PRIORITY_DISPATCH,
                         label="weight-sync")

        for runtime in self._runtimes:
            sim.schedule(
                runtime.clock,
                lambda s, rt=runtime: start_round(s, rt, 0),
                label="round-start",
            )
        sim.run()
        self.stats.events_processed += sim.processed_events
        self.clock = max([self.clock] + [rt.clock for rt in self._runtimes])
        return tracker

    # ------------------------------------------------------------------ #
    # Asynchronous mode: arrival / dispatch / landing events
    # ------------------------------------------------------------------ #
    def run_asynchronous(
        self,
        iterators: Dict[int, Iterator[Tuple[np.ndarray, np.ndarray]]],
        stop_time: Optional[float] = None,
    ) -> MetricTracker:
        """Event-driven asynchronous training.

        Clients keep at most ``config.max_in_flight`` batches outstanding;
        each shard dispatches a step whenever it is free and at least one
        message has arrived, draining every arrived message into one
        concatenated step when ``server_batching`` is on or taking one
        step per message otherwise.  A step that started at ``t`` ends at
        ``t + server_step_time_s``; a shard may dispatch again once the
        step has ended *and* the step's gradients have landed.  With more
        than one shard, every ``server_sync_every`` steps a shard gossips
        its weights to its peers (staleness-weighted merge on landing).
        When ``stop_time`` is given, no step starts at or after that
        simulated time, and every batch still in flight is abandoned
        (clients discard the pending activations — nothing leaks).
        """
        tracker = MetricTracker()
        sim = Simulator()
        exhausted: set = set()
        in_flight: Dict[int, Tuple[ActivationMessage, EndSystem]] = {}
        for runtime in self._runtimes:
            runtime.in_transit = 0
            runtime.waiting.clear()
            runtime.next_free = self.clock
            runtime.dispatch_scheduled = False

        def try_send(end_system: EndSystem, at_time: float) -> None:
            if end_system.system_id in exhausted or sim.stopped:
                return
            if stop_time is not None and at_time >= stop_time:
                # Past the budget: stop feeding new work into the pipeline.
                return
            runtime = self._runtime_of[end_system.system_id]
            if self._blocking() and not self._queue_has_room(runtime):
                runtime.waiting.append(end_system)
                self.stats.blocked_sends += 1
                return
            try:
                images, labels = next(iterators[end_system.system_id])
            except StopIteration:
                exhausted.add(end_system.system_id)
                return
            message = self._send_uplink(end_system, images, labels, at_time)
            if message is None:
                # Dropped in transit; the lost batch is forgotten and the
                # client immediately computes its next one.
                try_send(end_system, at_time)
                return
            runtime.in_transit += 1
            in_flight[message.sequence] = (message, end_system)
            sim.schedule(
                message.arrival_time,
                lambda s, m=message, e=end_system, r=runtime: on_arrival(s, m, e, r),
                priority=PRIORITY_ARRIVAL,
                label="uplink-arrival",
            )

        def on_arrival(sim: Simulator, message: ActivationMessage,
                       end_system: EndSystem, runtime: _ShardRuntime) -> None:
            in_flight.pop(message.sequence, None)
            if not self._admit(
                sim, message, end_system, runtime,
                # Queue overflow ("drop" policy): the client is NACKed
                # over the downlink and moves on to its next batch when
                # the NACK lands.
                on_notified=lambda s, e=end_system: try_send(e, s.now),
            ):
                return
            maybe_dispatch(sim, runtime)

        def maybe_dispatch(sim: Simulator, runtime: _ShardRuntime) -> None:
            if runtime.dispatch_scheduled or sim.now < runtime.next_free:
                return
            if not runtime.shard.has_pending():
                return
            runtime.dispatch_scheduled = True
            sim.schedule(sim.now, lambda s, r=runtime: dispatch(s, r),
                         priority=PRIORITY_DISPATCH, label="server-step")

        def release_waiters(sim: Simulator, runtime: _ShardRuntime,
                            at_time: float) -> None:
            while runtime.waiting and self._queue_has_room(runtime):
                try_send(runtime.waiting.popleft(), at_time)

        def dispatch(sim: Simulator, runtime: _ShardRuntime) -> None:
            runtime.dispatch_scheduled = False
            if not runtime.shard.has_pending():
                # Went idle; the next arrival re-triggers a dispatch.
                return
            start_time = sim.now
            if stop_time is not None and start_time >= stop_time:
                halt(sim)
                return
            if self.config.server_batching:
                # Batched draining: every message that has arrived by
                # start_time is folded into one concatenated server step
                # costing a single server_step_time_s.
                results = runtime.shard.process_pending_batch(now=start_time)
            else:
                results = [runtime.shard.process_next(now=start_time)]
            self.stats.server_steps += 1
            # The pops above freed queue slots; blocked senders go first.
            release_waiters(sim, runtime, start_time)
            finish_time = start_time + self.config.server_step_time_s
            self.clock = max(self.clock, finish_time)
            next_dispatch_at = finish_time
            for activation_message, gradient_message in results:
                tracker.update(
                    {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                    count=activation_message.batch_size,
                )
                end_system = self._by_id[activation_message.end_system_id]
                downlink = self._send_downlink(end_system, gradient_message, finish_time)
                if downlink is None:
                    end_system.notify_drop(gradient_message.batch_id)
                    # The client moves on as soon as the step has ended.
                    sim.schedule(
                        finish_time,
                        lambda s, e=end_system: try_send(e, s.now),
                        priority=PRIORITY_LANDING,
                        label="gradient-lost",
                    )
                    continue
                next_dispatch_at = max(next_dispatch_at, downlink.arrival_time)
                self.clock = max(self.clock, downlink.arrival_time)
                sim.schedule(
                    downlink.arrival_time,
                    lambda s, e=end_system, g=gradient_message: land(s, e, g),
                    priority=PRIORITY_LANDING,
                    label="gradient-landing",
                )
            if (
                self.cluster.num_shards > 1
                and runtime.shard.steps_since_sync >= self.cluster.sync_every
            ):
                # Gossip this shard's weights; peers merge on landing
                # with a staleness-decayed coefficient.  The broadcast
                # happens when the step's results ship (finish_time) and
                # never blocks the pipeline.
                runtime.shard.steps_since_sync = 0
                self.stats.weight_syncs += 1
                self._broadcast_weights(sim, runtime, finish_time,
                                        merge_on_landing=True)
            # The shard may start its next step once it is free and this
            # step's gradients have all landed.
            runtime.next_free = next_dispatch_at
            runtime.dispatch_scheduled = True
            sim.schedule(next_dispatch_at, lambda s, r=runtime: dispatch(s, r),
                         priority=PRIORITY_DISPATCH, label="server-step")

        def land(sim: Simulator, end_system: EndSystem,
                 gradient_message: GradientMessage) -> None:
            end_system.apply_gradient(gradient_message)
            # The client computes its next batch as soon as the gradient lands.
            try_send(end_system, sim.now)

        def halt(sim: Simulator) -> None:
            # Budget exhausted.  Abandon whatever has not been trained on —
            # uplinks still in flight and messages sitting in the shard
            # queues — and make sure the owning clients forget the
            # activations.
            if stop_time is not None:
                self.clock = max(self.clock, stop_time)
            for message, end_system in in_flight.values():
                end_system.discard_pending(message.batch_id)
                self.stats.cancelled_at_stop += 1
            in_flight.clear()
            # Queue-dropped batches whose NACK is still in flight resolve
            # as if the NACK had just landed (they were already counted
            # as queue drops, not cancellations).
            for end_system, batch_id in self._awaiting_nack.values():
                end_system.notify_drop(batch_id)
            self._awaiting_nack.clear()
            # flush_all also releases the messages' activation-arena
            # rows on every shard, so a budgeted stop does not pin
            # staged memory.
            for message in self.cluster.flush_all():
                self._by_id[message.end_system_id].discard_pending(message.batch_id)
                self.stats.cancelled_at_stop += 1
            for runtime in self._runtimes:
                runtime.waiting.clear()
                runtime.in_transit = 0
            sim.stop()

        # Prime the pipeline: every client ships max_in_flight batches.
        for end_system in self.end_systems:
            for _ in range(self.config.max_in_flight):
                try_send(end_system, self.clock)
        sim.run()
        self.stats.events_processed += sim.processed_events
        return tracker
