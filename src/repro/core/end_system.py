"""End-system: the client side of spatio-temporal split learning.

Each end-system (a hospital in the paper's motivating scenario) owns

* a private local dataset that never leaves the machine,
* its own copy of the first ``L_i`` blocks of the CNN (the *client
  segment*), and
* an optimizer for those local parameters.

During training the end-system pushes a batch through its client segment,
ships the resulting smashed activations (plus labels) to the centralized
server, and later — when the server's gradient message arrives — finishes
back-propagation through its local layers and applies the update.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..data.loader import DataLoader
from ..nn import Sequential, Tensor, no_grad
from ..nn.optim import Optimizer, get_optimizer
from .messages import ActivationMessage, GradientMessage
from .split import SplitSpec

__all__ = ["EndSystem"]


class EndSystem:
    """One client in the spatio-temporal split-learning system.

    Parameters
    ----------
    system_id:
        Integer identifier (also used as the node index in the simulated
        network topology).
    loader:
        DataLoader over the end-system's *local* training shard.
    split_spec:
        The architecture/cut description shared by the whole deployment.
    optimizer_name / optimizer_kwargs:
        Optimizer for the client segment's parameters (ignored when the
        cut is 0 and the client segment has no parameters).
    seed:
        Seed for the client segment's weight initialization; every
        end-system should receive a different seed.
    """

    def __init__(
        self,
        system_id: int,
        loader: DataLoader,
        split_spec: SplitSpec,
        optimizer_name: str = "adam",
        optimizer_kwargs: Optional[Dict] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.system_id = int(system_id)
        self.loader = loader
        self.split_spec = split_spec
        self.model: Sequential = split_spec.build_client_segment(seed=seed)
        optimizer_kwargs = dict(optimizer_kwargs or {"lr": 1e-3})
        parameters = self.model.parameters()
        self.optimizer: Optional[Optimizer] = None
        if parameters:
            self.optimizer = get_optimizer(optimizer_name, parameters, **optimizer_kwargs)
        # Pending forward activations, keyed by batch id, waiting for the
        # server's gradient to complete back-propagation.
        self._pending: Dict[int, Tensor] = {}
        self._next_batch_id = 0
        self.samples_seen = 0
        self.updates_applied = 0
        # How many times the network/queue told this end-system one of its
        # batches was lost (transport drop, downlink drop or queue overflow).
        self.drops_notified = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def node_name(self) -> str:
        """Name of this end-system in the simulated topology."""
        return f"end_system_{self.system_id}"

    @property
    def has_trainable_parameters(self) -> bool:
        """False only for the ``client_blocks=0`` (centralized) configuration."""
        return self.optimizer is not None

    @property
    def num_local_samples(self) -> int:
        """Number of training samples stored on this end-system."""
        return len(self.loader.dataset)

    @property
    def pending_batches(self) -> int:
        """Batches forwarded but not yet updated with a server gradient."""
        return len(self._pending)

    # ------------------------------------------------------------------ #
    # Training-side API
    # ------------------------------------------------------------------ #
    def batches(self, epoch: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over the local shard's mini-batches for ``epoch``."""
        self.loader.set_epoch(epoch)
        return iter(self.loader)

    def forward_batch(self, images: np.ndarray, labels: np.ndarray,
                      round_index: int = 0, created_at: float = 0.0) -> ActivationMessage:
        """Run the client segment and package the smashed activations.

        The returned message holds a *detached copy* of the activations:
        the server never sees the client-side computation graph, mirroring
        the real deployment where only raw bytes cross the network.
        """
        self.model.train(True)
        if not self.has_trainable_parameters:
            # client_blocks == 0: no gradient will ever flow back, so run
            # the no-grad fast path instead of building a throwaway graph.
            with no_grad():
                outputs = self.model(Tensor(images))
        else:
            outputs = self.model(Tensor(images, requires_grad=True))
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        if self.has_trainable_parameters:
            self._pending[batch_id] = outputs
        self.samples_seen += images.shape[0]
        return ActivationMessage(
            end_system_id=self.system_id,
            batch_id=batch_id,
            activations=outputs.data.copy(),
            labels=np.asarray(labels).copy(),
            round_index=round_index,
            created_at=created_at,
        )

    def apply_gradient(self, message: GradientMessage) -> None:
        """Finish back-propagation with the server's gradient and update weights."""
        if not self.has_trainable_parameters:
            # Nothing to learn locally (client_blocks = 0).
            self._pending.pop(message.batch_id, None)
            return
        if message.end_system_id != self.system_id:
            raise ValueError(
                f"gradient for end-system {message.end_system_id} delivered to "
                f"end-system {self.system_id}"
            )
        outputs = self._pending.pop(message.batch_id, None)
        if outputs is None:
            raise KeyError(
                f"end-system {self.system_id} has no pending batch {message.batch_id}"
            )
        if message.gradient.shape != outputs.shape:
            raise ValueError(
                f"gradient shape {message.gradient.shape} does not match activation "
                f"shape {outputs.shape}"
            )
        self.optimizer.zero_grad()
        outputs.backward(message.gradient)
        self.optimizer.step()
        self.updates_applied += 1

    def has_pending(self, batch_id: int) -> bool:
        """Whether ``batch_id`` is still awaiting its server gradient.

        Reliable delivery can land duplicate gradient copies; only the
        first completes back-propagation — the engine guards the landing
        with this check so later copies are silently dropped.
        """
        return batch_id in self._pending

    def discard_pending(self, batch_id: Optional[int] = None) -> int:
        """Drop pending activations (all of them when ``batch_id`` is ``None``).

        Used when the network dropped the corresponding message and the
        server's gradient will never arrive.
        """
        if batch_id is not None:
            return 1 if self._pending.pop(batch_id, None) is not None else 0
        dropped = len(self._pending)
        self._pending.clear()
        return dropped

    def notify_drop(self, batch_id: int) -> int:
        """Record that the network or server queue lost batch ``batch_id``.

        Every drop anywhere on the path (uplink loss, queue overflow,
        downlink loss) must funnel through here so the client both
        forgets the pending activation — its gradient will never arrive —
        and counts the loss.  The drop-accounting tests check that the
        sum of these notifications matches the transport log plus the
        queue's drop counter.
        """
        self.drops_notified += 1
        return self.discard_pending(batch_id)

    # ------------------------------------------------------------------ #
    # Inference-side API
    # ------------------------------------------------------------------ #
    def forward_inference(self, images: np.ndarray) -> np.ndarray:
        """Run the client segment without building a graph (evaluation path)."""
        self.model.train(False)
        with no_grad():
            outputs = self.model(Tensor(images))
        return outputs.data

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Checkpoint of the client segment's parameters."""
        return self.model.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the client segment's parameters."""
        self.model.load_state_dict(state)

    def __repr__(self) -> str:
        return (
            f"EndSystem(id={self.system_id}, samples={self.num_local_samples}, "
            f"blocks={self.split_spec.client_blocks})"
        )
