"""Compression and perturbation of the smashed activations (extension).

The paper ships the first block's activations to the server uncompressed.
Two natural extensions from the split-learning literature — both listed as
follow-up work in DESIGN.md — are implemented here:

* **Compression** reduces the uplink volume of every activation message:
  :class:`Uint8Quantizer` (8-bit affine quantization, 8x smaller than
  float64) and :class:`TopKSparsifier` (keep only the largest-magnitude
  fraction of entries).
* **Perturbation** improves privacy at the cut:
  :class:`GaussianNoisePerturbation` clips each sample's activation norm
  and adds calibrated Gaussian noise (the Gaussian mechanism used by
  DP-SGD-style defenses).

All transforms implement the :class:`ActivationTransform` interface:
``apply`` returns the (lossy) activations the server will train on plus
the number of bytes that would actually cross the wire, so experiments can
report the accuracy / traffic / leakage trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = [
    "ActivationTransform",
    "TransformResult",
    "NoCompression",
    "Uint8Quantizer",
    "TopKSparsifier",
    "GaussianNoisePerturbation",
    "get_transform",
]


@dataclass
class TransformResult:
    """Outcome of applying an activation transform to one batch."""

    activations: np.ndarray
    wire_bytes: int
    metadata: Dict[str, float]


class ActivationTransform:
    """Base class: maps a batch of smashed activations to what crosses the wire."""

    name = "identity"

    def apply(self, activations: np.ndarray) -> TransformResult:
        """Return the server-visible activations and the wire size in bytes."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoCompression(ActivationTransform):
    """Ship the raw float activations (the paper's setting)."""

    name = "none"

    def apply(self, activations: np.ndarray) -> TransformResult:
        activations = np.asarray(activations)
        return TransformResult(
            activations=activations,
            wire_bytes=int(activations.nbytes),
            metadata={},
        )


class Uint8Quantizer(ActivationTransform):
    """Per-batch affine quantization of activations to 8-bit integers.

    The client sends ``round((x - min) / scale)`` as uint8 plus the two
    float parameters; the server de-quantizes before training.  The
    returned activations are the *de-quantized* values, i.e. exactly what
    the server would reconstruct, so downstream accuracy reflects the
    quantization error.
    """

    name = "uint8"

    def __init__(self, levels: int = 256) -> None:
        if not 2 <= levels <= 256:
            raise ValueError("levels must be in [2, 256]")
        self.levels = levels

    def apply(self, activations: np.ndarray) -> TransformResult:
        activations = np.asarray(activations, dtype=np.float64)
        minimum = float(activations.min())
        maximum = float(activations.max())
        scale = (maximum - minimum) / (self.levels - 1)
        if scale == 0.0:
            # Constant tensor: one byte per element is still what the wire carries.
            return TransformResult(
                activations=activations.copy(),
                wire_bytes=int(activations.size + 16),
                metadata={"scale": 0.0, "min": minimum},
            )
        quantized = np.clip(np.round((activations - minimum) / scale), 0, self.levels - 1)
        dequantized = quantized * scale + minimum
        return TransformResult(
            activations=dequantized,
            wire_bytes=int(activations.size + 16),  # one byte per entry + the two floats
            metadata={
                "scale": scale,
                "min": minimum,
                "quantization_mse": float(np.mean((dequantized - activations) ** 2)),
            },
        )


class TopKSparsifier(ActivationTransform):
    """Keep only the largest-magnitude fraction of activation entries.

    The wire carries the surviving values plus their 32-bit indices; the
    server reconstructs a dense tensor with zeros elsewhere.
    """

    name = "topk"

    def __init__(self, keep_fraction: float = 0.25) -> None:
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        self.keep_fraction = keep_fraction

    def apply(self, activations: np.ndarray) -> TransformResult:
        activations = np.asarray(activations, dtype=np.float64)
        flat = activations.reshape(-1)
        keep = max(1, int(round(flat.size * self.keep_fraction)))
        if keep >= flat.size:
            return NoCompression().apply(activations)
        threshold_index = flat.size - keep
        partition = np.argpartition(np.abs(flat), threshold_index)
        kept_indices = partition[threshold_index:]
        sparse = np.zeros_like(flat)
        sparse[kept_indices] = flat[kept_indices]
        wire_bytes = keep * (8 + 4)  # float64 value + uint32 index per entry
        return TransformResult(
            activations=sparse.reshape(activations.shape),
            wire_bytes=int(wire_bytes),
            metadata={
                "kept_entries": float(keep),
                "kept_fraction": keep / flat.size,
            },
        )


class GaussianNoisePerturbation(ActivationTransform):
    """Clip per-sample activation norms and add Gaussian noise (DP-style defense).

    Each sample's activation vector is scaled down to at most
    ``clip_norm`` in L2 norm, then ``N(0, (noise_multiplier * clip_norm)^2)``
    noise is added element-wise — the Gaussian mechanism, applied at the
    cut so that the server (and any eavesdropper) only ever sees noised
    activations.  Traffic is unchanged; the benefit shows up in the
    leakage metrics and the cost in accuracy.
    """

    name = "gaussian_noise"

    def __init__(self, noise_multiplier: float = 0.5, clip_norm: float = 1.0,
                 seed: Optional[int] = None) -> None:
        if noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        if clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        self.noise_multiplier = noise_multiplier
        self.clip_norm = clip_norm
        self._rng = np.random.default_rng(seed)

    def apply(self, activations: np.ndarray) -> TransformResult:
        activations = np.asarray(activations, dtype=np.float64)
        batch = activations.shape[0]
        flat = activations.reshape(batch, -1)
        norms = np.linalg.norm(flat, axis=1, keepdims=True)
        scales = np.minimum(1.0, self.clip_norm / np.maximum(norms, 1e-12))
        clipped = flat * scales
        noise_std = self.noise_multiplier * self.clip_norm
        noised = clipped + self._rng.normal(0.0, noise_std, size=clipped.shape)
        return TransformResult(
            activations=noised.reshape(activations.shape),
            wire_bytes=int(activations.nbytes),
            metadata={
                "noise_std": noise_std,
                "mean_clip_scale": float(scales.mean()),
            },
        )


_TRANSFORMS = {
    "none": NoCompression,
    "uint8": Uint8Quantizer,
    "topk": TopKSparsifier,
    "gaussian_noise": GaussianNoisePerturbation,
}


def get_transform(name: str, **kwargs) -> ActivationTransform:
    """Instantiate an activation transform by name
    (``none``, ``uint8``, ``topk``, ``gaussian_noise``)."""
    try:
        return _TRANSFORMS[name.lower()](**kwargs)
    except KeyError:
        known = ", ".join(sorted(_TRANSFORMS))
        raise KeyError(f"unknown transform {name!r}; known transforms: {known}") from None
