"""Message types exchanged between end-systems and the centralized server.

In spatio-temporal split learning the only data crossing the network are

* :class:`ActivationMessage` — the "smashed" activations produced by an
  end-system's last local layer together with the batch's labels (labels
  are required because the server computes the loss); and
* :class:`GradientMessage` — the gradient of the loss with respect to the
  smashed activations, flowing back so the end-system can finish
  back-propagation through its local layers.

Raw input images never appear in either message, which is the privacy
property the paper claims.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

__all__ = ["ActivationMessage", "GradientMessage"]

_ACTIVATION_COUNTER = itertools.count()


@dataclass
class ActivationMessage:
    """Smashed activations travelling from an end-system to the server."""

    end_system_id: int
    batch_id: int
    activations: np.ndarray
    labels: np.ndarray
    round_index: int = 0
    created_at: float = 0.0
    arrival_time: float = 0.0
    size_bytes: int = 0
    sequence: int = field(default_factory=lambda: next(_ACTIVATION_COUNTER))
    #: Engine-side annotations riding the message (reliable delivery
    #: stamps the wire-arrival list and give-up/resolution flags here).
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.activations = np.asarray(self.activations)
        self.labels = np.asarray(self.labels).reshape(-1)
        if self.activations.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"activation batch size {self.activations.shape[0]} does not match "
                f"label count {self.labels.shape[0]}"
            )
        if self.size_bytes == 0:
            self.size_bytes = int(self.activations.nbytes + self.labels.nbytes)

    @property
    def batch_size(self) -> int:
        """Number of samples carried by this message."""
        return int(self.activations.shape[0])

    @property
    def queueing_delay(self) -> float:
        """Seconds spent in flight (arrival - creation)."""
        return self.arrival_time - self.created_at

    def staleness(self, now: float) -> float:
        """Seconds elapsed since this message was created."""
        return now - self.created_at


@dataclass
class GradientMessage:
    """Gradient of the loss w.r.t. smashed activations, flowing back to an end-system."""

    end_system_id: int
    batch_id: int
    gradient: np.ndarray
    loss: float = 0.0
    accuracy: float = 0.0
    created_at: float = 0.0
    arrival_time: float = 0.0
    size_bytes: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.gradient = np.asarray(self.gradient)
        if self.size_bytes == 0:
            self.size_bytes = int(self.gradient.nbytes)
