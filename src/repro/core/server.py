"""Centralized server: the upper half of the split network.

The server holds every layer *after* the cut (the remaining ``Conv2D`` /
``MaxPooling2D`` blocks, the dense layers and the output layer), a single
optimizer for those parameters, and the parameter-scheduling queue that
absorbs activations arriving from geo-distributed end-systems.

Because one shared server segment is trained on the activations of every
end-system, "all training data is used for single deep neural network
training" (the paper's phrase) even though no raw data is ever uploaded.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..nn import Sequential, Tensor, no_grad
from ..nn.losses import Loss, get_loss
from ..nn.metrics import accuracy
from ..nn.optim import Optimizer, get_optimizer
from .messages import ActivationMessage, GradientMessage
from .scheduling import ParameterQueue, SchedulingPolicy
from .split import SplitSpec

__all__ = ["CentralServer"]


class CentralServer:
    """The single centralized server shared by all end-systems.

    Parameters
    ----------
    split_spec:
        Architecture/cut description (must match the end-systems').
    optimizer_name / optimizer_kwargs:
        Optimizer for the server segment's parameters.
    loss_name:
        Loss computed on the server side (``cross_entropy`` for the
        paper's classification task).
    queue_policy:
        Scheduling policy instance for the arrival queue; defaults to FIFO.
    seed:
        Seed for the server segment's weight initialization.
    """

    def __init__(
        self,
        split_spec: SplitSpec,
        optimizer_name: str = "adam",
        optimizer_kwargs: Optional[Dict] = None,
        loss_name: str = "cross_entropy",
        queue_policy: Optional[SchedulingPolicy] = None,
        max_queue_size: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.split_spec = split_spec
        self.model: Sequential = split_spec.build_server_segment(seed=seed)
        if not self.model.parameters():
            raise ValueError(
                "the server segment has no trainable parameters; the cut places "
                "every layer on the end-systems, which the framework does not support"
            )
        optimizer_kwargs = dict(optimizer_kwargs or {"lr": 1e-3})
        self.optimizer: Optimizer = get_optimizer(
            optimizer_name, self.model.parameters(), **optimizer_kwargs
        )
        self.loss_fn: Loss = get_loss(loss_name)
        self.queue = ParameterQueue(policy=queue_policy, max_size=max_queue_size)
        self.batches_processed = 0
        self.samples_processed = 0

    # ------------------------------------------------------------------ #
    # Queue interface
    # ------------------------------------------------------------------ #
    def receive(self, message: ActivationMessage) -> bool:
        """Push an arriving activation message into the scheduling queue."""
        return self.queue.push(message)

    def has_pending(self) -> bool:
        """True when the queue holds unprocessed messages."""
        return bool(self.queue)

    # ------------------------------------------------------------------ #
    # Training step
    # ------------------------------------------------------------------ #
    def process(self, message: ActivationMessage) -> GradientMessage:
        """Train on one activation message and return the boundary gradient.

        The server (1) wraps the smashed activations in a fresh leaf
        tensor, (2) runs its segment forward, (3) computes the loss against
        the labels shipped with the message, (4) back-propagates, (5)
        updates its own parameters and (6) returns the gradient of the loss
        with respect to the smashed activations so the originating
        end-system can update its local layers.
        """
        self.model.train(True)
        smashed = Tensor(message.activations, requires_grad=True)
        logits = self.model(smashed)
        loss = self.loss_fn(logits, message.labels)

        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()

        self.batches_processed += 1
        self.samples_processed += message.batch_size

        boundary_gradient = smashed.grad
        if boundary_gradient is None:
            boundary_gradient = np.zeros_like(message.activations)
        return GradientMessage(
            end_system_id=message.end_system_id,
            batch_id=message.batch_id,
            gradient=boundary_gradient.copy(),
            loss=float(loss.item()),
            accuracy=accuracy(logits, message.labels),
        )

    def process_next(self, now: Optional[float] = None) -> Tuple[ActivationMessage, GradientMessage]:
        """Pop the next message according to the scheduling policy and train on it."""
        message = self.queue.pop(now)
        return message, self.process(message)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict(self, activations: np.ndarray) -> np.ndarray:
        """Run the server segment in evaluation mode, returning logits."""
        self.model.train(False)
        with no_grad():
            logits = self.model(Tensor(activations))
        return logits.data

    def evaluate(self, activations: np.ndarray, labels: np.ndarray) -> Dict[str, float]:
        """Loss and accuracy of the server segment on pre-computed activations."""
        logits = self.predict(activations)
        with no_grad():
            loss = self.loss_fn(Tensor(logits), labels)
        return {"loss": float(loss.item()), "accuracy": accuracy(logits, labels)}

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Checkpoint of the server segment's parameters."""
        return self.model.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the server segment's parameters."""
        self.model.load_state_dict(state)

    def __repr__(self) -> str:
        return (
            f"CentralServer(blocks_on_clients={self.split_spec.client_blocks}, "
            f"policy={type(self.queue.policy).__name__}, "
            f"batches_processed={self.batches_processed})"
        )
