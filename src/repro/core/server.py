"""Centralized server: the upper half of the split network.

The server holds every layer *after* the cut (the remaining ``Conv2D`` /
``MaxPooling2D`` blocks, the dense layers and the output layer), a single
optimizer for those parameters, and the parameter-scheduling queue that
absorbs activations arriving from geo-distributed end-systems.

Because one shared server segment is trained on the activations of every
end-system, "all training data is used for single deep neural network
training" (the paper's phrase) even though no raw data is ever uploaded.

Zero-copy batched drains
------------------------
With the activation arena enabled (the default), :meth:`receive` copies
each admitted payload into a preallocated shape bucket
(:class:`repro.utils.arena.ActivationArena`) at enqueue time, so
:meth:`process_pending_batch` trains on one contiguous **view** of the
arena instead of rebuilding the batch with ``np.concatenate`` on the
latency-critical drain.  Ragged traffic or partially-popped buckets fall
back to concatenation with identical semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import Sequential, Tensor, no_grad
from ..nn.losses import Loss, get_loss
from ..nn.metrics import accuracy
from ..nn.optim import Optimizer, get_optimizer
from ..utils.arena import ActivationArena, GatheredBatch
from .messages import ActivationMessage, GradientMessage
from .scheduling import ParameterQueue, SchedulingPolicy
from .split import SplitSpec

__all__ = ["CentralServer"]


def _segment_means(values: np.ndarray, segments: List[Tuple[int, int]]) -> List[float]:
    """Mean of ``values`` rows over each ``(start, stop)`` segment.

    When the segments tile ``values`` in increasing order (every batched
    drain: cumulative offsets or a contiguous arena span) the means come
    from a single ``np.add.reduceat`` over the flattened rows; otherwise
    each segment is averaged individually.  Multi-dimensional rows (e.g.
    an elementwise MSE) average over all of a segment's elements, exactly
    like calling the mean-reduced loss on the slice.
    """
    if values.dtype == np.bool_:
        # reduceat over bool would OR instead of count.
        values = values.astype(np.float64)
    flat = values.reshape(values.shape[0], -1) if values.ndim > 1 else values
    row_width = flat.shape[1] if values.ndim > 1 else 1
    monotone = (
        segments
        and segments[0][0] == 0
        and segments[-1][1] == values.shape[0]
        and all(stop == next_start for (_, stop), (next_start, _) in zip(segments, segments[1:]))
        and all(stop > start for start, stop in segments)
    )
    if monotone:
        starts = np.fromiter((start for start, _ in segments), dtype=np.int64,
                             count=len(segments))
        sums = np.add.reduceat(flat.sum(axis=1) if values.ndim > 1 else flat, starts)
        counts = np.fromiter(((stop - start) * row_width for start, stop in segments),
                             dtype=np.float64, count=len(segments))
        return [float(value) for value in sums / counts]
    return [
        float(flat[start:stop].mean()) if stop > start else 0.0
        for start, stop in segments
    ]


class CentralServer:
    """The single centralized server shared by all end-systems.

    Parameters
    ----------
    split_spec:
        Architecture/cut description (must match the end-systems').
    optimizer_name / optimizer_kwargs:
        Optimizer for the server segment's parameters.
    loss_name:
        Loss computed on the server side (``cross_entropy`` for the
        paper's classification task).
    queue_policy:
        Scheduling policy instance for the arrival queue; defaults to FIFO.
    use_arena:
        Stage admitted payloads into the activation arena at enqueue
        time so batched drains are zero-copy (default ``True``).
    seed:
        Seed for the server segment's weight initialization.
    """

    def __init__(
        self,
        split_spec: SplitSpec,
        optimizer_name: str = "adam",
        optimizer_kwargs: Optional[Dict] = None,
        loss_name: str = "cross_entropy",
        queue_policy: Optional[SchedulingPolicy] = None,
        max_queue_size: Optional[int] = None,
        use_arena: bool = True,
        seed: Optional[int] = None,
    ) -> None:
        self.split_spec = split_spec
        self.model: Sequential = split_spec.build_server_segment(seed=seed)
        if not self.model.parameters():
            raise ValueError(
                "the server segment has no trainable parameters; the cut places "
                "every layer on the end-systems, which the framework does not support"
            )
        optimizer_kwargs = dict(optimizer_kwargs or {"lr": 1e-3})
        self.optimizer: Optimizer = get_optimizer(
            optimizer_name, self.model.parameters(), **optimizer_kwargs
        )
        self.loss_fn: Loss = get_loss(loss_name)
        # Per-sample (reduction="none") twin of the configured loss, used
        # to report every message's loss from one vectorised pass over
        # the union batch instead of one loss call per message.
        self._per_sample_loss: Loss = get_loss(loss_name, reduction="none")
        self.queue = ParameterQueue(policy=queue_policy, max_size=max_queue_size)
        self.arena: Optional[ActivationArena] = ActivationArena() if use_arena else None
        self.batches_processed = 0
        self.samples_processed = 0
        # Every activation sequence this server has ever ruled on
        # (admitted *or* rejected) — the idempotent-receiver side of
        # reliable delivery: a retransmitted or chaos-duplicated copy of
        # a known sequence is deduplicated instead of re-admitted.
        self._seen_sequences: set = set()

    # ------------------------------------------------------------------ #
    # Queue interface
    # ------------------------------------------------------------------ #
    def receive(self, message: ActivationMessage) -> bool:
        """Push an arriving activation message into the scheduling queue.

        Admitted payloads are also staged into the activation arena, so
        the eventual batched drain is a zero-copy view.  Returns
        ``False`` when a bounded queue is full and the message was
        dropped — the caller **must** propagate that verdict back to the
        originating end-system (``EndSystem.notify_drop``), otherwise the
        client's pending activation leaks forever.
        """
        admitted = self.queue.push(message)
        if admitted and self.arena is not None:
            self.arena.stage(message)
        return admitted

    def admit(self, message: ActivationMessage) -> str:
        """Idempotent admission: ``"ok"``, ``"full"`` or ``"dup"``.

        A sequence the server has already ruled on (admitted, or
        rejected by a full queue and NACKed) is a duplicate delivery —
        a retransmitted copy after a spurious timeout, or a
        chaos-duplicated uplink message.  The duplicate is charged to
        the queue's drop counter (it *was* refused at the queue
        boundary) and reported as ``"dup"`` so the engine can pair it
        with a ``deduped`` credit: net zero in the drop ledger, no NACK,
        no client notification — the original copy owns the batch's
        fate.
        """
        if message.sequence in self._seen_sequences:
            self.queue.charge_drop()
            return "dup"
        self._seen_sequences.add(message.sequence)
        return "ok" if self.receive(message) else "full"

    def has_seen(self, sequence: int) -> bool:
        """Whether :meth:`admit` has already ruled on ``sequence``."""
        return sequence in self._seen_sequences

    def has_pending(self) -> bool:
        """True when the queue holds unprocessed messages."""
        return bool(self.queue)

    def free_queue_slots(self) -> Optional[int]:
        """Remaining queue capacity (``None`` when unbounded)."""
        return self.queue.free_slots

    # ------------------------------------------------------------------ #
    # Training step
    # ------------------------------------------------------------------ #
    def process(self, message: ActivationMessage) -> GradientMessage:
        """Train on one activation message and return the boundary gradient.

        The server (1) wraps the smashed activations in a fresh leaf
        tensor, (2) runs its segment forward, (3) computes the loss against
        the labels shipped with the message, (4) back-propagates, (5)
        updates its own parameters and (6) returns the gradient of the loss
        with respect to the smashed activations so the originating
        end-system can update its local layers.
        """
        self.model.train(True)
        smashed = Tensor(message.activations, requires_grad=True)
        logits = self.model(smashed)
        loss = self.loss_fn(logits, message.labels)

        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()

        self.batches_processed += 1
        self.samples_processed += message.batch_size

        boundary_gradient = smashed.grad
        if boundary_gradient is None:
            boundary_gradient = np.zeros_like(message.activations)
        return GradientMessage(
            end_system_id=message.end_system_id,
            batch_id=message.batch_id,
            gradient=boundary_gradient.copy(),
            loss=float(loss.item()),
            accuracy=accuracy(logits, message.labels),
        )

    def process_next(self, now: Optional[float] = None) -> Tuple[ActivationMessage, GradientMessage]:
        """Pop the next message according to the scheduling policy and train on it."""
        message = self.queue.pop(now)
        if self.arena is not None:
            self.arena.discard(message)
        return message, self.process(message)

    def process_batch(
        self,
        messages: Sequence[ActivationMessage],
        staged: Optional[GatheredBatch] = None,
    ) -> List[GradientMessage]:
        """Train on several activation messages in one concatenated pass.

        All messages' activations are stacked into a single batch, the
        server segment runs **one** forward/backward over the union, and a
        single optimizer step is taken on the mean loss over all samples.
        The boundary gradient is then scattered back per message, so each
        end-system receives the gradient slice for exactly the samples it
        contributed (scaled by ``n_i / N`` relative to what per-message
        processing would produce, as in any large-batch step).

        This amortises the per-call overhead of the NumPy substrate across
        every queued message — under heavy multi-client traffic the
        server-side throughput scales with the *sample* count rather than
        the *message* count.  The per-message losses/accuracies reported in
        the returned :class:`GradientMessage` objects are computed from
        each message's logit slice, so metric tracking is unaffected.

        Equivalence: at float64, ``process_batch(messages)`` matches a
        reference that accumulates the per-message gradients of the
        sample-weighted mean loss and applies one optimizer step (see
        ``tests/core/test_server_batching.py``).  It intentionally differs
        from *sequential* :meth:`process` calls, which take one optimizer
        step per message.
        """
        if not messages:
            return []
        if len(messages) == 1:
            return [self.process(messages[0])]

        self.model.train(True)
        if staged is not None:
            # Zero-copy drain: the union batch already lives contiguously
            # in the arena (copied there at enqueue time), in staging
            # order.  The loss over the union is permutation-invariant
            # and each message keeps its own row segment, so semantics
            # match the concatenate path to round-off.
            activations = staged.activations
            labels = staged.labels
            segments = staged.segments
        else:
            activations = np.concatenate(
                [message.activations for message in messages], axis=0
            )
            labels = np.concatenate([message.labels for message in messages], axis=0)
            segments = []
            offset = 0
            for message in messages:
                segments.append((offset, offset + message.batch_size))
                offset += message.batch_size
        smashed = Tensor(activations, requires_grad=True)
        logits = self.model(smashed)
        # The loss is computed per sample and mean-reduced as a graph op:
        # the gradient is identical to the mean-reduced loss, and the
        # per-sample values double as the per-message loss report below —
        # no second loss pass over the union batch.
        per_sample_tensor = self._per_sample_loss(logits, labels)
        loss = per_sample_tensor.mean()

        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()

        boundary_gradient = smashed.grad
        if boundary_gradient is None:
            boundary_gradient = np.zeros_like(smashed.data)

        # Per-message metrics from ONE vectorised pass over the union:
        # per-sample losses and arg-max hit flags are segment-averaged —
        # replacing the per-message loss/accuracy calls of the original
        # implementation (identical values, O(messages) fewer dispatches).
        replies: List[GradientMessage] = []
        with no_grad():
            per_sample = np.asarray(per_sample_tensor.data)
            hits = logits.data.argmax(axis=-1) == np.asarray(labels).reshape(-1)
            losses = _segment_means(per_sample, segments)
            accuracies = _segment_means(hits, segments)
            for message, (start, stop), message_loss, message_accuracy in zip(
                messages, segments, losses, accuracies
            ):
                replies.append(
                    GradientMessage(
                        end_system_id=message.end_system_id,
                        batch_id=message.batch_id,
                        gradient=boundary_gradient[start:stop].astype(
                            message.activations.dtype, copy=True
                        ),
                        loss=message_loss,
                        accuracy=message_accuracy,
                    )
                )
        self.batches_processed += len(messages)
        self.samples_processed += int(activations.shape[0])
        return replies

    def process_pending_batch(
        self, now: Optional[float] = None
    ) -> List[Tuple[ActivationMessage, GradientMessage]]:
        """Drain the whole queue (in policy order) through :meth:`process_batch`.

        The scheduling policy still decides the *order* in which messages
        leave the queue — which matters for the fairness statistics and
        for bounded queues — but every drained message lands in the same
        concatenated training step.  When the drain's payloads sit
        contiguously in the activation arena the step trains on a
        zero-copy view of it; otherwise it concatenates as before.
        """
        messages = self.queue.drain(now)
        # 0/1-message drains never use the gathered view (process_batch
        # delegates to per-message processing), so don't claim one.
        staged = (
            self.arena.gather(messages)
            if self.arena is not None and len(messages) > 1
            else None
        )
        try:
            replies = self.process_batch(messages, staged=staged)
        finally:
            if self.arena is not None:
                # The step has consumed the batch and copied the gradient
                # slices out; the staged rows can be recycled.
                self.arena.release(messages)
        return list(zip(messages, replies))

    def flush_queue(self) -> List[ActivationMessage]:
        """Discard every pending message (shutdown path; no statistics).

        Releases the flushed messages' arena rows as well, so a budgeted
        run that stops mid-epoch does not pin arena memory.
        """
        messages = self.queue.flush()
        if self.arena is not None:
            self.arena.release(messages)
        return messages

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict(self, activations: np.ndarray) -> np.ndarray:
        """Run the server segment in evaluation mode, returning logits."""
        self.model.train(False)
        with no_grad():
            logits = self.model(Tensor(activations))
        return logits.data

    def evaluate(self, activations: np.ndarray, labels: np.ndarray) -> Dict[str, float]:
        """Loss and accuracy of the server segment on pre-computed activations."""
        logits = self.predict(activations)
        with no_grad():
            loss = self.loss_fn(Tensor(logits), labels)
        return {"loss": float(loss.item()), "accuracy": accuracy(logits, labels)}

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Checkpoint of the server segment's parameters."""
        return self.model.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the server segment's parameters."""
        self.model.load_state_dict(state)

    def __repr__(self) -> str:
        return (
            f"CentralServer(blocks_on_clients={self.split_spec.client_blocks}, "
            f"policy={type(self.queue.policy).__name__}, "
            f"batches_processed={self.batches_processed})"
        )
