"""Model architectures used in the paper's evaluation.

The paper's Fig. 3 describes the CNN used for CIFAR-10 classification:
five blocks of ``Conv2D + MaxPooling2D`` with 16, 32, 64, 128 and 256
filters, followed by a 512-unit dense layer and a 10-unit output layer.
:class:`CNNArchitecture` is a factory for this family of networks with
stable layer names (``L1_conv``, ``L1_pool``, ..., ``dense1``,
``output``), which is what lets a :class:`~repro.core.split.SplitSpec`
express cut points such as "everything up to and including ``L2``".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential

__all__ = [
    "CNNArchitecture",
    "paper_cnn_architecture",
    "tiny_cnn_architecture",
    "mnist_cnn_architecture",
    "build_paper_cnn",
]


@dataclass
class CNNArchitecture:
    """Factory for block-structured CNNs in the style of the paper's Fig. 3.

    A "block" ``L_i`` is ``Conv2D -> ReLU -> MaxPooling2D`` with
    ``base_filters * 2**(i-1)`` filters.  After ``num_blocks`` blocks the
    feature map is flattened and fed through a ``dense_units``-wide hidden
    dense layer and a ``num_classes``-wide output layer.

    Parameters
    ----------
    num_classes:
        Output classes (10 for the CIFAR-10-style task).
    in_channels:
        Input image channels (3 for RGB).
    image_size:
        Square input size; must be divisible by ``2 ** num_blocks`` so the
        max-pooling chain ends on an integer spatial size.
    num_blocks:
        Number of ``Conv2D + MaxPooling2D`` blocks (5 in the paper).
    base_filters:
        Filters in block ``L1``; doubled every block (16 in the paper).
    dense_units:
        Width of the penultimate dense layer (512 in the paper).
    kernel_size:
        Convolution kernel size (3 everywhere).
    """

    num_classes: int = 10
    in_channels: int = 3
    image_size: int = 32
    num_blocks: int = 5
    base_filters: int = 16
    dense_units: int = 512
    kernel_size: int = 3

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("need at least one block")
        if self.image_size % (2 ** self.num_blocks) != 0:
            raise ValueError(
                f"image_size={self.image_size} is not divisible by "
                f"2**num_blocks={2 ** self.num_blocks}"
            )
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.base_filters < 1 or self.dense_units < 1:
            raise ValueError("base_filters and dense_units must be positive")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def filters(self) -> List[int]:
        """Filter count of each block, ``L1`` first."""
        return [self.base_filters * (2 ** index) for index in range(self.num_blocks)]

    @property
    def block_names(self) -> List[str]:
        """Block labels ``["L1", ..., "L{num_blocks}"]``."""
        return [f"L{index + 1}" for index in range(self.num_blocks)]

    def block_output_shape(self, block: int) -> Tuple[int, int, int]:
        """Shape ``(C, H, W)`` of the activation after block ``block`` (1-based).

        ``block=0`` returns the raw input shape.
        """
        if not 0 <= block <= self.num_blocks:
            raise ValueError(f"block must be in [0, {self.num_blocks}], got {block}")
        if block == 0:
            return self.in_channels, self.image_size, self.image_size
        size = self.image_size // (2 ** block)
        return self.filters[block - 1], size, size

    @property
    def flattened_size(self) -> int:
        """Number of features entering the first dense layer."""
        channels, height, width = self.block_output_shape(self.num_blocks)
        return channels * height * width

    def boundary_layer_name(self, client_blocks: int) -> Optional[str]:
        """Name of the last layer held by end-systems for a given cut.

        ``client_blocks=0`` (all layers on the server) returns ``None``.
        """
        if not 0 <= client_blocks <= self.num_blocks:
            raise ValueError(
                f"client_blocks must be in [0, {self.num_blocks}], got {client_blocks}"
            )
        if client_blocks == 0:
            return None
        return f"L{client_blocks}_pool"

    # ------------------------------------------------------------------ #
    # Model construction
    # ------------------------------------------------------------------ #
    def build(self, rng: Optional[np.random.Generator] = None,
              seed: Optional[int] = None) -> Sequential:
        """Instantiate the full network with freshly initialized parameters."""
        if rng is None:
            rng = np.random.default_rng(seed)
        layers = []
        in_channels = self.in_channels
        for index, out_channels in enumerate(self.filters):
            block = f"L{index + 1}"
            layers.append((f"{block}_conv", Conv2D(
                in_channels, out_channels, kernel_size=self.kernel_size,
                padding="same", rng=rng,
            )))
            layers.append((f"{block}_relu", ReLU()))
            layers.append((f"{block}_pool", MaxPool2D(2)))
            in_channels = out_channels
        layers.append(("flatten", Flatten()))
        layers.append(("dense1", Dense(self.flattened_size, self.dense_units, rng=rng)))
        layers.append(("dense1_relu", ReLU()))
        layers.append(("output", Dense(self.dense_units, self.num_classes, rng=rng)))
        return Sequential(layers)

    def describe(self) -> str:
        """One-line human-readable description of the architecture."""
        blocks = " → ".join(
            f"{name}[{filters}f]" for name, filters in zip(self.block_names, self.filters)
        )
        return (
            f"CNN({self.in_channels}x{self.image_size}x{self.image_size} → {blocks} → "
            f"Dense({self.dense_units}) → Dense({self.num_classes}))"
        )


def paper_cnn_architecture(num_classes: int = 10) -> CNNArchitecture:
    """The exact Fig.-3 architecture: 5 blocks, 16..256 filters, Dense 512/10."""
    return CNNArchitecture(
        num_classes=num_classes,
        in_channels=3,
        image_size=32,
        num_blocks=5,
        base_filters=16,
        dense_units=512,
    )


def tiny_cnn_architecture(num_classes: int = 10, image_size: int = 16,
                          num_blocks: int = 3, base_filters: int = 4,
                          dense_units: int = 32) -> CNNArchitecture:
    """A down-scaled architecture for fast tests and laptop-scale benchmarks.

    It keeps the same block structure (Conv2D + MaxPooling2D, doubling
    filters) so the split points behave identically; only the widths and
    depths are reduced.
    """
    return CNNArchitecture(
        num_classes=num_classes,
        in_channels=3,
        image_size=image_size,
        num_blocks=num_blocks,
        base_filters=base_filters,
        dense_units=dense_units,
    )


def mnist_cnn_architecture(num_classes: int = 10) -> CNNArchitecture:
    """Architecture for the MNIST-like single-channel dataset (28x28 → 28 is not a
    power-of-two multiple, so images are expected to be padded/cropped to 32)."""
    return CNNArchitecture(
        num_classes=num_classes,
        in_channels=1,
        image_size=32,
        num_blocks=3,
        base_filters=8,
        dense_units=64,
    )


def build_paper_cnn(seed: Optional[int] = None, num_classes: int = 10) -> Sequential:
    """Convenience wrapper: instantiate the paper's Fig.-3 CNN directly."""
    return paper_cnn_architecture(num_classes=num_classes).build(seed=seed)
