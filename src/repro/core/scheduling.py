"""The server-side parameter-scheduling queue (Fig. 2 of the paper).

The paper observes that, with geo-distributed end-systems, "the
parameters from the end-system can arrive at the server lately or
sparsely.  Then, the learning performance can be biased due to the
differences of arrivals from end-systems.  Thus, parameter scheduling is
required ... a queue data structure needs to be defined."

This module defines that queue.  :class:`ParameterQueue` buffers
:class:`~repro.core.messages.ActivationMessage` objects as they arrive
and hands them to the server in an order chosen by a pluggable
:class:`SchedulingPolicy`:

* :class:`FIFOPolicy` — strict arrival order (the naive baseline; biased
  toward nearby end-systems because their messages arrive first).
* :class:`RoundRobinPolicy` — alternate between end-systems regardless of
  arrival order, equalizing the number of processed updates.
* :class:`StalenessPriorityPolicy` — process the *oldest created* message
  first, bounding the gradient staleness of far-away end-systems.
* :class:`WeightedFairPolicy` — pick the end-system with the fewest
  processed samples so far, equalizing data contribution.
"""

from __future__ import annotations

import bisect
import heapq
from collections import defaultdict, deque
from typing import Dict, List, Optional

import numpy as np

from .messages import ActivationMessage

__all__ = [
    "SchedulingPolicy",
    "FIFOPolicy",
    "RoundRobinPolicy",
    "StalenessPriorityPolicy",
    "WeightedFairPolicy",
    "ParameterQueue",
    "get_policy",
    "jain_fairness_index",
]


def jain_fairness_index(counts) -> float:
    """Jain's fairness index of per-end-system contribution counts.

    1.0 means every end-system contributed equally; 1/M means a single
    end-system dominated.  Shared by the single queue's statistics and
    the multi-shard cluster rollup so the definition cannot diverge.
    """
    values = np.asarray(list(counts), dtype=np.float64)
    if values.size == 0 or values.sum() == 0:
        return 1.0
    return float(values.sum() ** 2 / (values.size * (values ** 2).sum()))


class SchedulingPolicy:
    """Chooses which buffered message the server should process next."""

    def select(self, pending: List[ActivationMessage], now: float) -> int:
        """Return the index (into ``pending``) of the message to pop next."""
        raise NotImplementedError

    def drain_order(self, pending: List[ActivationMessage],
                    now: float) -> Optional[List[int]]:
        """Order (indices into ``pending``) for draining *everything* at once.

        Stateless policies whose choice is a fixed per-message sort key
        return the full order directly, letting
        :meth:`ParameterQueue.drain` sort once — O(n log n) — instead of
        running one O(n) :meth:`select` per pop (O(n²), the dominant
        server-side cost beyond ~100 queued clients).  Stateful policies
        may *simulate* their feedback loop (without mutating their
        state — :meth:`notify_processed` still fires per message during
        the drain) to the same end; only policies that cannot predict
        their own choices return ``None`` and keep the generic pop loop.
        """
        return None

    def notify_processed(self, message: ActivationMessage) -> None:
        """Hook called after the selected message has been processed."""

    def reset(self) -> None:
        """Clear any internal state (called when the queue is reset)."""


class _KeySortedPolicy(SchedulingPolicy):
    """Base for stateless policies ordered by a fixed per-message key.

    Subclasses provide :meth:`_key`; selection and the O(n log n) bulk
    drain order both derive from it, so the two can never diverge.
    """

    @staticmethod
    def _key(message: ActivationMessage):
        raise NotImplementedError

    def select(self, pending: List[ActivationMessage], now: float) -> int:
        return min(range(len(pending)), key=lambda index: self._key(pending[index]))

    def drain_order(self, pending: List[ActivationMessage],
                    now: float) -> Optional[List[int]]:
        return sorted(range(len(pending)), key=lambda index: self._key(pending[index]))


class FIFOPolicy(_KeySortedPolicy):
    """First-come first-served by arrival time (ties broken by sequence number)."""

    @staticmethod
    def _key(message: ActivationMessage):
        return message.arrival_time, message.sequence


class RoundRobinPolicy(SchedulingPolicy):
    """Cycle through end-systems, skipping the ones with nothing pending."""

    def __init__(self) -> None:
        self._last_served: Optional[int] = None

    def select(self, pending: List[ActivationMessage], now: float) -> int:
        system_ids = sorted({message.end_system_id for message in pending})
        if self._last_served is None:
            target = system_ids[0]
        else:
            # Continue the cycle from the first id *after* the last-served
            # system, even when that system currently has nothing pending —
            # restarting at system_ids[0] would hand low-numbered systems an
            # extra turn every time a gap appears in the arrivals.
            position = bisect.bisect_right(system_ids, self._last_served)
            target = system_ids[position % len(system_ids)]
        candidates = [
            index for index, message in enumerate(pending)
            if message.end_system_id == target
        ]
        return min(candidates, key=lambda index: pending[index].sequence)

    def drain_order(self, pending: List[ActivationMessage],
                    now: float) -> Optional[List[int]]:
        """Simulate the full cycle without mutating policy state.

        The only feedback :meth:`select` consumes is which system the
        *previous pop of this same drain* served, so the whole order can
        be computed up front: group the pending messages per system
        (each group in sequence order, matching the per-pop ``min``)
        and walk the id cycle with a local ``last_served`` cursor,
        retiring systems as their groups empty.  One O(n log n) pass
        replaces n O(n) selections; :meth:`ParameterQueue.drain` still
        calls :meth:`notify_processed` per message afterwards, which
        leaves ``_last_served`` exactly where the pop loop would.
        """
        groups: Dict[int, deque] = {}
        for index in sorted(range(len(pending)),
                            key=lambda position: pending[position].sequence):
            groups.setdefault(pending[index].end_system_id, deque()).append(index)
        system_ids = sorted(groups)
        last_served = self._last_served
        order: List[int] = []
        while system_ids:
            if last_served is None:
                position = 0
            else:
                position = bisect.bisect_right(system_ids, last_served) % len(system_ids)
            target = system_ids[position]
            order.append(groups[target].popleft())
            last_served = target
            if not groups[target]:
                system_ids.pop(position)
        return order

    def notify_processed(self, message: ActivationMessage) -> None:
        self._last_served = message.end_system_id

    def reset(self) -> None:
        self._last_served = None


class StalenessPriorityPolicy(_KeySortedPolicy):
    """Process the message whose activations were *created* earliest.

    This bounds staleness: a far-away end-system whose messages were
    computed long ago (against old server weights) is served before fresher
    messages from nearby end-systems.
    """

    @staticmethod
    def _key(message: ActivationMessage):
        return message.created_at, message.sequence


class WeightedFairPolicy(SchedulingPolicy):
    """Serve the end-system with the fewest processed samples so far."""

    def __init__(self) -> None:
        self._processed_samples: Dict[int, int] = defaultdict(int)

    def select(self, pending: List[ActivationMessage], now: float) -> int:
        return min(
            range(len(pending)),
            key=lambda index: (
                self._processed_samples[pending[index].end_system_id],
                pending[index].arrival_time,
                pending[index].sequence,
            ),
        )

    def drain_order(self, pending: List[ActivationMessage],
                    now: float) -> Optional[List[int]]:
        """Simulate the fairness feedback loop with a heap, state untouched.

        Within one system the selection key always prefers the lowest
        ``(arrival_time, sequence)`` message, so only each system's
        *front* message can ever win a pop.  A heap over those fronts —
        keyed exactly like :meth:`select` — pops the global winner in
        O(log M); the winner's simulated sample count is bumped and its
        system's next front re-enters the heap.  n pops cost O(n log M)
        instead of the generic loop's O(n²) selections.
        """
        fronts: Dict[int, List[int]] = {}
        for index in sorted(
            range(len(pending)),
            key=lambda position: (pending[position].arrival_time,
                                  pending[position].sequence),
        ):
            fronts.setdefault(pending[index].end_system_id, []).append(index)
        processed = dict(self._processed_samples)
        heap = []
        cursors = {system_id: 0 for system_id in fronts}
        for system_id, indices in fronts.items():
            front = pending[indices[0]]
            heapq.heappush(heap, (processed.get(system_id, 0), front.arrival_time,
                                  front.sequence, indices[0]))
        order: List[int] = []
        while heap:
            _, _, _, index = heapq.heappop(heap)
            message = pending[index]
            order.append(index)
            system_id = message.end_system_id
            processed[system_id] = processed.get(system_id, 0) + message.batch_size
            cursors[system_id] += 1
            indices = fronts[system_id]
            if cursors[system_id] < len(indices):
                next_index = indices[cursors[system_id]]
                front = pending[next_index]
                heapq.heappush(heap, (processed[system_id], front.arrival_time,
                                      front.sequence, next_index))
        return order

    def notify_processed(self, message: ActivationMessage) -> None:
        self._processed_samples[message.end_system_id] += message.batch_size

    def reset(self) -> None:
        self._processed_samples.clear()


class ParameterQueue:
    """Arrival buffer between the network and the server's training step."""

    def __init__(self, policy: Optional[SchedulingPolicy] = None,
                 max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError("max_size must be positive (or None for unbounded)")
        self.policy = policy if policy is not None else FIFOPolicy()
        self.max_size = max_size
        self._pending: List[ActivationMessage] = []
        self._waiting_times: List[float] = []
        self._dropped = 0
        self._processed_per_system: Dict[int, int] = defaultdict(int)

    # ------------------------------------------------------------------ #
    # Queue operations
    # ------------------------------------------------------------------ #
    def push(self, message: ActivationMessage) -> bool:
        """Enqueue a message; returns ``False`` if it was dropped (queue full)."""
        if self.max_size is not None and len(self._pending) >= self.max_size:
            self._dropped += 1
            return False
        self._pending.append(message)
        return True

    def charge_drop(self) -> None:
        """Charge one rejected arrival to this queue's drop counter.

        The admission path for a message refused *without* a push — a
        duplicate delivery deduplicated at the shard boundary.  Keeping
        the mutation here (an approved drop-accounting module) lets the
        ledger's ``queue`` term see every refused arrival while the
        paired ``deduped`` term cancels it — a duplicate is not new
        work, so it must not surface as a net drop.
        """
        self._dropped += 1

    def pop(self, now: Optional[float] = None) -> ActivationMessage:
        """Dequeue the next message according to the scheduling policy."""
        if not self._pending:
            raise IndexError("pop from an empty ParameterQueue")
        if now is None:
            now = max(message.arrival_time for message in self._pending)
        index = self.policy.select(self._pending, now)
        message = self._pending.pop(index)
        self._account(message, now)
        return message

    def _account(self, message: ActivationMessage, now: float) -> None:
        """Per-message bookkeeping shared by :meth:`pop` and :meth:`drain`."""
        self.policy.notify_processed(message)
        self._waiting_times.append(max(0.0, now - message.arrival_time))
        self._processed_per_system[message.end_system_id] += message.batch_size

    def drain(self, now: Optional[float] = None) -> List[ActivationMessage]:
        """Pop every pending message in policy order.

        The drain timestamp defaults to the latest pending arrival —
        resolved **once** for the whole drain.  Every built-in policy
        now hands back a full drain order: the stateless ones (FIFO,
        staleness) as a single O(n log n) sort, the stateful ones
        (round-robin, weighted-fair) by *simulating* their own feedback
        loop without touching policy state — so no drain pays the
        generic loop's O(n²) selection cost.  The pop loop remains the
        fallback for third-party policies returning ``None``, and the
        recorded statistics are identical either way.
        """
        if not self._pending:
            return []
        if now is None:
            now = max(message.arrival_time for message in self._pending)
        order = self.policy.drain_order(self._pending, now)
        if order is None:
            messages = []
            while self._pending:
                messages.append(self.pop(now))
            return messages
        messages = [self._pending[index] for index in order]
        self._pending.clear()
        for message in messages:
            self._account(message, now)
        return messages

    def flush(self) -> List[ActivationMessage]:
        """Remove and return every pending message *without* statistics.

        Unlike :meth:`drain` this records no waiting times, no
        per-system processed counts and no policy notifications — it is
        the shutdown path for messages that will never be trained on
        (e.g. arrivals still queued when a time-budgeted run stops), so
        they must not pollute the fairness and waiting statistics.
        """
        messages = list(self._pending)
        self._pending.clear()
        return messages

    @property
    def free_slots(self) -> Optional[int]:
        """Remaining capacity (``None`` when the queue is unbounded)."""
        if self.max_size is None:
            return None
        return max(0, self.max_size - len(self._pending))

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def peek_arrivals(self) -> List[float]:
        """Arrival times of all pending messages (unsorted)."""
        return [message.arrival_time for message in self._pending]

    def reset(self) -> None:
        """Clear the queue, its statistics and the policy's state."""
        self._pending.clear()
        self._waiting_times.clear()
        self._dropped = 0
        self._processed_per_system.clear()
        self.policy.reset()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def dropped(self) -> int:
        """Messages rejected because the queue was full."""
        return self._dropped

    @property
    def mean_waiting_time(self) -> float:
        """Mean seconds a processed message spent waiting in the queue."""
        return float(np.mean(self._waiting_times)) if self._waiting_times else 0.0

    @property
    def waiting_times_recorded(self) -> int:
        """Messages whose queue wait has been recorded (drain/pop count).

        Multi-shard deployments weight each shard's mean by this count
        when rolling the per-shard queues up into one cluster-wide mean.
        """
        return len(self._waiting_times)

    def processed_per_system(self) -> Dict[int, int]:
        """Samples processed so far, keyed by end-system id."""
        return dict(self._processed_per_system)

    def fairness_index(self) -> float:
        """Jain's fairness index of the per-end-system processed sample counts.

        This is the headline metric of the scheduling ablation (the
        "bias" the paper warns about); see :func:`jain_fairness_index`.
        """
        return jain_fairness_index(self._processed_per_system.values())


_POLICIES = {
    "fifo": FIFOPolicy,
    "round_robin": RoundRobinPolicy,
    "staleness": StalenessPriorityPolicy,
    "weighted_fair": WeightedFairPolicy,
}


def get_policy(name: str) -> SchedulingPolicy:
    """Instantiate a scheduling policy by name.

    Known names: ``fifo``, ``round_robin``, ``staleness``, ``weighted_fair``.
    """
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise KeyError(f"unknown policy {name!r}; known policies: {known}") from None
