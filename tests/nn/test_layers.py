"""Tests for the layer classes (Dense, Conv2D, pooling, activations, reshape)."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Reshape,
    Sigmoid,
    Softmax,
    Tanh,
    Tensor,
)


class TestDense:
    def test_forward_shape_and_value(self, rng):
        layer = Dense(4, 3, rng=rng)
        x = rng.standard_normal((5, 4))
        out = layer(Tensor(x))
        assert out.shape == (5, 3)
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_rejects_wrong_feature_count(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError, match="4 input features"):
            layer(Tensor(rng.standard_normal((2, 5))))

    def test_rejects_non_2d_input(self, rng):
        layer = Dense(4, 3, rng=rng)
        with pytest.raises(ValueError, match="2-D"):
            layer(Tensor(rng.standard_normal((2, 4, 1))))

    def test_no_bias_option(self, rng):
        layer = Dense(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_gradients_flow_to_parameters(self, rng):
        layer = Dense(4, 2, rng=rng)
        out = layer(Tensor(rng.standard_normal((3, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert layer.weight.grad.shape == (4, 2)

    def test_extra_repr(self, rng):
        assert "in_features=4" in repr(Dense(4, 2, rng=rng))


class TestConv2DLayer:
    def test_same_padding_preserves_spatial_size(self, rng):
        layer = Conv2D(3, 8, kernel_size=3, padding="same", rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 8, 16, 16)

    def test_valid_padding_shrinks(self, rng):
        layer = Conv2D(3, 4, kernel_size=3, padding="valid", rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 3, 8, 8))))
        assert out.shape == (1, 4, 6, 6)

    def test_output_shape_helper_matches_forward(self, rng):
        layer = Conv2D(3, 6, kernel_size=3, padding="same", rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 3, 12, 12))))
        assert layer.output_shape((3, 12, 12)) == out.shape[1:]

    def test_same_padding_requires_odd_kernel(self):
        with pytest.raises(ValueError, match="odd kernel"):
            Conv2D(3, 4, kernel_size=2, padding="same")

    def test_same_padding_requires_unit_stride(self):
        with pytest.raises(ValueError, match="stride"):
            Conv2D(3, 4, kernel_size=3, stride=2, padding="same")

    def test_unknown_padding_mode(self):
        with pytest.raises(ValueError, match="padding"):
            Conv2D(3, 4, padding="weird")

    def test_channel_validation(self, rng):
        layer = Conv2D(3, 4, rng=rng)
        with pytest.raises(ValueError, match="channels"):
            layer(Tensor(rng.standard_normal((1, 2, 8, 8))))
        with pytest.raises(ValueError, match="4-D"):
            layer(Tensor(rng.standard_normal((3, 8, 8))))

    def test_parameter_count(self, rng):
        layer = Conv2D(3, 8, kernel_size=3, rng=rng)
        assert layer.num_parameters() == 3 * 8 * 9 + 8


class TestPoolingLayers:
    def test_max_pool_layer(self, rng):
        out = MaxPool2D(2)(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 3, 4, 4)

    def test_avg_pool_layer(self, rng):
        out = AvgPool2D(2)(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 3, 4, 4)

    def test_output_shape_helpers(self):
        assert MaxPool2D(2).output_shape((16, 8, 8)) == (16, 4, 4)
        assert AvgPool2D(4).output_shape((3, 8, 8)) == (3, 2, 2)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 5, 4, 4))
        out = GlobalAvgPool2D()(Tensor(x))
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))

    def test_pooling_rejects_non_4d(self, rng):
        with pytest.raises(ValueError):
            MaxPool2D(2)(Tensor(rng.standard_normal((3, 8, 8))))
        with pytest.raises(ValueError):
            AvgPool2D(2)(Tensor(rng.standard_normal((3, 8))))
        with pytest.raises(ValueError):
            GlobalAvgPool2D()(Tensor(rng.standard_normal((3, 8))))


class TestActivationsAndReshape:
    def test_relu_layer(self):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_layer(self):
        out = LeakyReLU(0.2)(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [-0.2, 2.0])

    def test_leaky_relu_rejects_negative_slope(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)

    def test_sigmoid_and_tanh_ranges(self, rng):
        x = Tensor(rng.standard_normal(100))
        assert ((Sigmoid()(x).data > 0) & (Sigmoid()(x).data < 1)).all()
        assert (np.abs(Tanh()(x).data) <= 1).all()

    def test_softmax_layer_normalizes(self, rng):
        out = Softmax()(Tensor(rng.standard_normal((4, 6))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.standard_normal((3, 2, 4, 4))))
        assert out.shape == (3, 32)

    def test_reshape_layer(self, rng):
        out = Reshape((2, 8))(Tensor(rng.standard_normal((3, 16))))
        assert out.shape == (3, 2, 8)
        assert "target_shape" in repr(Reshape((2, 8)))
