"""Tests for the Module base class and the Sequential container."""

import numpy as np
import pytest

from repro.nn import Dense, Flatten, MaxPool2D, Module, Parameter, ReLU, Sequential, Tensor
from repro.nn.layers.base import Parameter as BaseParameter


class Affine(Module):
    """Minimal custom module used to exercise the registration machinery."""

    def __init__(self):
        super().__init__()
        self.scale = Parameter(np.array([2.0]))
        self.register_buffer("calls", np.array([0.0]))

    def forward(self, inputs):
        self._buffers["calls"] = self._buffers["calls"] + 1
        return inputs * self.scale


class TestModule:
    def test_parameter_registration_via_attribute(self):
        module = Affine()
        names = [name for name, _ in module.named_parameters()]
        assert names == ["scale"]

    def test_parameters_are_recursive(self, rng):
        outer = Sequential([("inner", Dense(3, 2, rng=rng)), ("act", ReLU())])
        names = [name for name, _ in outer.named_parameters()]
        assert names == ["inner.weight", "inner.bias"]

    def test_register_parameter_type_check(self):
        module = Affine()
        with pytest.raises(TypeError):
            module.register_parameter("bad", np.zeros(3))
        with pytest.raises(TypeError):
            module.register_module("bad", object())

    def test_num_parameters(self, rng):
        dense = Dense(4, 3, rng=rng)
        assert dense.num_parameters() == 4 * 3 + 3

    def test_train_eval_recursive(self, rng):
        model = Sequential([("a", Dense(2, 2, rng=rng)), ("b", ReLU())])
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self, rng):
        model = Sequential([("a", Dense(2, 2, rng=rng))])
        model(Tensor(rng.standard_normal((3, 2)))).sum().backward()
        assert model["a"].weight.grad is not None
        model.zero_grad()
        assert model["a"].weight.grad is None

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))

    def test_state_dict_roundtrip(self, rng):
        source = Dense(3, 2, rng=rng)
        target = Dense(3, 2, rng=np.random.default_rng(999))
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(source.weight.data, target.weight.data)
        np.testing.assert_allclose(source.bias.data, target.bias.data)

    def test_state_dict_copies_not_views(self, rng):
        dense = Dense(2, 2, rng=rng)
        state = dense.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(dense.weight.data, 0.0)

    def test_load_state_dict_shape_mismatch(self, rng):
        dense = Dense(3, 2, rng=rng)
        bad_state = {"weight": np.zeros((2, 2)), "bias": np.zeros(2)}
        with pytest.raises(ValueError, match="shape mismatch"):
            dense.load_state_dict(bad_state)

    def test_load_state_dict_strict_missing_key(self, rng):
        dense = Dense(3, 2, rng=rng)
        with pytest.raises(KeyError):
            dense.load_state_dict({"weight": dense.weight.data})
        # Non-strict mode tolerates the missing bias.
        dense.load_state_dict({"weight": dense.weight.data}, strict=False)

    def test_buffers_serialized(self):
        module = Affine()
        module(Tensor([1.0]))
        state = module.state_dict()
        assert state["buffer::calls"][0] == 1.0
        fresh = Affine()
        fresh.load_state_dict(state)
        assert fresh._buffers["calls"][0] == 1.0

    def test_parameter_repr(self):
        assert "shape" in repr(BaseParameter(np.zeros((2, 2)), name="w"))


class TestSequential:
    def make_model(self, rng):
        return Sequential([
            ("dense1", Dense(4, 8, rng=rng)),
            ("relu", ReLU()),
            ("dense2", Dense(8, 3, rng=rng)),
        ])

    def test_forward_applies_in_order(self, rng):
        model = self.make_model(rng)
        x = rng.standard_normal((2, 4))
        expected = model["dense2"](ReLU()(model["dense1"](Tensor(x))))
        np.testing.assert_allclose(model(Tensor(x)).data, expected.data)

    def test_len_iter_and_names(self, rng):
        model = self.make_model(rng)
        assert len(model) == 3
        assert model.layer_names == ["dense1", "relu", "dense2"]
        assert [type(layer).__name__ for layer in model] == ["Dense", "ReLU", "Dense"]

    def test_unnamed_layers_get_positional_names(self, rng):
        model = Sequential([Dense(2, 2, rng=rng), ReLU()])
        assert model.layer_names == ["layer0", "layer1"]

    def test_duplicate_name_rejected(self, rng):
        with pytest.raises(ValueError, match="duplicate"):
            Sequential([("a", ReLU()), ("a", ReLU())])

    def test_append_type_check(self):
        with pytest.raises(TypeError):
            Sequential().append("not a module")

    def test_indexing_by_name_int_and_slice(self, rng):
        model = self.make_model(rng)
        assert model["relu"] is model[1]
        head = model[:2]
        assert isinstance(head, Sequential)
        assert head.layer_names == ["dense1", "relu"]

    def test_slice_shares_parameters(self, rng):
        model = self.make_model(rng)
        head = model[:1]
        assert head["dense1"].weight is model["dense1"].weight

    def test_index_of_unknown_layer(self, rng):
        with pytest.raises(KeyError, match="available layers"):
            self.make_model(rng).index_of("missing")

    def test_split_at_index_and_name(self, rng):
        model = self.make_model(rng)
        head, tail = model.split_at(1)
        assert head.layer_names == ["dense1"]
        assert tail.layer_names == ["relu", "dense2"]
        head, tail = model.split_at("relu")
        assert head.layer_names == ["dense1", "relu"]
        assert tail.layer_names == ["dense2"]

    def test_split_at_out_of_range(self, rng):
        with pytest.raises(ValueError):
            self.make_model(rng).split_at(7)

    def test_split_composition_equals_full_forward(self, rng):
        model = self.make_model(rng)
        head, tail = model.split_at(2)
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(tail(head(x)).data, model(x).data)

    def test_empty_sequential_is_identity(self, rng):
        x = Tensor(rng.standard_normal((2, 5)))
        out = Sequential()(x)
        np.testing.assert_allclose(out.data, x.data)

    def test_forward_collect_returns_every_activation(self, rng):
        model = self.make_model(rng)
        activations = model.forward_collect(Tensor(rng.standard_normal((2, 4))))
        assert list(activations) == ["dense1", "relu", "dense2"]
        assert activations["dense2"].shape == (2, 3)

    def test_cnn_style_sequential(self, rng):
        model = Sequential([
            ("conv", __import__("repro.nn", fromlist=["Conv2D"]).Conv2D(3, 4, rng=rng)),
            ("pool", MaxPool2D(2)),
            ("flat", Flatten()),
            ("out", Dense(4 * 4 * 4, 2, rng=rng)),
        ])
        assert model(Tensor(rng.standard_normal((2, 3, 8, 8)))).shape == (2, 2)

    def test_repr_lists_children(self, rng):
        assert "dense1" in repr(self.make_model(rng))
