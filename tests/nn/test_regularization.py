"""Tests for Dropout and BatchNorm layers."""

import numpy as np
import pytest

from repro.nn import BatchNorm1D, BatchNorm2D, Dropout, Tensor


class TestDropout:
    def test_identity_in_eval_mode(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.standard_normal((10, 10))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_identity_when_p_zero(self, rng):
        layer = Dropout(0.0)
        x = rng.standard_normal((5, 5))
        np.testing.assert_allclose(layer(Tensor(x)).data, x)

    def test_zeroes_roughly_p_fraction(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((200, 200))))
        dropped_fraction = float((out.data == 0).mean())
        assert 0.45 < dropped_fraction < 0.55

    def test_survivors_are_rescaled(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        survivors = out.data[out.data != 0]
        np.testing.assert_allclose(survivors, 2.0)

    def test_expected_value_preserved(self):
        layer = Dropout(0.3, rng=np.random.default_rng(1))
        out = layer(Tensor(np.ones((300, 300))))
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_gradient_respects_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(2))
        x = Tensor(np.ones((20, 20)), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        # Gradient is zero exactly where the activation was dropped.
        np.testing.assert_allclose((x.grad == 0), (out.data == 0))


class TestBatchNorm2D:
    def test_normalizes_per_channel_in_training(self, rng):
        layer = BatchNorm2D(3)
        x = rng.standard_normal((8, 3, 5, 5)) * 4.0 + 7.0
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-7)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), np.ones(3), atol=1e-3)

    def test_running_statistics_updated(self, rng):
        layer = BatchNorm2D(2, momentum=0.5)
        x = rng.standard_normal((16, 2, 4, 4)) + 3.0
        layer(Tensor(x))
        assert not np.allclose(layer.running_mean, 0.0)
        assert layer.running_mean.shape == (2,)

    def test_eval_mode_uses_running_statistics(self, rng):
        layer = BatchNorm2D(2, momentum=1.0)
        x = rng.standard_normal((32, 2, 4, 4)) * 2.0 + 5.0
        layer(Tensor(x))          # training pass records statistics
        layer.eval()
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), np.zeros(2), atol=1e-2)

    def test_gamma_beta_trainable(self, rng):
        layer = BatchNorm2D(3)
        out = layer(Tensor(rng.standard_normal((4, 3, 4, 4))))
        out.sum().backward()
        assert layer.gamma.grad is not None
        assert layer.beta.grad is not None

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError, match="channels"):
            BatchNorm2D(3)(Tensor(rng.standard_normal((2, 4, 4, 4))))

    def test_rejects_wrong_rank(self, rng):
        with pytest.raises(ValueError, match="4-D"):
            BatchNorm2D(3)(Tensor(rng.standard_normal((2, 3))))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            BatchNorm2D(0)
        with pytest.raises(ValueError):
            BatchNorm2D(3, momentum=0.0)


class TestBatchNorm1D:
    def test_normalizes_features(self, rng):
        layer = BatchNorm1D(5)
        x = rng.standard_normal((64, 5)) * 3.0 - 2.0
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), np.zeros(5), atol=1e-7)

    def test_rejects_wrong_rank_and_features(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            BatchNorm1D(5)(Tensor(rng.standard_normal((2, 5, 3))))
        with pytest.raises(ValueError, match="features"):
            BatchNorm1D(5)(Tensor(rng.standard_normal((2, 4))))

    def test_state_dict_includes_running_buffers(self, rng):
        layer = BatchNorm1D(3)
        layer(Tensor(rng.standard_normal((8, 3))))
        state = layer.state_dict()
        assert "buffer::running_mean" in state
        fresh = BatchNorm1D(3)
        fresh.load_state_dict(state)
        np.testing.assert_allclose(fresh.running_mean, layer.running_mean)
