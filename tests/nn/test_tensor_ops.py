"""Unit tests for Tensor arithmetic and its gradients."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, ensure_tensor, unbroadcast


class TestConstruction:
    def test_wraps_lists_and_scalars(self):
        assert Tensor([1.0, 2.0]).shape == (2,)
        assert Tensor(3.0).shape == ()

    def test_default_dtype_is_float64(self):
        assert Tensor([1, 2, 3]).dtype == np.float64

    def test_requires_grad_defaults_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_factory_helpers(self):
        assert Tensor.zeros(2, 3).data.sum() == 0
        assert Tensor.ones(2, 3).data.sum() == 6
        assert Tensor.randn(4, 5, rng=np.random.default_rng(0)).shape == (4, 5)

    def test_ensure_tensor_passthrough(self):
        tensor = Tensor([1.0])
        assert ensure_tensor(tensor) is tensor
        assert isinstance(ensure_tensor([1.0, 2.0]), Tensor)

    def test_repr_mentions_shape_and_grad_flag(self):
        text = repr(Tensor.zeros(2, 2, requires_grad=True))
        assert "2, 2" in text and "requires_grad" in text

    def test_len_and_size(self):
        tensor = Tensor.zeros(5, 3)
        assert len(tensor) == 5
        assert tensor.size == 15

    def test_item_on_scalar(self):
        assert Tensor(2.5).item() == pytest.approx(2.5)


class TestElementwiseArithmetic:
    def test_add_forward_and_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = (a + b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_radd_with_scalar(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (5.0 + a).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])

    def test_sub_and_rsub(self):
        a = Tensor([3.0], requires_grad=True)
        (a - 1.0).backward()
        np.testing.assert_allclose(a.grad, [1.0])
        b = Tensor([3.0], requires_grad=True)
        (1.0 - b).backward()
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_mul_gradient_is_other_operand(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0, 7.0])
        np.testing.assert_allclose(b.grad, [2.0, 3.0])

    def test_div_gradients(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_rtruediv(self):
        b = Tensor([2.0], requires_grad=True)
        (8.0 / b).backward()
        np.testing.assert_allclose(b.grad, [-2.0])

    def test_neg(self):
        a = Tensor([1.0, -2.0], requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, -1.0])

    def test_pow_gradient(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 3).backward()
        np.testing.assert_allclose(a.grad, [27.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestBroadcasting:
    def test_unbroadcast_sums_added_leading_axes(self):
        grad = np.ones((4, 3))
        np.testing.assert_allclose(unbroadcast(grad, (3,)), [4.0, 4.0, 4.0])

    def test_unbroadcast_sums_size_one_axes(self):
        grad = np.ones((4, 3))
        np.testing.assert_allclose(unbroadcast(grad, (4, 1)), [[3.0]] * 4)

    def test_unbroadcast_noop_when_shapes_match(self):
        grad = np.arange(6.0).reshape(2, 3)
        np.testing.assert_allclose(unbroadcast(grad, (2, 3)), grad)

    def test_broadcast_add_bias_gradient(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        bias = Tensor(np.zeros(3), requires_grad=True)
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, [4.0, 4.0, 4.0])
        np.testing.assert_allclose(x.grad, np.ones((4, 3)))

    def test_broadcast_mul_gradient(self):
        x = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        scale = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (x * scale).sum().backward()
        np.testing.assert_allclose(scale.grad, [4.0, 4.0, 4.0])


class TestMatmul:
    def test_forward_matches_numpy(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        np.testing.assert_allclose(Tensor(a).matmul(Tensor(b)).data, a @ b)

    def test_backward_matches_numeric(self, rng, gradcheck):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 2))

        def loss():
            return float((np.asarray(a) @ np.asarray(b)).sum())

        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        ta.matmul(tb).sum().backward()
        np.testing.assert_allclose(ta.grad, gradcheck(loss, a), atol=1e-6)
        np.testing.assert_allclose(tb.grad, gradcheck(loss, b), atol=1e-6)

    def test_matmul_operator(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((3, 2)))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)


class TestReductions:
    def test_sum_all(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum()
        assert out.item() == pytest.approx(15.0)
        out.backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean_gradient_scaled_by_count(self):
        a = Tensor(np.arange(4.0), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, [0.25] * 4)

    def test_mean_axis(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        a.mean(axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 0.5))

    def test_var_matches_numpy(self, rng):
        data = rng.standard_normal((4, 5))
        np.testing.assert_allclose(Tensor(data).var(axis=0).data, data.var(axis=0), atol=1e-12)

    def test_max_all(self):
        a = Tensor(np.array([1.0, 5.0, 3.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_axis_with_ties_splits_gradient(self):
        a = Tensor(np.array([[2.0, 2.0], [1.0, 3.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5], [0.0, 1.0]])


class TestNonlinearities:
    @pytest.mark.parametrize("method, reference, derivative", [
        ("exp", np.exp, np.exp),
        ("log", np.log, lambda x: 1.0 / x),
        ("sqrt", np.sqrt, lambda x: 0.5 / np.sqrt(x)),
        ("sigmoid", lambda x: 1 / (1 + np.exp(-x)),
         lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
        ("tanh", np.tanh, lambda x: 1 - np.tanh(x) ** 2),
    ])
    def test_elementwise_forward_and_backward(self, method, reference, derivative):
        data = np.array([0.5, 1.0, 2.0])
        tensor = Tensor(data, requires_grad=True)
        out = getattr(tensor, method)()
        np.testing.assert_allclose(out.data, reference(data), rtol=1e-10)
        out.sum().backward()
        np.testing.assert_allclose(tensor.grad, derivative(data), rtol=1e-8)

    def test_relu_masks_negative(self):
        a = Tensor(np.array([-1.0, 0.0, 2.0]), requires_grad=True)
        out = a.relu()
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 0.0, 1.0])

    def test_leaky_relu_negative_slope(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        out = a.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_clip_gradient_zero_outside_range(self):
        a = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        a.clip(0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_abs_gradient_is_sign(self):
        a = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_allclose(a.grad, [-1.0, 1.0])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        assert Tensor(np.arange(6.0)).reshape((3, 2)).shape == (3, 2)

    def test_flatten_batch(self):
        a = Tensor(np.zeros((4, 2, 3)))
        assert a.flatten_batch().shape == (4, 6)

    def test_transpose_and_T(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        assert a.T.shape == (3, 2)
        a.transpose(1, 0).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_getitem_gradient_scatter(self):
        a = Tensor(np.arange(5.0), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_pad_gradient_unpads(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        padded = a.pad([(1, 1), (0, 2)])
        assert padded.shape == (4, 4)
        padded.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))

    def test_stack_and_concatenate(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.full(3, 2.0), requires_grad=True)
        stacked = Tensor.stack([a, b], axis=0)
        assert stacked.shape == (2, 3)
        stacked.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))

        c = Tensor(np.ones((2, 2)), requires_grad=True)
        d = Tensor(np.ones((3, 2)), requires_grad=True)
        joined = Tensor.concatenate([c, d], axis=0)
        assert joined.shape == (5, 2)
        joined.sum().backward()
        np.testing.assert_allclose(c.grad, np.ones((2, 2)))
        np.testing.assert_allclose(d.grad, np.ones((3, 2)))

    def test_comparisons_return_arrays(self):
        a = Tensor(np.array([1.0, 3.0]))
        assert (a > 2.0).tolist() == [False, True]
        assert (a <= 1.0).tolist() == [True, False]
