"""Property-based tests (hypothesis) for the autograd engine.

These check invariants that must hold for *any* input: gradients match
central differences, softmax stays a probability distribution, pooling
and convolution preserve linearity in the expected arguments, etc.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor

# Keep example arrays small: every example runs a full numerical gradient.
small_floats = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                         allow_infinity=False, width=64)


def small_arrays(max_dims=2, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=small_floats,
    )


def central_difference(function, array, epsilon=1e-6):
    gradient = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + epsilon
        positive = function()
        array[index] = original - epsilon
        negative = function()
        array[index] = original
        gradient[index] = (positive - negative) / (2 * epsilon)
        iterator.iternext()
    return gradient


class TestElementwiseGradients:
    @settings(max_examples=30, deadline=None)
    @given(data=small_arrays())
    def test_sum_of_squares_gradient(self, data):
        tensor = Tensor(data.copy(), requires_grad=True)
        (tensor * tensor).sum().backward()
        np.testing.assert_allclose(tensor.grad, 2 * data, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(data=small_arrays())
    def test_tanh_gradient_matches_numeric(self, data):
        data = data.copy()
        tensor = Tensor(data, requires_grad=True)
        tensor.tanh().sum().backward()
        numeric = central_difference(lambda: float(np.tanh(data).sum()), data)
        np.testing.assert_allclose(tensor.grad, numeric, atol=1e-5)

    @settings(max_examples=30, deadline=None)
    @given(data=small_arrays())
    def test_mean_gradient_is_uniform(self, data):
        tensor = Tensor(data.copy(), requires_grad=True)
        tensor.mean().backward()
        np.testing.assert_allclose(tensor.grad, np.full_like(data, 1.0 / data.size), atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(a=small_arrays(max_dims=1, max_side=5), b=small_arrays(max_dims=1, max_side=5))
    def test_addition_commutes_and_gradients_are_ones(self, a, b):
        if a.shape != b.shape:
            pytest.skip("shapes must match for this property")
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        np.testing.assert_allclose((ta + tb).data, (tb + ta).data)
        (ta + tb).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones_like(a))
        np.testing.assert_allclose(tb.grad, np.ones_like(b))


class TestSoftmaxProperties:
    @settings(max_examples=40, deadline=None)
    @given(logits=arrays(np.float64, (3, 6), elements=small_floats))
    def test_softmax_is_probability_distribution(self, logits):
        probabilities = F.softmax(Tensor(logits)).data
        assert (probabilities >= 0).all()
        np.testing.assert_allclose(probabilities.sum(axis=-1), np.ones(3), atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(logits=arrays(np.float64, (2, 5), elements=small_floats),
           shift=st.floats(min_value=-50, max_value=50, allow_nan=False))
    def test_softmax_shift_invariance(self, logits, shift):
        base = F.softmax(Tensor(logits)).data
        shifted = F.softmax(Tensor(logits + shift)).data
        np.testing.assert_allclose(base, shifted, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(logits=arrays(np.float64, (4, 5), elements=small_floats),
           labels=arrays(np.int64, (4,), elements=st.integers(0, 4)))
    def test_cross_entropy_nonnegative_and_bounded_below_by_zero(self, logits, labels):
        loss = F.cross_entropy(Tensor(logits), labels)
        assert loss.item() >= -1e-9

    @settings(max_examples=30, deadline=None)
    @given(logits=arrays(np.float64, (3, 4), elements=small_floats),
           labels=arrays(np.int64, (3,), elements=st.integers(0, 3)))
    def test_cross_entropy_gradient_rows_sum_to_zero(self, logits, labels):
        """d(loss)/d(logits) rows sum to zero (softmax minus one-hot property)."""
        tensor = Tensor(logits, requires_grad=True)
        F.cross_entropy(tensor, labels, reduction="sum").backward()
        np.testing.assert_allclose(tensor.grad.sum(axis=-1), np.zeros(3), atol=1e-9)


class TestPoolingAndConvProperties:
    @settings(max_examples=20, deadline=None)
    @given(images=arrays(np.float64, (1, 2, 4, 4), elements=small_floats))
    def test_max_pool_outputs_are_maxima_of_windows(self, images):
        pooled = F.max_pool2d(Tensor(images), 2).data
        assert pooled.max() <= images.max() + 1e-12
        # Every pooled value must exist somewhere in the source image.
        for value in pooled.reshape(-1):
            assert np.isclose(images, value).any()

    @settings(max_examples=20, deadline=None)
    @given(images=arrays(np.float64, (1, 2, 4, 4), elements=small_floats))
    def test_avg_pool_preserves_global_mean(self, images):
        pooled = F.avg_pool2d(Tensor(images), 2).data
        assert pooled.mean() == pytest.approx(images.mean(), abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(images=arrays(np.float64, (1, 1, 4, 4), elements=small_floats),
           weight=arrays(np.float64, (2, 1, 3, 3), elements=small_floats),
           scale=st.floats(min_value=-2, max_value=2, allow_nan=False))
    def test_conv2d_is_linear_in_input(self, images, weight, scale):
        base = F.conv2d(Tensor(images), Tensor(weight), padding=1).data
        scaled = F.conv2d(Tensor(scale * images), Tensor(weight), padding=1).data
        np.testing.assert_allclose(scaled, scale * base, atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(images=arrays(np.float64, (2, 1, 4, 4), elements=small_floats),
           weight=arrays(np.float64, (1, 1, 3, 3), elements=small_floats))
    def test_conv2d_batch_independence(self, images, weight):
        """Convolving a batch equals convolving each sample independently."""
        together = F.conv2d(Tensor(images), Tensor(weight), padding=1).data
        separate = np.concatenate([
            F.conv2d(Tensor(images[i:i + 1]), Tensor(weight), padding=1).data
            for i in range(images.shape[0])
        ])
        np.testing.assert_allclose(together, separate, atol=1e-10)

    @settings(max_examples=20, deadline=None)
    @given(images=arrays(np.float64, (1, 1, 6, 6), elements=small_floats))
    def test_im2col_col2im_adjoint(self, images):
        cols = F.im2col(images, (3, 3), (1, 1), (1, 1))
        other = np.ones_like(cols)
        lhs = float((cols * other).sum())
        rhs = float((images * F.col2im(other, images.shape, (3, 3), (1, 1), (1, 1))).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-9)
