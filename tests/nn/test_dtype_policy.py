"""Tests for the global dtype policy (repro.nn.dtype).

The suite-wide autouse fixture pins float64 (precision mode); these tests
exercise the float32 fast mode explicitly through the public policy API
and assert that no op silently promotes to float64.
"""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.nn import (
    SGD,
    Adam,
    AdamW,
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    CrossEntropyLoss,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    MSELoss,
    RMSProp,
    ReLU,
    Sequential,
    Tensor,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)
from repro.nn.dtype import DEFAULT_DTYPE
from repro.nn.serialization import load_state_dict, save_state_dict


class TestPolicyAPI:
    def test_library_default_is_float32(self):
        assert DEFAULT_DTYPE == np.dtype(np.float32)

    def test_set_returns_previous(self):
        previous = set_default_dtype(np.float32)
        try:
            assert get_default_dtype() == np.dtype(np.float32)
        finally:
            set_default_dtype(previous)
        assert get_default_dtype() == previous

    def test_context_manager_restores(self):
        before = get_default_dtype()
        with default_dtype(np.float32):
            assert get_default_dtype() == np.dtype(np.float32)
            with default_dtype(np.float64):
                assert get_default_dtype() == np.dtype(np.float64)
            assert get_default_dtype() == np.dtype(np.float32)
        assert get_default_dtype() == before

    def test_context_manager_restores_on_error(self):
        before = get_default_dtype()
        with pytest.raises(RuntimeError):
            with default_dtype(np.float32):
                raise RuntimeError("boom")
        assert get_default_dtype() == before

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            set_default_dtype(np.complex128)


class TestLeafCreation:
    def test_tensor_follows_policy(self):
        with default_dtype(np.float32):
            assert Tensor([1.0, 2.0]).dtype == np.float32
            assert Tensor(np.arange(3)).dtype == np.float32
            # Even float64 arrays are coerced at graph entry — this is
            # exactly where silent promotion used to start.
            assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float32

    def test_explicit_dtype_wins(self):
        with default_dtype(np.float32):
            assert Tensor(np.zeros(3), dtype=np.float64).dtype == np.float64

    def test_constructors_follow_policy(self):
        with default_dtype(np.float32):
            assert Tensor.zeros(2, 3).dtype == np.float32
            assert Tensor.ones(2).dtype == np.float32
            assert Tensor.randn(4, rng=np.random.default_rng(0)).dtype == np.float32

    def test_initializers_follow_policy(self):
        from repro.nn import init

        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            for name in ["he_normal", "he_uniform", "xavier_normal", "xavier_uniform",
                         "zeros", "ones", "normal", "uniform"]:
                array = init.get_initializer(name)((4, 3), rng)
                assert array.dtype == np.float32, name

    def test_one_hot_follows_policy_and_explicit_dtype(self):
        with default_dtype(np.float32):
            assert F.one_hot([0, 2, 1], 3).dtype == np.float32
        assert F.one_hot([0, 1], 2, dtype=np.float64).dtype == np.float64


def _assert_float32_grads(module):
    for name, parameter in module.named_parameters():
        assert parameter.dtype == np.float32, f"{name} parameter promoted"
        assert parameter.grad is not None, f"{name} missing grad"
        assert parameter.grad.dtype == np.float32, f"{name} grad promoted"


class TestEndToEndPropagation:
    def test_every_layer_type_preserves_float32(self):
        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            model = Sequential([
                Conv2D(3, 4, kernel_size=3, padding="same", rng=rng),
                BatchNorm2D(4),
                ReLU(),
                MaxPool2D(2),
                Conv2D(4, 4, kernel_size=3, padding="same", rng=rng),
                ReLU(),
                AvgPool2D(2),
                Flatten(),
                Dense(4 * 2 * 2, 8, rng=rng),
                BatchNorm1D(8),
                Dropout(0.25, rng=rng),
                Dense(8, 5, rng=rng),
            ])
            images = rng.random((6, 3, 8, 8), dtype=np.float32)
            logits = model(Tensor(images))
            assert logits.dtype == np.float32
            loss = CrossEntropyLoss()(logits, rng.integers(0, 5, 6))
            assert loss.dtype == np.float32
            loss.backward()
            _assert_float32_grads(model)

    def test_losses_preserve_float32(self):
        rng = np.random.default_rng(1)
        with default_dtype(np.float32):
            logits = Tensor(rng.random((8, 4), dtype=np.float32), requires_grad=True)
            labels = rng.integers(0, 4, 8)
            ce = CrossEntropyLoss()(logits, labels)
            assert ce.dtype == np.float32
            ce.backward()
            assert logits.grad.dtype == np.float32

            predictions = Tensor(rng.random(10, dtype=np.float32), requires_grad=True)
            mse = MSELoss()(predictions, rng.random(10, dtype=np.float32))
            assert mse.dtype == np.float32
            mse.backward()
            assert predictions.grad.dtype == np.float32

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (SGD, {"lr": 0.1, "momentum": 0.9, "weight_decay": 1e-4}),
        (Adam, {"lr": 1e-3, "weight_decay": 1e-4}),
        (AdamW, {"lr": 1e-3, "weight_decay": 1e-2}),
        (RMSProp, {"lr": 1e-3}),
    ])
    def test_optimizers_preserve_float32(self, optimizer_cls, kwargs):
        rng = np.random.default_rng(2)
        with default_dtype(np.float32):
            layer = Dense(5, 3, rng=rng)
            optimizer = optimizer_cls(layer.parameters(), **kwargs)
            for _ in range(3):
                optimizer.zero_grad()
                loss = MSELoss()(layer(Tensor(rng.random((4, 5), dtype=np.float32))),
                                 rng.random((4, 3), dtype=np.float32))
                loss.backward()
                optimizer.step()
            for parameter in layer.parameters():
                assert parameter.dtype == np.float32

    def test_buffers_follow_policy(self):
        with default_dtype(np.float32):
            bn = BatchNorm2D(4)
            assert bn.running_mean.dtype == np.float32
            assert bn.running_var.dtype == np.float32

    def test_serialization_roundtrip_casts_to_live_dtype(self, tmp_path):
        rng = np.random.default_rng(3)
        with default_dtype(np.float32):
            fast = Dense(4, 2, rng=rng)
        path = tmp_path / "fast.npz"
        save_state_dict(fast.state_dict(), path)
        restored_state = load_state_dict(path)
        assert restored_state["weight"].dtype == np.float32

        # Loading a float32 checkpoint into a float64-policy model keeps
        # the live parameters float64 (and vice versa).
        precise = Dense(4, 2, rng=np.random.default_rng(3))
        assert precise.weight.dtype == np.float64  # suite runs in precision mode
        precise.load_state_dict(restored_state)
        assert precise.weight.dtype == np.float64
        np.testing.assert_allclose(precise.weight.data, fast.weight.data, rtol=1e-6)

    def test_split_round_trip_stays_float32(self, tiny_split_spec):
        from repro.core.end_system import EndSystem
        from repro.core.server import CentralServer
        from repro.data.datasets import SyntheticCIFAR10
        from repro.data.loader import DataLoader

        rng = np.random.default_rng(4)
        with default_dtype(np.float32):
            dataset = SyntheticCIFAR10(num_samples=16, image_size=8, seed=0)
            loader = DataLoader(dataset, batch_size=8, seed=0)
            end_system = EndSystem(0, loader, tiny_split_spec, seed=1)
            server = CentralServer(tiny_split_spec, seed=2)
            images = rng.random((8, 3, 8, 8))
            labels = rng.integers(0, 10, 8)
            message = end_system.forward_batch(images, labels)
            assert message.activations.dtype == np.float32
            reply = server.process(message)
            assert reply.gradient.dtype == np.float32
            end_system.apply_gradient(reply)
            for parameter in end_system.model.parameters():
                assert parameter.dtype == np.float32
                assert parameter.grad.dtype == np.float32
