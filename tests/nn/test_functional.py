"""Tests for the functional ops: im2col, conv2d, pooling, softmax, losses."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def naive_conv2d(x, w, b, stride, padding):
    """Reference convolution computed with explicit loops."""
    n, c_in, h, w_in = x.shape
    c_out, _, kh, kw = w.shape
    sh, sw = stride
    ph, pw = padding
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w_in + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for sample in range(n):
        for channel in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = padded[sample, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[sample, channel, i, j] = (patch * w[channel]).sum()
            if b is not None:
                out[sample, channel] += b[channel]
    return out


class TestIm2Col:
    def test_shapes(self, rng):
        images = rng.standard_normal((2, 3, 8, 8))
        cols = F.im2col(images, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (2, 3, 3, 3, 8, 8)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> for random x, y (adjoint property)."""
        images = rng.standard_normal((2, 2, 6, 6))
        cols_shape = F.im2col(images, (3, 3), (2, 2), (1, 1)).shape
        other = rng.standard_normal(cols_shape)
        lhs = float((F.im2col(images, (3, 3), (2, 2), (1, 1)) * other).sum())
        rhs = float((images * F.col2im(other, images.shape, (3, 3), (2, 2), (1, 1))).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_stride_no_padding_output_size(self):
        assert F.conv_output_size(8, 3, 1, 0) == 6
        assert F.conv_output_size(8, 2, 2, 0) == 4
        assert F.conv_output_size(8, 3, 1, 1) == 8


class TestConv2D:
    @pytest.mark.parametrize("stride,padding", [((1, 1), (0, 0)), ((1, 1), (1, 1)), ((2, 2), (1, 1))])
    def test_matches_naive_reference(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, naive_conv2d(x, w, b, stride, padding), atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 5, 5)))
        w = Tensor(rng.standard_normal((2, 4, 3, 3)))
        with pytest.raises(ValueError, match="channel"):
            F.conv2d(x, w)

    def test_gradients_match_numeric(self, rng, gradcheck):
        x = rng.standard_normal((2, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)

        def loss():
            return float(naive_conv2d(x, w, b, (1, 1), (1, 1)).sum())

        tx = Tensor(x, requires_grad=True)
        tw = Tensor(w, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        F.conv2d(tx, tw, tb, stride=1, padding=1).sum().backward()
        np.testing.assert_allclose(tx.grad, gradcheck(loss, x), atol=1e-5)
        np.testing.assert_allclose(tw.grad, gradcheck(loss, w), atol=1e-5)
        np.testing.assert_allclose(tb.grad, gradcheck(loss, b), atol=1e-5)

    def test_no_bias(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((2, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, padding=1)
        np.testing.assert_allclose(out.data, naive_conv2d(x, w, None, (1, 1), (1, 1)), atol=1e-10)

    def test_no_graph_without_requires_grad(self, rng):
        out = F.conv2d(Tensor(rng.standard_normal((1, 1, 4, 4))),
                       Tensor(rng.standard_normal((1, 1, 3, 3))))
        assert not out.requires_grad


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[5.0, 7.0], [13.0, 15.0]]]])

    def test_max_pool_backward_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, [1, 1, 3, 3], [1, 3, 1, 3]] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_max_pool_gradient_numeric(self, rng, gradcheck):
        x = rng.standard_normal((2, 2, 6, 6))

        def loss():
            cols = F.im2col(x, (2, 2), (2, 2), (0, 0))
            return float(cols.max(axis=(2, 3)).sum())

        tx = Tensor(x, requires_grad=True)
        F.max_pool2d(tx, 2).sum().backward()
        np.testing.assert_allclose(tx.grad, gradcheck(loss, x), atol=1e-5)

    def test_avg_pool_forward_and_backward(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_pool_halves_spatial_size(self, rng):
        out = F.max_pool2d(Tensor(rng.standard_normal((3, 4, 8, 8))), 2)
        assert out.shape == (3, 4, 4, 4)


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = Tensor(rng.standard_normal((5, 7)))
        probabilities = F.softmax(logits).data
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5), atol=1e-12)
        assert (probabilities >= 0).all()

    def test_softmax_shift_invariance(self, rng):
        logits = rng.standard_normal((3, 4))
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.standard_normal((4, 6)))
        np.testing.assert_allclose(
            F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-10
        )

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 5]), 3)

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.cross_entropy(logits, np.array([1, 2]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_perfect_prediction_near_zero(self):
        logits = np.full((1, 3), -100.0)
        logits[0, 1] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self, rng):
        logits_data = rng.standard_normal((3, 5))
        labels = np.array([0, 2, 4])
        logits = Tensor(logits_data, requires_grad=True)
        F.cross_entropy(logits, labels, reduction="sum").backward()
        expected = F.softmax(Tensor(logits_data)).data - F.one_hot(labels, 5)
        np.testing.assert_allclose(logits.grad, expected, atol=1e-10)

    def test_nll_loss_reductions(self, rng):
        log_probs = F.log_softmax(Tensor(rng.standard_normal((4, 3))))
        labels = np.array([0, 1, 2, 1])
        none = F.nll_loss(log_probs, labels, reduction="none")
        assert none.shape == (4,)
        assert F.nll_loss(log_probs, labels, reduction="sum").item() == pytest.approx(
            none.data.sum()
        )
        assert F.nll_loss(log_probs, labels, reduction="mean").item() == pytest.approx(
            none.data.mean()
        )

    def test_mse_loss(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([0.0, 0.0]))
        loss = F.mse_loss(a, b)
        assert loss.item() == pytest.approx(2.5)
        loss.backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])

    def test_unknown_reduction_raises(self):
        with pytest.raises(ValueError, match="reduction"):
            F.mse_loss(Tensor([1.0]), Tensor([1.0]), reduction="bogus")

    def test_cross_entropy_loss_decreases_under_gradient_step(self, rng):
        """One manual gradient step on the logits must reduce the loss."""
        logits_data = rng.standard_normal((8, 5))
        labels = rng.integers(0, 5, 8)
        logits = Tensor(logits_data, requires_grad=True)
        loss_before = F.cross_entropy(logits, labels)
        loss_before.backward()
        stepped = Tensor(logits_data - 0.5 * logits.grad)
        loss_after = F.cross_entropy(stepped, labels)
        assert loss_after.item() < loss_before.item()
