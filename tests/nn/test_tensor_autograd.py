"""Tests of the autograd machinery itself: graphs, detach, no_grad, accumulation."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


class TestGraphConstruction:
    def test_output_requires_grad_if_any_parent_does(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        assert (a + b).requires_grad
        assert not (b + b).requires_grad

    def test_no_grad_context_disables_tracking(self):
        a = Tensor([1.0], requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2.0
        assert is_grad_enabled()
        assert not out.requires_grad
        assert out._backward is None

    def test_no_grad_nests_and_restores(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_shares_data_but_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 3.0).detach()
        assert not b.requires_grad
        assert b._parents == ()
        # The detached tensor can seed a new graph without touching `a`.
        c = Tensor(b.data, requires_grad=True)
        (c * 2.0).sum().backward()
        assert a.grad is None
        np.testing.assert_allclose(c.grad, [2.0, 2.0])

    def test_clone_keeps_gradient_flow(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        a.clone().sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])


class TestBackward:
    def test_backward_requires_scalar_without_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (a * 2.0).backward()

    def test_backward_with_explicit_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 3.0
        out.backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_backward_with_scalar_gradient_broadcasts(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 2.0).backward(1.0)
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_diamond_graph_accumulates_both_paths(self):
        # y = a*a + a*3  => dy/da = 2a + 3
        a = Tensor([2.0], requires_grad=True)
        y = a * a + a * 3.0
        y.backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_reused_tensor_in_deep_chain(self):
        a = Tensor([1.5], requires_grad=True)
        b = a * a          # a^2
        c = b * a          # a^3
        d = c + b          # a^3 + a^2
        d.backward()
        expected = 3 * 1.5 ** 2 + 2 * 1.5
        np.testing.assert_allclose(a.grad, [expected])

    def test_grad_accumulates_across_backward_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        (a * 2.0).backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad_clears(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_gradient_not_stored_on_non_requiring_leaves(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([5.0])
        (a * b).backward()
        assert b.grad is None

    def test_long_chain_gradient(self):
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(50):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0])

    def test_split_learning_handoff_pattern(self):
        """The exact pattern the end-system/server pair uses.

        Client forward -> detach -> server forward on a fresh leaf ->
        backward on the server -> the leaf's grad is relayed back ->
        client backward with that gradient.
        """
        client_weight = Tensor([[2.0]], requires_grad=True)
        inputs = Tensor([[3.0]])
        client_out = inputs.matmul(client_weight)           # client-side graph

        smashed = Tensor(client_out.data.copy(), requires_grad=True)  # server leaf
        server_weight = Tensor([[4.0]], requires_grad=True)
        loss = smashed.matmul(server_weight).sum()
        loss.backward()

        assert smashed.grad is not None
        client_out.backward(smashed.grad)                   # relay the gradient
        # dloss/d(client_weight) = input * server_weight = 3 * 4
        np.testing.assert_allclose(client_weight.grad, [[12.0]])
        np.testing.assert_allclose(server_weight.grad, [[6.0]])


class TestTopologicalOrder:
    def test_topological_order_visits_children_before_parents(self):
        a = Tensor([1.0], requires_grad=True)
        b = a * 2.0
        c = b + 1.0
        order = c._topological_order()
        positions = {id(node): index for index, node in enumerate(order)}
        assert positions[id(c)] < positions[id(b)] < positions[id(a)]

    def test_large_graph_does_not_recurse(self):
        # Deep chains must not hit Python's recursion limit (iterative DFS).
        a = Tensor([1.0], requires_grad=True)
        out = a
        for _ in range(5000):
            out = out * 1.0001
        out.backward()
        assert a.grad is not None
