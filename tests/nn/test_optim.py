"""Tests for the optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.nn.layers.base import Parameter
from repro.nn.optim import (
    SGD,
    Adam,
    AdamW,
    CosineAnnealingLR,
    ExponentialLR,
    RMSProp,
    StepLR,
    get_optimizer,
)
from repro.nn.tensor import Tensor


def quadratic_loss(parameter: Parameter) -> Tensor:
    """Simple convex objective ||p - 3||^2."""
    diff = parameter - Tensor(np.full_like(parameter.data, 3.0))
    return (diff * diff).sum()


def run_optimizer(optimizer_cls, steps=200, **kwargs):
    parameter = Parameter(np.zeros(4))
    optimizer = optimizer_cls([parameter], **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(parameter)
        loss.backward()
        optimizer.step()
    return parameter, optimizer


class TestOptimizerBase:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_non_positive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.0)

    def test_step_skips_parameters_without_grad(self):
        parameter = Parameter(np.ones(3))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()  # no gradient yet: must be a no-op
        np.testing.assert_allclose(parameter.data, np.ones(3))

    def test_zero_grad(self):
        parameter = Parameter(np.ones(3))
        optimizer = SGD([parameter], lr=0.1)
        quadratic_loss(parameter).backward()
        optimizer.zero_grad()
        assert parameter.grad is None

    def test_state_dict_roundtrip(self):
        _, optimizer = run_optimizer(SGD, steps=3, lr=0.1)
        state = optimizer.state_dict()
        fresh = SGD([Parameter(np.zeros(4))], lr=1.0)
        fresh.load_state_dict(state)
        assert fresh.lr == optimizer.lr
        assert fresh.step_count == 3

    def test_get_optimizer_factory(self):
        optimizer = get_optimizer("sgd", [Parameter(np.zeros(2))], lr=0.1)
        assert isinstance(optimizer, SGD)
        with pytest.raises(KeyError, match="unknown optimizer"):
            get_optimizer("bogus", [Parameter(np.zeros(2))])


class TestConvergence:
    @pytest.mark.parametrize("optimizer_cls, kwargs", [
        (SGD, {"lr": 0.05}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (SGD, {"lr": 0.05, "momentum": 0.9, "nesterov": True}),
        (Adam, {"lr": 0.1}),
        (AdamW, {"lr": 0.1, "weight_decay": 1e-4}),
        (RMSProp, {"lr": 0.05}),
    ])
    def test_converges_to_minimum(self, optimizer_cls, kwargs):
        parameter, _ = run_optimizer(optimizer_cls, **kwargs)
        np.testing.assert_allclose(parameter.data, np.full(4, 3.0), atol=0.05)

    def test_sgd_weight_decay_shrinks_solution(self):
        no_decay, _ = run_optimizer(SGD, lr=0.05, weight_decay=0.0)
        with_decay, _ = run_optimizer(SGD, lr=0.05, weight_decay=0.5)
        assert np.abs(with_decay.data).sum() < np.abs(no_decay.data).sum()

    def test_sgd_matches_manual_update(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1)
        quadratic_loss(parameter).backward()       # grad = 2*(1-3) = -4
        optimizer.step()
        np.testing.assert_allclose(parameter.data, [1.0 + 0.1 * 4.0])

    def test_adam_first_step_size_is_lr(self):
        # With bias correction, the very first Adam step has magnitude ~lr.
        parameter = Parameter(np.array([0.0]))
        optimizer = Adam([parameter], lr=0.01)
        quadratic_loss(parameter).backward()
        optimizer.step()
        assert abs(parameter.data[0]) == pytest.approx(0.01, rel=1e-3)


class TestValidation:
    def test_sgd_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_sgd_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_adam_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_rmsprop_invalid_alpha(self):
        with pytest.raises(ValueError):
            RMSProp([Parameter(np.zeros(1))], alpha=1.2)


class TestSchedulers:
    def make_optimizer(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_step_lr(self):
        optimizer = self.make_optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_exponential_lr(self):
        optimizer = self.make_optimizer()
        scheduler = ExponentialLR(optimizer, gamma=0.5)
        assert scheduler.step() == pytest.approx(0.5)
        assert scheduler.step() == pytest.approx(0.25)

    def test_cosine_annealing_endpoints(self):
        optimizer = self.make_optimizer()
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, eta_min=0.0)
        values = [scheduler.step() for _ in range(10)]
        assert values[0] < 1.0
        assert values[-1] == pytest.approx(0.0, abs=1e-12)
        assert all(earlier >= later for earlier, later in zip(values, values[1:]))

    def test_scheduler_updates_optimizer(self):
        optimizer = self.make_optimizer()
        StepLR(optimizer, step_size=1, gamma=0.1).step()
        assert optimizer.lr == pytest.approx(0.1)

    def test_invalid_scheduler_arguments(self):
        with pytest.raises(ValueError):
            StepLR(self.make_optimizer(), step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(self.make_optimizer(), total_epochs=0)
