"""Optimizer state dicts, their npz round-trip, and RNG stream packing.

These are the primitives the durable-checkpoint layer builds on: an
optimizer restored from a checkpoint must resume the *exact* update
trajectory (moment buffers included), and a packed RNG stream must
reproduce the exact draw sequence of the generator it captured.
"""

import numpy as np
import pytest

from repro.nn.layers.base import Parameter
from repro.nn.optim import SGD, Adam, AdamW, RMSProp
from repro.nn.serialization import (
    flatten_optimizer_state,
    load_optimizer,
    pack_rng_state,
    restore_rng_state,
    save_optimizer,
    save_state_dict,
    load_state_dict,
    unflatten_optimizer_state,
    unpack_rng_state,
)


def make_optimizer(cls, shapes=((4, 3), (3,)), dtype=np.float64, **kwargs):
    parameters = [Parameter(np.zeros(shape, dtype=dtype)) for shape in shapes]
    return cls(parameters, **kwargs), parameters


def synthetic_steps(optimizer, parameters, steps, seed):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        for parameter in parameters:
            parameter.grad = rng.normal(size=parameter.data.shape)
        optimizer.step()


def assert_parameters_equal(a, b):
    for left, right in zip(a, b):
        np.testing.assert_array_equal(left.data, right.data)


OPTIMIZERS = [
    (SGD, dict(lr=0.05, momentum=0.9)),
    (Adam, dict(lr=0.01)),
    (AdamW, dict(lr=0.01, weight_decay=0.01)),
    (RMSProp, dict(lr=0.01)),
]


class TestResumeExactness:
    @pytest.mark.parametrize("cls, kwargs", OPTIMIZERS,
                             ids=[cls.__name__ for cls, _ in OPTIMIZERS])
    def test_restored_optimizer_resumes_exact_trajectory(self, cls, kwargs):
        reference, ref_params = make_optimizer(cls, **kwargs)
        synthetic_steps(reference, ref_params, steps=3, seed=1)
        snapshot = reference.state_dict()
        snapshot_params = [p.data.copy() for p in ref_params]
        synthetic_steps(reference, ref_params, steps=4, seed=2)

        resumed, res_params = make_optimizer(cls, **kwargs)
        for parameter, value in zip(res_params, snapshot_params):
            parameter.data = value.copy()
        resumed.load_state_dict(snapshot)
        assert resumed.step_count == 3
        synthetic_steps(resumed, res_params, steps=4, seed=2)
        assert_parameters_equal(ref_params, res_params)

    def test_state_dict_is_a_snapshot(self):
        optimizer, parameters = make_optimizer(Adam, lr=0.01)
        synthetic_steps(optimizer, parameters, steps=2, seed=1)
        snapshot = optimizer.state_dict()
        frozen = [b.copy() for b in snapshot["slots"]["m"]]
        synthetic_steps(optimizer, parameters, steps=2, seed=2)
        for before, after in zip(frozen, snapshot["slots"]["m"]):
            np.testing.assert_array_equal(before, after)

    def test_untouched_slots_stay_none(self):
        optimizer, _ = make_optimizer(SGD, lr=0.1, momentum=0.9)
        state = optimizer.state_dict()
        assert state["slots"]["velocity"] == [None, None]
        fresh, _ = make_optimizer(SGD, lr=0.1, momentum=0.9)
        fresh.load_state_dict(state)  # all-None restore is valid

    def test_none_entries_clear_existing_buffers(self):
        optimizer, parameters = make_optimizer(SGD, lr=0.1, momentum=0.9)
        synthetic_steps(optimizer, parameters, steps=1, seed=1)
        assert optimizer._velocity[0] is not None
        blank, _ = make_optimizer(SGD, lr=0.1, momentum=0.9)
        optimizer.load_state_dict(blank.state_dict())
        assert optimizer._velocity == [None, None]
        assert optimizer.step_count == 0


class TestStrictness:
    def test_unexpected_slot_rejected_strict(self):
        sgd, params = make_optimizer(SGD, lr=0.1, momentum=0.9)
        synthetic_steps(sgd, params, steps=1, seed=1)
        adam, _ = make_optimizer(Adam, lr=0.01)
        with pytest.raises(ValueError, match="unexpected slots"):
            adam.load_state_dict(sgd.state_dict())

    def test_missing_slot_rejected_strict(self):
        adam, _ = make_optimizer(Adam, lr=0.01)
        state = adam.state_dict()
        del state["slots"]["v"]
        fresh, _ = make_optimizer(Adam, lr=0.01)
        with pytest.raises(ValueError, match="missing slots"):
            fresh.load_state_dict(state)

    def test_non_strict_ignores_foreign_slots(self):
        sgd, params = make_optimizer(SGD, lr=0.1, momentum=0.9)
        synthetic_steps(sgd, params, steps=2, seed=1)
        adam, _ = make_optimizer(Adam, lr=0.01)
        adam.load_state_dict(sgd.state_dict(), strict=False)
        assert adam.step_count == 2  # hyper-state restored
        assert adam._m == [None, None]  # buffers untouched

    def test_slot_length_mismatch_always_rejected(self):
        adam, _ = make_optimizer(Adam, lr=0.01)
        state = adam.state_dict()
        state["slots"]["m"] = state["slots"]["m"] + [None]
        state["slots"]["v"] = state["slots"]["v"] + [None]
        with pytest.raises(ValueError):
            adam.load_state_dict(state, strict=False)

    def test_shape_mismatch_rejected(self):
        adam, params = make_optimizer(Adam, lr=0.01)
        synthetic_steps(adam, params, steps=1, seed=1)
        other, _ = make_optimizer(Adam, shapes=((5, 2), (3,)), lr=0.01)
        with pytest.raises(ValueError):
            other.load_state_dict(adam.state_dict())

    def test_legacy_hyper_only_dict_accepted(self):
        adam, params = make_optimizer(Adam, lr=0.01)
        synthetic_steps(adam, params, steps=2, seed=1)
        buffers = [b.copy() for b in adam._m]
        adam.load_state_dict({"lr": 0.5, "step_count": 7})
        assert adam.lr == 0.5
        assert adam.step_count == 7
        for before, after in zip(buffers, adam._m):
            np.testing.assert_array_equal(before, after)  # untouched


class TestDtypePolicyCasts:
    @pytest.mark.parametrize("source, target",
                             [(np.float64, np.float32),
                              (np.float32, np.float64)])
    def test_cross_precision_restore(self, source, target):
        # The dtype policy governs Parameter construction, so scope each
        # optimizer's build under its own policy (as a real cross-policy
        # checkpoint restore would be).
        from repro.nn.dtype import default_dtype
        with default_dtype(source):
            donor, donor_params = make_optimizer(Adam, dtype=source, lr=0.01)
            synthetic_steps(donor, donor_params, steps=2, seed=1)
        with default_dtype(target):
            receiver, _ = make_optimizer(Adam, dtype=target, lr=0.01)
        receiver.load_state_dict(donor.state_dict())
        for buffer in receiver._m + receiver._v:
            assert buffer.dtype == target
        np.testing.assert_allclose(receiver._m[0],
                                   donor._m[0].astype(target), rtol=1e-6)

    def test_restored_buffers_do_not_alias_checkpoint(self):
        optimizer, parameters = make_optimizer(Adam, lr=0.01)
        synthetic_steps(optimizer, parameters, steps=1, seed=1)
        state = optimizer.state_dict()
        fresh, fresh_params = make_optimizer(Adam, lr=0.01)
        fresh.load_state_dict(state)
        synthetic_steps(fresh, fresh_params, steps=1, seed=2)  # mutates in place
        np.testing.assert_array_equal(optimizer._m[0], state["slots"]["m"][0])


class TestNpzRoundTrip:
    def test_save_load_optimizer(self, tmp_path):
        optimizer, parameters = make_optimizer(Adam, lr=0.01)
        synthetic_steps(optimizer, parameters, steps=3, seed=1)
        path = save_optimizer(optimizer, tmp_path / "optimizer.npz")
        fresh, fresh_params = make_optimizer(Adam, lr=0.5)
        load_optimizer(fresh, path)
        assert fresh.lr == optimizer.lr
        assert fresh.step_count == 3
        for left, right in zip(fresh._m, optimizer._m):
            np.testing.assert_array_equal(left, right)
        # And the restored optimizer continues the donor's trajectory.
        for parameter, donor in zip(fresh_params, parameters):
            parameter.data = donor.data.copy()
        synthetic_steps(optimizer, parameters, steps=2, seed=9)
        synthetic_steps(fresh, fresh_params, steps=2, seed=9)
        for left, right in zip(fresh_params, parameters):
            np.testing.assert_array_equal(left.data, right.data)

    def test_flatten_unflatten_preserves_holes(self):
        optimizer, parameters = make_optimizer(SGD, lr=0.1, momentum=0.9)
        rng = np.random.default_rng(0)
        parameters[0].grad = rng.normal(size=parameters[0].data.shape)
        optimizer.step()  # only parameter 0 gets a velocity buffer
        state = optimizer.state_dict()
        rebuilt = unflatten_optimizer_state(flatten_optimizer_state(state))
        assert rebuilt["slots"]["velocity"][1] is None
        np.testing.assert_array_equal(rebuilt["slots"]["velocity"][0],
                                      state["slots"]["velocity"][0])

    def test_save_state_dict_honors_exact_path(self, tmp_path):
        """Regression: numpy appends ``.npz`` to bare paths, which would
        break temp-then-rename writers using ``*.tmp`` names."""
        path = tmp_path / "payload.npz.tmp"
        returned = save_state_dict({"a": np.arange(3.0)}, path)
        assert returned == path
        assert path.exists()
        assert not (tmp_path / "payload.npz.tmp.npz").exists()
        loaded = load_state_dict(path)
        np.testing.assert_array_equal(loaded["a"], np.arange(3.0))


class TestRngStreams:
    def test_pack_restore_reproduces_draws(self):
        rng = np.random.default_rng(123)
        rng.normal(size=10)  # advance the stream
        packed = pack_rng_state(rng)
        expected = rng.normal(size=5)
        rng.normal(size=7)  # drift further
        restore_rng_state(rng, packed)
        np.testing.assert_array_equal(rng.normal(size=5), expected)

    def test_pack_is_read_only(self):
        rng = np.random.default_rng(5)
        twin = np.random.default_rng(5)
        pack_rng_state(rng)  # capturing must not advance the stream
        np.testing.assert_array_equal(rng.normal(size=4), twin.normal(size=4))

    def test_pack_accepts_raw_state_dict(self):
        rng = np.random.default_rng(9)
        packed = pack_rng_state(rng.bit_generator.state)
        assert unpack_rng_state(packed) == rng.bit_generator.state

    def test_restore_none_is_noop(self):
        rng = np.random.default_rng(4)
        twin = np.random.default_rng(4)
        restore_rng_state(rng, None)
        np.testing.assert_array_equal(rng.normal(size=3), twin.normal(size=3))

    def test_round_trips_through_npz(self, tmp_path):
        rng = np.random.default_rng(77)
        rng.normal(size=3)
        save_state_dict({"stream": pack_rng_state(rng)}, tmp_path / "rng.npz")
        expected = rng.normal(size=4)
        fresh = np.random.default_rng(0)
        restore_rng_state(fresh, load_state_dict(tmp_path / "rng.npz")["stream"])
        np.testing.assert_array_equal(fresh.normal(size=4), expected)
