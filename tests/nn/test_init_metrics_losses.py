"""Tests for initializers, metrics, the loss modules and serialization helpers."""

import numpy as np
import pytest

from repro.nn import CrossEntropyLoss, Dense, L1Loss, MSELoss, NLLLoss, Sequential, Tensor
from repro.nn import functional as F
from repro.nn import init as initializers
from repro.nn.losses import get_loss
from repro.nn.metrics import (
    MetricTracker,
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    top_k_accuracy,
)
from repro.nn.serialization import (
    load_module,
    load_state_dict,
    parameter_summary,
    save_module,
    save_state_dict,
)


class TestInitializers:
    def test_compute_fans_dense_and_conv(self):
        assert initializers.compute_fans((10, 20)) == (10, 20)
        assert initializers.compute_fans((16, 3, 3, 3)) == (27, 144)
        assert initializers.compute_fans((5,)) == (5, 5)

    def test_he_normal_variance(self):
        rng = np.random.default_rng(0)
        weights = initializers.he_normal((1000, 100), rng)
        assert weights.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_xavier_uniform_bounds(self):
        rng = np.random.default_rng(0)
        weights = initializers.xavier_uniform((50, 50), rng)
        limit = np.sqrt(6.0 / 100)
        assert np.abs(weights).max() <= limit

    def test_zeros_and_ones(self):
        assert initializers.zeros((3, 3)).sum() == 0
        assert initializers.ones((3, 3)).sum() == 9

    def test_registry_lookup(self):
        assert initializers.get_initializer("he_normal") is initializers.he_normal
        with pytest.raises(KeyError, match="unknown initializer"):
            initializers.get_initializer("bogus")

    def test_initializers_deterministic_given_rng(self):
        a = initializers.he_normal((4, 4), np.random.default_rng(7))
        b = initializers.he_normal((4, 4), np.random.default_rng(7))
        np.testing.assert_allclose(a, b)


class TestMetrics:
    def test_accuracy_perfect_and_zero(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 0])) == 1.0
        assert accuracy(logits, np.array([0, 1])) == 0.0

    def test_accuracy_accepts_tensors(self, rng):
        logits = Tensor(rng.standard_normal((6, 3)))
        labels = rng.integers(0, 3, 6)
        assert 0.0 <= accuracy(logits, labels) <= 1.0

    def test_accuracy_batch_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((3, 2)), np.zeros(4))

    def test_top_k_accuracy_monotone_in_k(self, rng):
        logits = rng.standard_normal((50, 10))
        labels = rng.integers(0, 10, 50)
        top1 = top_k_accuracy(logits, labels, k=1)
        top5 = top_k_accuracy(logits, labels, k=5)
        top10 = top_k_accuracy(logits, labels, k=10)
        assert top1 <= top5 <= top10 == 1.0

    def test_top_k_invalid_k(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2), k=0)

    def test_confusion_matrix_diagonal(self):
        logits = np.eye(3)
        labels = np.array([0, 1, 2])
        matrix = confusion_matrix(logits, labels)
        np.testing.assert_array_equal(matrix, np.eye(3, dtype=np.int64))

    def test_confusion_matrix_counts_errors(self):
        logits = np.array([[0.9, 0.1], [0.9, 0.1], [0.1, 0.9]])
        labels = np.array([0, 1, 1])
        matrix = confusion_matrix(logits, labels, num_classes=2)
        assert matrix[1, 0] == 1 and matrix[1, 1] == 1 and matrix[0, 0] == 1

    def test_per_class_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.9, 0.1], [0.1, 0.9], [0.1, 0.9]])
        labels = np.array([0, 0, 1, 0])
        per_class = per_class_accuracy(logits, labels, num_classes=2)
        assert per_class[0] == pytest.approx(2 / 3)
        assert per_class[1] == pytest.approx(1.0)

    def test_metric_tracker_weighted_average(self):
        tracker = MetricTracker()
        tracker.update({"loss": 2.0}, count=10)
        tracker.update({"loss": 4.0}, count=30)
        assert tracker.average("loss") == pytest.approx(3.5)
        assert tracker.averages() == {"loss": pytest.approx(3.5)}

    def test_metric_tracker_unknown_metric(self):
        with pytest.raises(KeyError):
            MetricTracker().average("loss")

    def test_metric_tracker_reset(self):
        tracker = MetricTracker()
        tracker.update({"x": 1.0})
        tracker.reset()
        assert tracker.history == []
        with pytest.raises(KeyError):
            tracker.average("x")

    def test_metric_tracker_rejects_bad_count(self):
        with pytest.raises(ValueError):
            MetricTracker().update({"x": 1.0}, count=0)


class TestLossModules:
    def test_cross_entropy_module_matches_functional(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        labels = rng.integers(0, 3, 4)
        module_loss = CrossEntropyLoss()(logits, labels)
        functional_loss = F.cross_entropy(logits, labels)
        assert module_loss.item() == pytest.approx(functional_loss.item())

    def test_nll_loss_module(self, rng):
        log_probs = F.log_softmax(Tensor(rng.standard_normal((4, 3))))
        labels = rng.integers(0, 3, 4)
        assert NLLLoss()(log_probs, labels).item() == pytest.approx(
            F.nll_loss(log_probs, labels).item()
        )

    def test_mse_and_l1(self):
        predictions = Tensor(np.array([1.0, -1.0]))
        targets = Tensor(np.array([0.0, 0.0]))
        assert MSELoss()(predictions, targets).item() == pytest.approx(1.0)
        assert L1Loss()(predictions, targets).item() == pytest.approx(1.0)

    def test_labels_as_tensor_accepted(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        labels = Tensor(np.array([0, 1, 2, 0]))
        assert CrossEntropyLoss()(logits, labels).item() > 0

    def test_get_loss_factory_and_validation(self):
        assert isinstance(get_loss("cross_entropy"), CrossEntropyLoss)
        with pytest.raises(KeyError, match="unknown loss"):
            get_loss("bogus")
        with pytest.raises(ValueError, match="reduction"):
            CrossEntropyLoss(reduction="bogus")


class TestSerialization:
    def test_state_dict_file_roundtrip(self, tmp_path, rng):
        state = {"layer.weight": rng.standard_normal((3, 4)), "layer.bias": np.zeros(4)}
        path = save_state_dict(state, tmp_path / "checkpoint.npz")
        loaded = load_state_dict(path)
        assert set(loaded) == set(state)
        np.testing.assert_allclose(loaded["layer.weight"], state["layer.weight"])

    def test_module_roundtrip(self, tmp_path, rng):
        source = Sequential([("a", Dense(4, 3, rng=rng)), ("b", Dense(3, 2, rng=rng))])
        target = Sequential([
            ("a", Dense(4, 3, rng=np.random.default_rng(5))),
            ("b", Dense(3, 2, rng=np.random.default_rng(6))),
        ])
        save_module(source, tmp_path / "model.npz")
        load_module(target, tmp_path / "model.npz")
        x = Tensor(rng.standard_normal((2, 4)))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(tmp_path / "does_not_exist.npz")

    def test_parameter_summary_totals(self, rng):
        model = Dense(4, 3, rng=rng)
        summary = parameter_summary(model)
        assert "total" in summary
        assert f"{4 * 3 + 3:,d}" in summary
