"""JSON report schema and CLI behavior (exit codes, formats, filters)."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import (
    JSON_SCHEMA_VERSION,
    analyze_source,
    findings_to_json,
)
from repro.analysis.__main__ import main

BAD_SOURCE = textwrap.dedent("""
    import numpy as np
    a = np.zeros(3)
    b = np.ones(4)  # repro-lint: ignore[RL001] -- float64 on purpose for this probe
""")

#: Every key a finding object must carry, with its expected type(s).
FINDING_SCHEMA = {
    "path": str,
    "line": int,
    "col": int,
    "rule_id": str,
    "message": str,
    "fix_hint": str,
    "suppressed": bool,
    "suppress_reason": (str, type(None)),
}


class TestJsonSchema:
    @pytest.fixture()
    def report(self):
        findings = analyze_source(BAD_SOURCE, "src/repro/core/example.py")
        return findings_to_json(findings)

    def test_top_level_shape(self, report):
        assert set(report) == {"schema_version", "findings", "summary"}
        assert report["schema_version"] == JSON_SCHEMA_VERSION
        assert isinstance(report["findings"], list)

    def test_finding_objects_match_schema(self, report):
        assert report["findings"], "fixture should produce findings"
        for finding in report["findings"]:
            assert set(finding) == set(FINDING_SCHEMA)
            for key, expected in FINDING_SCHEMA.items():
                assert isinstance(finding[key], expected), (key, finding[key])

    def test_summary_counts_are_consistent(self, report):
        summary = report["summary"]
        assert summary["total"] == len(report["findings"])
        assert summary["unsuppressed"] + summary["suppressed"] == summary["total"]
        assert summary["unsuppressed"] == 1  # the np.zeros site
        assert summary["suppressed"] == 1    # the reasoned np.ones site
        assert summary["by_rule"] == {"RL001": 1}

    def test_report_is_json_serializable_and_stable(self, report):
        as_text = json.dumps(report, sort_keys=True)
        assert json.loads(as_text) == report


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        assert main([str(target)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_with_text_report(self, tmp_path, capsys):
        # The file must live under a repro/ package dir for scoping, so
        # build one inside tmp_path.
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        target = package / "bad.py"
        target.write_text("import numpy as np\nx = np.zeros(3)\n")
        assert main([str(target)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert "bad.py:2" in out

    def test_json_format(self, tmp_path, capsys):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("import numpy as np\nx = np.zeros(3)\n")
        assert main(["--format", "json", str(package)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"] == JSON_SCHEMA_VERSION
        assert report["summary"]["unsuppressed"] == 1

    def test_rules_filter(self, tmp_path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("import numpy as np\nx = np.zeros(3)\n")
        # Filtering to a rule the snippet does not violate passes.
        assert main(["--rules", "RL002", str(package)]) == 0
        assert main(["--rules", "RL001", str(package)]) == 1

    def test_unknown_rule_filter_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["--rules", "RL777"])

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out

    def test_module_invocation_smoke(self, tmp_path):
        """``python -m repro.analysis`` is exactly what CI runs."""
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(target)],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, result.stderr
