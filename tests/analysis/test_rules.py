"""Fixture-snippet tests: each rule fires on a known-bad snippet, stays
quiet on the known-good equivalent, and honours reasoned suppressions."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source

# Virtual paths that place snippets inside (or outside) the repro package
# so module-scoped rules resolve their scope exactly like on disk.
CORE_PATH = "src/repro/core/example.py"
ENGINE_PATH = "src/repro/core/engine.py"
HOT_PATH = "src/repro/nn/functional.py"
COLD_PATH = "src/repro/core/privacy.py"
OUTSIDE_PATH = "scripts/example.py"


def lint(source: str, path: str = CORE_PATH):
    return analyze_source(textwrap.dedent(source), path)


def unsuppressed(source: str, path: str = CORE_PATH):
    return [f for f in lint(source, path) if not f.suppressed]


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# --------------------------------------------------------------------------- #
# RL001 dtype-policy
# --------------------------------------------------------------------------- #
class TestDtypePolicy:
    def test_fires_on_allocating_constructors(self):
        source = """
            import numpy as np
            a = np.zeros((4, 4))
            b = np.empty(8)
            c = np.ones(3)
            d = np.full(5, 0.1)
            e = np.arange(10)
        """
        findings = unsuppressed(source)
        assert rule_ids(findings) == ["RL001"] * 5

    def test_fires_on_literal_conversions(self):
        findings = unsuppressed("""
            import numpy as np
            weights = np.array([0.1, 0.2, 0.3])
            more = np.asarray((1.5, 2.5))
        """)
        assert rule_ids(findings) == ["RL001", "RL001"]

    def test_quiet_with_explicit_dtype(self):
        assert unsuppressed("""
            import numpy as np
            from repro.nn.dtype import get_default_dtype
            a = np.zeros((4, 4), dtype=get_default_dtype())
            b = np.arange(10, dtype=np.intp)
            c = np.array([0.1], dtype=np.float64)
        """) == []

    def test_quiet_on_dtype_preserving_passthrough(self):
        # asarray over an array-valued expression preserves its dtype;
        # forcing one would corrupt deliberate precision choices.
        assert unsuppressed("""
            import numpy as np
            def convert(value):
                return np.asarray(value)
        """) == []

    def test_quiet_outside_the_repro_package(self):
        assert unsuppressed("import numpy as np\nx = np.zeros(3)\n",
                            path=OUTSIDE_PATH) == []

    def test_finding_carries_location_and_hint(self):
        (finding,) = unsuppressed("import numpy as np\nx = np.zeros(3)\n")
        assert finding.line == 2
        assert finding.rule_id == "RL001"
        assert "dtype=" in finding.fix_hint
        assert finding.path == CORE_PATH

    def test_suppressed_with_reason(self):
        findings = lint("""
            import numpy as np
            x = np.zeros(3)  # repro-lint: ignore[RL001] -- float64 scratch for a numerics test
        """)
        assert [f.rule_id for f in findings] == ["RL001"]
        assert findings[0].suppressed
        assert "float64 scratch" in findings[0].suppress_reason
        assert unsuppressed("""
            import numpy as np
            x = np.zeros(3)  # repro-lint: ignore[RL001] -- float64 scratch for a numerics test
        """) == []


# --------------------------------------------------------------------------- #
# RL002 determinism
# --------------------------------------------------------------------------- #
class TestDeterminism:
    def test_fires_on_wall_clock_and_global_rngs(self):
        source = """
            import time, random
            import numpy as np
            from datetime import datetime
            start = time.time()
            stamp = datetime.now()
            pick = random.choice([1, 2])
            noise = np.random.randn(4)
            np.random.seed(0)
        """
        findings = unsuppressed(source)
        assert rule_ids(findings) == ["RL002"] * 5

    def test_quiet_on_seeded_generators_and_perf_counter(self):
        assert unsuppressed("""
            import time
            import numpy as np
            rng = np.random.default_rng(42)
            children = np.random.SeedSequence(7).spawn(3)
            noise = rng.standard_normal(4)
            elapsed = time.perf_counter()
        """) == []

    def test_suppressed_case(self):
        findings = lint("""
            import time
            now = time.time()  # repro-lint: ignore[RL002] -- wall-clock benchmark stamp, never simulated
        """)
        assert [f.rule_id for f in findings] == ["RL002"]
        assert findings[0].suppressed

    def test_fires_on_unseeded_generator_construction(self):
        findings = unsuppressed("""
            import numpy as np
            from numpy.random import default_rng
            a = np.random.default_rng()
            b = default_rng()
            c = np.random.Generator(np.random.PCG64())
            d = np.random.Generator()
        """)
        assert rule_ids(findings) == ["RL002"] * 4
        assert all("seed" in f.fix_hint for f in findings)

    def test_quiet_on_seeded_generator_construction(self):
        assert unsuppressed("""
            import numpy as np
            from numpy.random import default_rng
            a = np.random.default_rng(7)
            b = default_rng(seed=3)
            c = np.random.Generator(np.random.PCG64(11))
            d = np.random.default_rng(np.random.SeedSequence(5))
        """) == []

    def test_unseeded_detection_ignores_unrelated_names(self):
        # A project-local helper that merely shares the name must not fire.
        assert unsuppressed("""
            from repro.utils.rng import make_generator as Generator
            g = mystream.Generator()
            h = factory.other.default_rng
        """) == []


# --------------------------------------------------------------------------- #
# RL003 drop-accounting
# --------------------------------------------------------------------------- #
class TestDropAccounting:
    BAD = """
        class Monitor:
            def purge(self, shard):
                shard.queue.clear()
                shard.arena.pop(0)
                self._pending = {}
    """

    def test_fires_outside_approved_modules(self):
        findings = unsuppressed(self.BAD, path="src/repro/cluster/coordinator.py")
        assert rule_ids(findings) == ["RL003"] * 3

    def test_quiet_inside_approved_modules(self):
        assert unsuppressed(self.BAD, path="src/repro/core/server.py") == []

    def test_quiet_for_reads_and_init(self):
        assert unsuppressed("""
            class Monitor:
                def __init__(self):
                    self._pending = {}
                def depth(self, shard):
                    return len(shard.queue)
        """, path="src/repro/cluster/coordinator.py") == []

    def test_suppressed_case(self):
        findings = lint("""
            def reset_sim(sim):
                # repro-lint: ignore[RL003] -- event heap, not a transport queue
                sim._queue.clear()
        """, path="src/repro/simnet/example.py")
        assert [f.rule_id for f in findings] == ["RL003"]
        assert findings[0].suppressed


# --------------------------------------------------------------------------- #
# RL004 generation-guard
# --------------------------------------------------------------------------- #
class TestGenerationGuard:
    def test_fires_on_unguarded_runtime_callback(self):
        findings = unsuppressed("""
            def drive(sim, runtime):
                def fire(fire_sim):
                    runtime.round_index += 1
                sim.schedule(1.0, fire)
        """, path=ENGINE_PATH)
        assert rule_ids(findings) == ["RL004"]
        assert "generation" in findings[0].message

    def test_fires_on_unguarded_lambda(self):
        findings = unsuppressed("""
            def drive(sim, runtime):
                sim.schedule(1.0, lambda s, rt=runtime: rt.advance())
        """, path=ENGINE_PATH)
        assert rule_ids(findings) == ["RL004"]

    def test_quiet_with_generation_check(self):
        assert unsuppressed("""
            def drive(sim, runtime):
                generation = runtime.generation
                def fire(fire_sim):
                    if runtime.generation != generation:
                        return
                    runtime.round_index += 1
                sim.schedule(1.0, fire)
        """, path=ENGINE_PATH) == []

    def test_quiet_with_health_check(self):
        assert unsuppressed("""
            def drive(sim, runtime):
                def fire(fire_sim, rt=runtime):
                    if not rt.shard.healthy:
                        return
                    rt.round_index += 1
                sim.schedule(1.0, fire)
        """, path=ENGINE_PATH) == []

    def test_quiet_via_one_level_call_through(self):
        # A forwarder lambda is fine when the handler it names checks.
        assert unsuppressed("""
            class Engine:
                def _on_transition(self, sim, runtime):
                    if not runtime.shard.healthy:
                        return
                    runtime.round_index += 1

                def drive(self, sim, runtime):
                    sim.schedule(1.0, lambda s, rt=runtime: self._on_transition(s, rt))
        """, path=ENGINE_PATH) == []

    def test_quiet_for_runtime_free_callbacks(self):
        # Client-side landings resolve staleness via per-message state.
        assert unsuppressed("""
            def drive(sim, end_system, message):
                sim.schedule(1.0, lambda s: end_system.notify_drop(message.batch_id))
        """, path=ENGINE_PATH) == []

    def test_quiet_outside_scoped_modules(self):
        assert unsuppressed("""
            def drive(sim, runtime):
                sim.schedule(1.0, lambda s, rt=runtime: rt.advance())
        """, path="src/repro/core/trainer.py") == []

    def test_suppressed_case(self):
        findings = lint("""
            def drive(sim, runtime):
                # repro-lint: ignore[RL004] -- runtime is immutable config here, not a shard chain
                sim.schedule(1.0, lambda s, rt=runtime: rt.log())
        """, path=ENGINE_PATH)
        assert [f.rule_id for f in findings] == ["RL004"]
        assert findings[0].suppressed


# --------------------------------------------------------------------------- #
# RL005 backend-bypass
# --------------------------------------------------------------------------- #
class TestBackendBypass:
    def test_fires_on_raw_gemm_in_hot_module(self):
        findings = unsuppressed("""
            import numpy as np
            def affine(x, w, b):
                return x @ w + b
            def product(a, b):
                return np.matmul(a, b)
            def contraction(a, b):
                return np.einsum("ij,jk->ik", a, b)
        """, path=HOT_PATH)
        assert rule_ids(findings) == ["RL005"] * 3

    def test_quiet_when_routed_through_backend(self):
        assert unsuppressed("""
            from repro.backend import get_backend
            def affine(x, w, b):
                return get_backend().gemm(x, w, bias=b)
        """, path=HOT_PATH) == []

    def test_quiet_in_cold_modules(self):
        # privacy.py's closed-form attack is explicitly out of scope.
        assert unsuppressed("""
            import numpy as np
            def gram(x):
                return x.T @ x
        """, path=COLD_PATH) == []

    def test_suppressed_case(self):
        findings = lint("""
            import numpy as np
            def tiny(a, b):
                return a @ b  # repro-lint: ignore[RL005] -- 2x2 metadata product, never hot
        """, path=HOT_PATH)
        assert [f.rule_id for f in findings] == ["RL005"]
        assert findings[0].suppressed


# --------------------------------------------------------------------------- #
# RL900 suppression hygiene + RL999 parse errors
# --------------------------------------------------------------------------- #
class TestSuppressionHygiene:
    def test_reasonless_suppression_does_not_suppress(self):
        findings = lint("""
            import numpy as np
            x = np.zeros(3)  # repro-lint: ignore[RL001]
        """)
        ids = sorted(rule_ids(findings))
        assert ids == ["RL001", "RL900"]
        assert not any(f.suppressed for f in findings)

    def test_unknown_rule_id_is_reported(self):
        findings = lint("x = 1  # repro-lint: ignore[RL123] -- no such rule\n")
        assert rule_ids(findings) == ["RL900"]
        assert "unknown rule" in findings[0].message

    def test_unused_suppression_is_reported(self):
        findings = lint("""
            x = 1  # repro-lint: ignore[RL001] -- nothing here actually violates RL001
        """)
        assert rule_ids(findings) == ["RL900"]
        assert "unused" in findings[0].message

    def test_syntax_error_fails_the_gate(self):
        findings = unsuppressed("def broken(:\n")
        assert rule_ids(findings) == ["RL999"]
