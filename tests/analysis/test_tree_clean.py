"""The standing gate: the tree itself must be repro-lint clean.

This is the pytest twin of the CI ``analysis`` job — any commit that
introduces an unsuppressed invariant violation under ``src/repro`` fails
here first, with the same file:line report the CLI prints.
"""

from __future__ import annotations

import os

import repro
from repro.analysis import analyze_paths

SRC_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


def test_src_tree_has_no_unsuppressed_findings():
    findings = analyze_paths([SRC_ROOT])
    offenders = [f.render() for f in findings if not f.suppressed]
    assert offenders == [], (
        "repro-lint found invariant violations:\n" + "\n".join(offenders)
    )


def test_every_suppression_carries_a_reason():
    findings = analyze_paths([SRC_ROOT])
    suppressed = [f for f in findings if f.suppressed]
    # The suppression machinery refuses reasonless suppressions, so this
    # is a belt-and-braces audit of the report itself.
    for finding in suppressed:
        assert finding.suppress_reason, finding.render()


def test_known_suppression_inventory():
    """Adding a suppression is a reviewed decision: update this list.

    The inventory pins (path, rule) pairs, not line numbers, so routine
    edits do not churn it — but a brand-new suppression anywhere in the
    tree shows up as a diff here and in review.
    """
    findings = analyze_paths([SRC_ROOT])
    inventory = sorted(
        (os.path.relpath(f.path, SRC_ROOT).replace(os.sep, "/"), f.rule_id)
        for f in findings if f.suppressed
    )
    assert inventory == [
        ("chaos/plan.py", "RL002"),
        ("cluster/failover.py", "RL002"),
        ("data/transforms.py", "RL002"),
        ("data/transforms.py", "RL002"),
        ("data/transforms.py", "RL002"),
        ("data/transforms.py", "RL002"),
        ("nn/init.py", "RL002"),
        ("nn/layers/regularization.py", "RL002"),
        ("nn/tensor.py", "RL002"),
        ("simnet/events.py", "RL003"),
        ("simnet/latency.py", "RL002"),
        ("simnet/latency.py", "RL002"),
        ("simnet/latency.py", "RL002"),
    ]
