"""The event-driven engine must reproduce the bespoke pre-refactor loops.

The seed tree drove training with two hand-written loops inside
``SpatioTemporalTrainer`` (``_train_epoch_synchronous`` and
``_run_asynchronous``).  They were replaced by the discrete-event engine
in :mod:`repro.core.engine`; these tests pin the refactor by re-running
verbatim copies of the old loops (below) against identically-seeded
trainers and requiring the same training histories — per-epoch loss and
accuracy — and the same final parameters, on a lossless topology.

The copies operate on the trainer's public components (end-systems,
server, transport), so they exercise the *orchestration* semantics the
engine must preserve: round barriers, policy-ordered queue draining,
batched vs per-message server steps, in-flight bookkeeping and the
simulated clock.
"""

import heapq
import itertools

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import SpatioTemporalTrainer
from repro.nn.metrics import MetricTracker
from repro.simnet.topology import star_topology

# Deliberately irregular constants so no two arrival times ever collide
# (exact float ties would make FIFO fall back to sequence-number order,
# which is send-order dependent and not part of the pinned semantics).
LATENCIES_S = [0.0013, 0.0047]


def make_trainer(spec, parts, normalize, **overrides):
    config = TrainingConfig.fast_debug(**overrides)
    topology = star_topology(len(parts), latencies_s=LATENCIES_S[: len(parts)])
    return SpatioTemporalTrainer(spec, parts, config, topology=topology,
                                 train_transform=normalize)


# --------------------------------------------------------------------- #
# Reference implementations: verbatim ports of the pre-refactor loops
# --------------------------------------------------------------------- #
def reference_synchronous_epoch(trainer, epoch):
    tracker = MetricTracker()
    iterators = {
        end_system.system_id: end_system.batches(epoch)
        for end_system in trainer.end_systems
    }
    active = set(iterators)
    round_index = 0
    while active:
        round_messages = []
        for end_system in trainer.end_systems:
            if end_system.system_id not in active:
                continue
            try:
                images, labels = next(iterators[end_system.system_id])
            except StopIteration:
                active.discard(end_system.system_id)
                continue
            message = end_system.forward_batch(
                images, labels, round_index=round_index, created_at=trainer._clock
            )
            network_message = trainer.transport.send_to_server(
                trainer._system_to_node[end_system.system_id],
                {"activations": message.activations, "labels": message.labels},
                now=trainer._clock,
            )
            if network_message is None:
                end_system.discard_pending(message.batch_id)
                continue
            message.arrival_time = network_message.arrival_time
            message.size_bytes = network_message.size_bytes
            trainer.server.receive(message)
            round_messages.append(message)

        if not round_messages and not trainer.server.has_pending():
            round_index += 1
            continue

        latest_arrival = max(
            (message.arrival_time for message in round_messages), default=trainer._clock
        )
        gradient_arrivals = [latest_arrival]
        if trainer.config.server_batching:
            results = trainer.server.process_pending_batch(now=latest_arrival)
            send_times = [latest_arrival] * len(results)
        else:
            results = []
            send_times = []
            while trainer.server.has_pending():
                activation_message, gradient_message = trainer.server.process_next(
                    now=latest_arrival
                )
                results.append((activation_message, gradient_message))
                send_times.append(activation_message.arrival_time)
        for (activation_message, gradient_message), send_time in zip(results, send_times):
            tracker.update(
                {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                count=activation_message.batch_size,
            )
            end_system = trainer.end_systems[activation_message.end_system_id]
            downlink = trainer.transport.send_to_end_system(
                trainer._system_to_node[end_system.system_id],
                gradient_message.gradient,
                now=send_time,
            )
            if downlink is None:
                end_system.discard_pending(gradient_message.batch_id)
                continue
            gradient_arrivals.append(downlink.arrival_time)
            end_system.apply_gradient(gradient_message)

        trainer._clock = max(gradient_arrivals)
        round_index += 1
    return tracker


def reference_asynchronous(trainer, iterators, stop_time=None):
    tracker = MetricTracker()
    exhausted = set()
    in_flight = []
    counter = itertools.count()

    def send_next_batch(end_system, at_time):
        if end_system.system_id in exhausted:
            return
        if stop_time is not None and at_time >= stop_time:
            return
        try:
            images, labels = next(iterators[end_system.system_id])
        except StopIteration:
            exhausted.add(end_system.system_id)
            return
        message = end_system.forward_batch(images, labels, created_at=at_time)
        network_message = trainer.transport.send_to_server(
            trainer._system_to_node[end_system.system_id],
            {"activations": message.activations, "labels": message.labels},
            now=at_time,
        )
        if network_message is None:
            end_system.discard_pending(message.batch_id)
            send_next_batch(end_system, at_time)
            return
        message.arrival_time = network_message.arrival_time
        message.size_bytes = network_message.size_bytes
        heapq.heappush(in_flight, (message.arrival_time, next(counter), message))

    for end_system in trainer.end_systems:
        for _ in range(trainer.config.max_in_flight):
            send_next_batch(end_system, trainer._clock)

    server_free_at = trainer._clock
    while in_flight or trainer.server.has_pending():
        horizon = max(server_free_at, trainer._clock)
        if not trainer.server.has_pending() and in_flight:
            horizon = max(horizon, in_flight[0][0])
        while in_flight and in_flight[0][0] <= horizon:
            _, _, message = heapq.heappop(in_flight)
            trainer.server.receive(message)
        if not trainer.server.has_pending():
            continue

        start_time = max(server_free_at, horizon)
        if stop_time is not None and start_time >= stop_time:
            trainer._clock = max(trainer._clock, stop_time)
            break
        if trainer.config.server_batching:
            results = trainer.server.process_pending_batch(now=start_time)
        else:
            results = [trainer.server.process_next(now=start_time)]
        finish_time = start_time + trainer.config.server_step_time_s
        server_free_at = finish_time
        trainer._clock = finish_time
        for activation_message, gradient_message in results:
            tracker.update(
                {"loss": gradient_message.loss, "accuracy": gradient_message.accuracy},
                count=activation_message.batch_size,
            )
            end_system = trainer.end_systems[activation_message.end_system_id]
            downlink = trainer.transport.send_to_end_system(
                trainer._system_to_node[end_system.system_id],
                gradient_message.gradient,
                now=finish_time,
            )
            if downlink is None:
                end_system.discard_pending(gradient_message.batch_id)
                send_next_batch(end_system, finish_time)
                continue
            end_system.apply_gradient(gradient_message)
            send_next_batch(end_system, downlink.arrival_time)
            trainer._clock = max(trainer._clock, downlink.arrival_time)
    return tracker


def reference_curves(trainer, epochs):
    """Per-epoch (loss, accuracy) under the pre-refactor orchestration."""
    curves = []
    for epoch in range(epochs):
        if trainer.config.mode == "synchronous":
            tracker = reference_synchronous_epoch(trainer, epoch)
        else:
            iterators = {
                end_system.system_id: end_system.batches(epoch)
                for end_system in trainer.end_systems
            }
            tracker = reference_asynchronous(trainer, iterators)
        averages = tracker.averages()
        curves.append((averages["loss"], averages["accuracy"]))
    return curves


def engine_curves(trainer, epochs):
    history = trainer.train(epochs=epochs)
    return [(record.train_loss, record.train_accuracy) for record in history.records]


def assert_same_parameters(reference, engine):
    reference_state = reference.state_dict()
    engine_state = engine.state_dict()
    assert set(reference_state) == set(engine_state)
    for segment, params in reference_state.items():
        for name, value in params.items():
            np.testing.assert_allclose(
                engine_state[segment][name], value, rtol=1e-9, atol=1e-12,
                err_msg=f"{segment}/{name} diverged",
            )


def assert_same_curves(reference, engine):
    assert len(reference) == len(engine)
    for (ref_loss, ref_acc), (eng_loss, eng_acc) in zip(reference, engine):
        assert eng_loss == pytest.approx(ref_loss, rel=1e-9)
        assert eng_acc == pytest.approx(ref_acc, rel=1e-9)


EPOCHS = 2


@pytest.mark.parametrize("server_batching", [True, False],
                         ids=["batched", "per-message"])
class TestSynchronousEquivalence:
    def test_histories_and_parameters_match(self, tiny_split_spec, tiny_parts,
                                            normalize, server_batching):
        reference = make_trainer(tiny_split_spec, tiny_parts, normalize,
                                 server_batching=server_batching)
        engine = make_trainer(tiny_split_spec, tiny_parts, normalize,
                              server_batching=server_batching)
        ref = reference_curves(reference, EPOCHS)
        eng = engine_curves(engine, EPOCHS)
        assert_same_curves(ref, eng)
        assert_same_parameters(reference, engine)
        # The engine's round barrier must advance the clock exactly like
        # the old loop's max-gradient-arrival bookkeeping.
        assert engine.simulated_time == pytest.approx(reference._clock, rel=1e-9)


@pytest.mark.parametrize("server_batching,max_in_flight", [(True, 2), (False, 1)],
                         ids=["batched-pipelined", "per-message-lockstep"])
class TestAsynchronousEquivalence:
    def test_histories_and_parameters_match(self, tiny_split_spec, tiny_parts,
                                            normalize, server_batching, max_in_flight):
        overrides = dict(mode="asynchronous", server_batching=server_batching,
                         max_in_flight=max_in_flight, server_step_time_s=0.0021)
        reference = make_trainer(tiny_split_spec, tiny_parts, normalize, **overrides)
        engine = make_trainer(tiny_split_spec, tiny_parts, normalize, **overrides)
        ref = reference_curves(reference, EPOCHS)
        eng = engine_curves(engine, EPOCHS)
        assert_same_curves(ref, eng)
        assert_same_parameters(reference, engine)
        assert engine.simulated_time == pytest.approx(reference._clock, rel=1e-9)


class TestTimeBudgetEquivalence:
    def test_budgeted_run_matches(self, tiny_split_spec, tiny_parts, normalize):
        overrides = dict(mode="asynchronous", server_batching=False,
                         max_in_flight=1, server_step_time_s=0.0021)
        reference = make_trainer(tiny_split_spec, tiny_parts, normalize, **overrides)
        engine = make_trainer(tiny_split_spec, tiny_parts, normalize, **overrides)

        def cycling(trainer, end_system):
            epoch = 0
            while True:
                for batch in end_system.batches(epoch):
                    yield batch
                epoch += 1

        budget_s = 0.15
        iterators = {
            end_system.system_id: cycling(reference, end_system)
            for end_system in reference.end_systems
        }
        ref_tracker = reference_asynchronous(reference, iterators, stop_time=budget_s)
        history = engine.train_time_budget(budget_s)

        ref_averages = ref_tracker.averages()
        record = history.records[0]
        assert record.train_loss == pytest.approx(ref_averages["loss"], rel=1e-9)
        assert record.train_accuracy == pytest.approx(ref_averages["accuracy"], rel=1e-9)
        assert engine.simulated_time == pytest.approx(reference._clock, rel=1e-9)
        # The engine additionally guarantees that batches cut off by the
        # budget are discarded client-side (the old loop leaked them).
        assert all(es.pending_batches == 0 for es in engine.end_systems)
