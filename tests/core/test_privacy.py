"""Tests for the Fig.-4 privacy analysis (activation imaging, attacks, metrics)."""

import numpy as np
import pytest

from repro.core.privacy import (
    LinearReconstructionAttack,
    activation_to_images,
    leakage_report,
    normalized_mse,
    pixel_correlation,
    psnr,
    ssim,
    upsample_nearest,
)
from repro.core.split import SplitSpec


class TestRendering:
    def test_activation_to_images_shape(self, rng):
        rendered = activation_to_images(rng.random((5, 8, 6, 6)))
        assert rendered.shape == (5, 6, 6)

    def test_normalization_to_unit_range(self, rng):
        rendered = activation_to_images(rng.random((3, 4, 5, 5)) * 100 - 50)
        assert rendered.min() >= 0.0 and rendered.max() <= 1.0

    def test_without_normalization_is_channel_mean(self, rng):
        activations = rng.random((2, 3, 4, 4))
        rendered = activation_to_images(activations, normalize=False)
        np.testing.assert_allclose(rendered, activations.mean(axis=1))

    def test_rejects_wrong_rank(self, rng):
        with pytest.raises(ValueError):
            activation_to_images(rng.random((3, 4, 4)))

    def test_upsample_nearest(self):
        small = np.arange(4.0).reshape(1, 2, 2)
        big = upsample_nearest(small, 4)
        assert big.shape == (1, 4, 4)
        np.testing.assert_allclose(big[0, :2, :2], 0.0)
        with pytest.raises(ValueError):
            upsample_nearest(small, 5)


class TestMetrics:
    def test_normalized_mse_zero_for_identical(self, rng):
        images = rng.random((4, 8, 8))
        assert normalized_mse(images, images) == 0.0

    def test_normalized_mse_about_one_for_mean_predictor(self, rng):
        images = rng.random((100, 8, 8))
        prediction = np.full_like(images, images.mean())
        assert normalized_mse(images, prediction) == pytest.approx(1.0, rel=1e-6)

    def test_psnr_infinite_for_identical_and_ordered(self, rng):
        images = rng.random((4, 8, 8))
        assert psnr(images, images) == float("inf")
        slightly_off = images + 0.01
        very_off = images + 0.3
        assert psnr(images, np.clip(slightly_off, 0, 1)) > psnr(images, np.clip(very_off, 0, 1))

    def test_ssim_bounds_and_identity(self, rng):
        images = rng.random((3, 16, 16))
        assert ssim(images, images) == pytest.approx(1.0)
        noise = rng.random((3, 16, 16))
        assert ssim(images, noise) < 0.9

    def test_ssim_accepts_single_image(self, rng):
        image = rng.random((16, 16))
        assert ssim(image, image) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            normalized_mse(rng.random((2, 4)), rng.random((2, 5)))
        with pytest.raises(ValueError):
            ssim(rng.random((4, 4)), rng.random((5, 5)))

    def test_pixel_correlation_perfect_for_grayscale_copy(self, rng):
        images = rng.random((5, 3, 8, 8))
        rendered = images.mean(axis=1)
        assert pixel_correlation(rendered, images) == pytest.approx(1.0)

    def test_pixel_correlation_low_for_noise(self, rng):
        images = rng.random((20, 3, 16, 16))
        noise = rng.random((20, 16, 16))
        assert pixel_correlation(noise, images) < 0.4

    def test_pixel_correlation_upsamples_small_renderings(self, rng):
        images = rng.random((4, 3, 8, 8))
        rendered = rng.random((4, 4, 4))
        value = pixel_correlation(rendered, images)
        assert 0.0 <= value <= 1.0


class TestReconstructionAttack:
    def test_fit_and_reconstruct_shapes(self, rng):
        activations = rng.random((50, 4, 4, 4))
        images = rng.random((50, 3, 8, 8))
        attack = LinearReconstructionAttack(ridge=1e-3).fit(activations, images)
        assert attack.is_fitted
        reconstructions = attack.reconstruct(activations[:5])
        assert reconstructions.shape == (5, 3, 8, 8)

    def test_identity_activations_reconstruct_well(self, rng):
        """If the 'activation' is the image itself, a linear inverter is near-perfect.

        The attack fits a linear map, so it needs more attack samples than
        activation dimensions (here 4x) for the identity to be recoverable.
        """
        images = rng.random((250, 3, 4, 4))
        attack = LinearReconstructionAttack(ridge=1e-8).fit(images[:200], images[:200])
        metrics = attack.evaluate(images[200:], images[200:])
        assert metrics["reconstruction_nmse"] < 0.05
        assert metrics["reconstruction_ssim"] > 0.9

    def test_uninformative_activations_reconstruct_poorly(self, rng):
        images = rng.random((80, 3, 6, 6))
        noise = rng.random((80, 10))
        attack = LinearReconstructionAttack(ridge=1e-2).fit(noise[:60], images[:60])
        metrics = attack.evaluate(noise[60:], images[60:])
        assert metrics["reconstruction_nmse"] > 0.5

    def test_unfitted_attack_raises(self, rng):
        with pytest.raises(RuntimeError):
            LinearReconstructionAttack().reconstruct(rng.random((2, 4)))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            LinearReconstructionAttack(ridge=-1.0)
        with pytest.raises(ValueError):
            LinearReconstructionAttack().fit(rng.random((3, 4)), rng.random((4, 4)))
        with pytest.raises(ValueError):
            LinearReconstructionAttack().fit(rng.random((1, 4)), rng.random((1, 4)))


class TestLeakageReport:
    def test_report_covers_input_and_every_layer(self, tiny_architecture, rng):
        spec = SplitSpec(tiny_architecture, client_blocks=1)
        client = spec.build_client_segment(seed=0)
        images = rng.random((40, 3, 8, 8))
        report = leakage_report(client, images)
        layers = [entry.layer for entry in report]
        assert layers == ["input", "L1_conv", "L1_relu", "L1_pool"]
        assert all(entry.activation_shape for entry in report)

    def test_pooling_leaks_less_than_input(self, tiny_architecture, rng):
        """The Fig.-4 claim: the post-pool activation hides more than the raw input."""
        spec = SplitSpec(tiny_architecture, client_blocks=1)
        client = spec.build_client_segment(seed=0)
        images = rng.random((60, 3, 8, 8))
        report = {entry.layer: entry for entry in leakage_report(client, images)}
        assert report["L1_pool"].reconstruction_nmse >= report["input"].reconstruction_nmse
        assert report["L1_pool"].correlation <= report["input"].correlation + 1e-9

    def test_as_dict(self, tiny_architecture, rng):
        spec = SplitSpec(tiny_architecture, client_blocks=1)
        client = spec.build_client_segment(seed=0)
        report = leakage_report(client, rng.random((20, 3, 8, 8)))
        entry = report[0].as_dict()
        assert entry["layer"] == "input"
        assert "reconstruction_psnr" in entry

    def test_validation(self, tiny_architecture, rng):
        spec = SplitSpec(tiny_architecture, client_blocks=1)
        client = spec.build_client_segment(seed=0)
        with pytest.raises(ValueError):
            leakage_report(client, rng.random((20, 3, 8)))
        with pytest.raises(ValueError):
            leakage_report(client, rng.random((20, 3, 8, 8)), attack_fraction=0.0)
