"""Tests for the CNN architecture factory and the split specification."""

import numpy as np
import pytest

from repro.core.models import (
    CNNArchitecture,
    build_paper_cnn,
    mnist_cnn_architecture,
    paper_cnn_architecture,
    tiny_cnn_architecture,
)
from repro.core.split import SplitSpec
from repro.nn import Tensor


class TestCNNArchitecture:
    def test_paper_architecture_matches_figure3(self):
        architecture = paper_cnn_architecture()
        assert architecture.num_blocks == 5
        assert architecture.filters == [16, 32, 64, 128, 256]
        assert architecture.dense_units == 512
        assert architecture.num_classes == 10
        assert architecture.image_size == 32
        # 32 / 2^5 = 1, so the flattened size equals the last block's filters.
        assert architecture.flattened_size == 256

    def test_paper_model_layer_names(self):
        model = paper_cnn_architecture().build(seed=0)
        names = model.layer_names
        assert names[0] == "L1_conv"
        assert names[-1] == "output"
        assert "L5_pool" in names
        assert "dense1" in names
        # 5 blocks x 3 layers + flatten + dense1 + relu + output
        assert len(names) == 5 * 3 + 4

    def test_paper_model_forward_shape(self):
        model = build_paper_cnn(seed=0)
        out = model(Tensor(np.random.default_rng(0).random((2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_block_output_shapes(self):
        architecture = paper_cnn_architecture()
        assert architecture.block_output_shape(0) == (3, 32, 32)
        assert architecture.block_output_shape(1) == (16, 16, 16)
        assert architecture.block_output_shape(5) == (256, 1, 1)
        with pytest.raises(ValueError):
            architecture.block_output_shape(6)

    def test_boundary_layer_names(self):
        architecture = paper_cnn_architecture()
        assert architecture.boundary_layer_name(0) is None
        assert architecture.boundary_layer_name(2) == "L2_pool"
        with pytest.raises(ValueError):
            architecture.boundary_layer_name(6)

    def test_tiny_architecture_forward(self, tiny_architecture):
        model = tiny_architecture.build(seed=1)
        out = model(Tensor(np.random.default_rng(0).random((3, 3, 8, 8))))
        assert out.shape == (3, 10)

    def test_mnist_architecture_single_channel(self):
        architecture = mnist_cnn_architecture()
        assert architecture.in_channels == 1
        model = architecture.build(seed=0)
        out = model(Tensor(np.random.default_rng(0).random((2, 1, 32, 32))))
        assert out.shape == (2, 10)

    def test_invalid_configurations(self):
        with pytest.raises(ValueError, match="divisible"):
            CNNArchitecture(image_size=20, num_blocks=5)
        with pytest.raises(ValueError):
            CNNArchitecture(num_blocks=0)
        with pytest.raises(ValueError):
            CNNArchitecture(num_classes=1)
        with pytest.raises(ValueError):
            CNNArchitecture(base_filters=0)

    def test_build_deterministic_given_seed(self):
        a = tiny_cnn_architecture().build(seed=5)
        b = tiny_cnn_architecture().build(seed=5)
        for (name_a, param_a), (_, param_b) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(param_a.data, param_b.data, err_msg=name_a)

    def test_describe_mentions_blocks(self):
        text = paper_cnn_architecture().describe()
        assert "L1[16f]" in text and "Dense(512)" in text


class TestSplitSpec:
    def test_labels_match_table1_rows(self, tiny_architecture):
        assert SplitSpec(tiny_architecture, 0).label.startswith("Nothing")
        assert SplitSpec(tiny_architecture, 1).label == "L1"
        assert SplitSpec(tiny_architecture, 2).label == "L1, L2"

    def test_is_private_flag(self, tiny_architecture):
        assert not SplitSpec(tiny_architecture, 0).is_private
        assert SplitSpec(tiny_architecture, 1).is_private

    def test_invalid_cut_rejected(self, tiny_architecture):
        with pytest.raises(ValueError):
            SplitSpec(tiny_architecture, -1)
        with pytest.raises(ValueError):
            SplitSpec(tiny_architecture, tiny_architecture.num_blocks + 1)

    def test_smashed_shape_and_size(self, tiny_architecture):
        spec = SplitSpec(tiny_architecture, 1)
        assert spec.smashed_shape == tiny_architecture.block_output_shape(1)
        channels, height, width = spec.smashed_shape
        assert spec.smashed_size(batch_size=4) == 4 * channels * height * width

    def test_client_segment_layers(self, tiny_architecture):
        spec = SplitSpec(tiny_architecture, 1)
        client = spec.build_client_segment(seed=0)
        assert client.layer_names == ["L1_conv", "L1_relu", "L1_pool"]
        empty_client = SplitSpec(tiny_architecture, 0).build_client_segment(seed=0)
        assert len(empty_client) == 0

    def test_server_segment_layers(self, tiny_architecture):
        spec = SplitSpec(tiny_architecture, 1)
        server = spec.build_server_segment(seed=0)
        assert server.layer_names[0] == "L2_conv"
        assert server.layer_names[-1] == "output"

    def test_client_plus_server_covers_whole_model(self, tiny_architecture):
        full = tiny_architecture.build(seed=0)
        for cut in range(tiny_architecture.num_blocks + 1):
            spec = SplitSpec(tiny_architecture, cut)
            client = spec.build_client_segment(seed=0)
            server = spec.build_server_segment(seed=0)
            assert client.layer_names + server.layer_names == full.layer_names

    def test_split_model_composition_preserves_output(self, tiny_architecture, rng):
        full = tiny_architecture.build(seed=3)
        spec = SplitSpec(tiny_architecture, 2)
        head, tail = spec.split_model(full)
        x = Tensor(rng.random((2, 3, 8, 8)))
        np.testing.assert_allclose(tail(head(x)).data, full(x).data)

    def test_cut_zero_client_is_identity(self, tiny_architecture, rng):
        spec = SplitSpec(tiny_architecture, 0)
        client = spec.build_client_segment(seed=0)
        x = Tensor(rng.random((2, 3, 8, 8)))
        np.testing.assert_allclose(client(x).data, x.data)

    def test_str_representation(self, tiny_architecture):
        assert "client_blocks=1" in str(SplitSpec(tiny_architecture, 1))
