"""Tests for the SpatioTemporalTrainer (synchronous and asynchronous modes)."""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.split import SplitSpec
from repro.core.trainer import SpatioTemporalTrainer
from repro.simnet.topology import star_topology


def make_trainer(spec, parts, normalize, topology=None, **config_overrides):
    config = TrainingConfig.fast_debug(**config_overrides)
    return SpatioTemporalTrainer(spec, parts, config, topology=topology,
                                 train_transform=normalize)


class TestConstruction:
    def test_requires_at_least_one_dataset(self, tiny_split_spec):
        with pytest.raises(ValueError):
            SpatioTemporalTrainer(tiny_split_spec, [], TrainingConfig.fast_debug())

    def test_topology_size_must_match(self, tiny_split_spec, tiny_parts, normalize):
        topology = star_topology(5)
        with pytest.raises(ValueError, match="end-systems"):
            make_trainer(tiny_split_spec, tiny_parts, normalize, topology=topology)

    def test_default_topology_built(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        assert len(trainer.topology.end_systems) == len(tiny_parts)
        assert len(trainer.end_systems) == len(tiny_parts)

    def test_end_systems_have_different_initial_weights(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        first = trainer.end_systems[0].model["L1_conv"].weight.data
        second = trainer.end_systems[1].model["L1_conv"].weight.data
        assert not np.allclose(first, second)


class TestSynchronousTraining:
    def test_single_epoch_runs_and_reports(self, tiny_split_spec, tiny_parts, tiny_splits, normalize):
        _, test = tiny_splits
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        history = trainer.train(test_dataset=test)
        assert len(history) == 1
        record = history.records[0]
        assert record.train_loss > 0
        assert 0.0 <= record.train_accuracy <= 1.0
        assert record.test_accuracy is not None
        assert record.simulated_time_s > 0
        assert history.traffic["uplink_messages"] > 0
        assert history.traffic["downlink_messages"] == history.traffic["uplink_messages"]

    def test_every_sample_processed_each_epoch(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        trainer.train()
        total = sum(len(part) for part in tiny_parts)
        assert trainer.server.samples_processed == total

    def test_training_reduces_loss(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, epochs=4, batch_size=16)
        history = trainer.train()
        losses = history.loss_curve()
        assert losses[-1] < losses[0]

    def test_client_and_server_parameters_change(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        client_before = trainer.end_systems[0].model["L1_conv"].weight.data.copy()
        server_before = trainer.server.model["output"].weight.data.copy()
        trainer.train()
        assert not np.allclose(trainer.end_systems[0].model["L1_conv"].weight.data, client_before)
        assert not np.allclose(trainer.server.model["output"].weight.data, server_before)

    def test_simulated_time_scales_with_latency(self, tiny_split_spec, tiny_parts, normalize):
        fast = make_trainer(tiny_split_spec, tiny_parts, normalize,
                            seed=0)
        slow_topology = star_topology(len(tiny_parts), latencies_s=[0.2] * len(tiny_parts))
        slow = make_trainer(tiny_split_spec, tiny_parts, normalize, topology=slow_topology, seed=0)
        fast_history = fast.train()
        slow_history = slow.train()
        assert slow_history.total_simulated_time > fast_history.total_simulated_time

    def test_cut_zero_matches_centralized_structure(self, tiny_architecture, tiny_parts, normalize):
        spec = SplitSpec(tiny_architecture, client_blocks=0)
        trainer = make_trainer(spec, tiny_parts, normalize)
        history = trainer.train()
        assert history.final_train_accuracy >= 0.0
        assert all(not es.has_trainable_parameters for es in trainer.end_systems)

    def test_per_system_update_counts(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        trainer.train()
        counts = trainer.per_system_update_counts()
        assert set(counts) == {0, 1}
        assert all(count > 0 for count in counts.values())

    def test_dropped_uplink_messages_are_tolerated(self, tiny_split_spec, tiny_parts, normalize):
        lossy = star_topology(len(tiny_parts), drop_probability=0.3, seed=0)
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, topology=lossy)
        history = trainer.train()
        assert history.traffic["dropped_messages"] > 0
        # No pending activations should leak after the epoch.
        assert all(es.pending_batches == 0 for es in trainer.end_systems)

    def test_final_epoch_evaluation_is_reused(self, tiny_split_spec, tiny_parts,
                                              tiny_splits, normalize):
        """Regression: train() used to re-evaluate the test set after the
        final epoch even though that epoch had just evaluated it."""
        _, test = tiny_splits
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, epochs=2)
        calls = []
        original_evaluate = trainer.evaluate

        def counting_evaluate(*args, **kwargs):
            calls.append(1)
            return original_evaluate(*args, **kwargs)

        trainer.evaluate = counting_evaluate
        history = trainer.train(test_dataset=test)
        assert len(calls) == 2  # one per epoch, none extra at the end
        # per_system_accuracy is carried from the final epoch's evaluation.
        assert history.per_system_accuracy
        assert np.mean(list(history.per_system_accuracy.values())) == pytest.approx(
            history.records[-1].test_accuracy
        )

    def test_queue_stats_reports_processed_per_system(self, tiny_split_spec, tiny_parts,
                                                      normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        history = trainer.train()
        per_system = history.queue_stats["processed_per_system"]
        assert set(per_system) == {0, 1}
        assert sum(per_system.values()) == trainer.server.samples_processed

    def test_evaluate_reports_per_system(self, tiny_split_spec, tiny_parts, tiny_splits, normalize):
        _, test = tiny_splits
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        trainer.train()
        evaluation = trainer.evaluate(test)
        assert set(evaluation["per_system_accuracy"]) == {0, 1}
        assert evaluation["accuracy"] == pytest.approx(
            np.mean(list(evaluation["per_system_accuracy"].values()))
        )

    def test_state_dict_roundtrip(self, tiny_split_spec, tiny_parts, tiny_splits, normalize):
        _, test = tiny_splits
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        trainer.train()
        state = trainer.state_dict()
        clone = make_trainer(tiny_split_spec, tiny_parts, normalize)
        clone.load_state_dict(state)
        original = trainer.evaluate(test)["accuracy"]
        restored = clone.evaluate(test)["accuracy"]
        assert restored == pytest.approx(original)


class TestAsynchronousTraining:
    def test_async_epoch_processes_every_sample(self, tiny_split_spec, tiny_parts, normalize):
        topology = star_topology(len(tiny_parts), latencies_s=[0.001, 0.1])
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, topology=topology,
                               mode="asynchronous", max_in_flight=2,
                               server_step_time_s=0.001)
        history = trainer.train()
        total = sum(len(part) for part in tiny_parts)
        assert trainer.server.samples_processed == total
        assert history.records[0].simulated_time_s > 0

    def test_async_no_pending_batches_leak(self, tiny_split_spec, tiny_parts, normalize):
        topology = star_topology(len(tiny_parts), latencies_s=[0.001, 0.05])
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, topology=topology,
                               mode="asynchronous", max_in_flight=3)
        trainer.train()
        assert all(es.pending_batches == 0 for es in trainer.end_systems)

    def test_time_budget_requires_async_mode(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        with pytest.raises(ValueError, match="asynchronous"):
            trainer.train_time_budget(1.0)

    def test_time_budget_validation(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, mode="asynchronous")
        with pytest.raises(ValueError):
            trainer.train_time_budget(0.0)

    def test_time_budget_respects_clock(self, tiny_split_spec, tiny_parts, tiny_splits, normalize):
        _, test = tiny_splits
        topology = star_topology(len(tiny_parts), latencies_s=[0.002, 0.05])
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, topology=topology,
                               mode="asynchronous", max_in_flight=1,
                               server_step_time_s=0.01)
        history = trainer.train_time_budget(0.5, test_dataset=test)
        assert trainer.simulated_time <= 0.5 + 0.25  # small overshoot from in-flight work
        assert history.records[0].test_accuracy is not None
        assert "processed_per_system" in history.queue_stats

    def test_time_budget_favours_low_latency_clients(self, tiny_split_spec, tiny_parts, normalize):
        """Within a fixed window the nearby end-system completes more updates
        — the arrival bias the paper's queue discussion warns about."""
        topology = star_topology(len(tiny_parts), latencies_s=[0.002, 0.2])
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, topology=topology,
                               mode="asynchronous", max_in_flight=1,
                               server_step_time_s=0.001)
        trainer.train_time_budget(1.0)
        counts = trainer.per_system_update_counts()
        assert counts[0] > counts[1]


class TestConfigValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(client_lr=0.0)
        with pytest.raises(ValueError):
            TrainingConfig(mode="sideways")
        with pytest.raises(ValueError):
            TrainingConfig(max_in_flight=0)
        with pytest.raises(ValueError):
            TrainingConfig(server_step_time_s=-1.0)
        with pytest.raises(ValueError):
            TrainingConfig(max_queue_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(queue_backpressure="explode")

    def test_queue_knobs_accepted_and_serialized(self):
        config = TrainingConfig(max_queue_size=8, queue_backpressure="block")
        payload = config.to_dict()
        assert payload["max_queue_size"] == 8
        assert payload["queue_backpressure"] == "block"

    def test_to_dict_and_kwargs(self):
        config = TrainingConfig(client_lr=0.01, server_lr=0.02)
        assert config.client_optimizer_kwargs == {"lr": 0.01}
        assert config.server_optimizer_kwargs == {"lr": 0.02}
        assert config.to_dict()["epochs"] == config.epochs

    def test_fast_debug_factory(self):
        config = TrainingConfig.fast_debug(epochs=2)
        assert config.epochs == 2
        assert config.batch_size == 8

    def test_reliability_knobs_rejected(self):
        with pytest.raises(ValueError, match="retry_timeout_s"):
            TrainingConfig(retry_timeout_s=0.0)
        with pytest.raises(ValueError, match="retry_backoff"):
            TrainingConfig(retry_backoff=0.5)
        with pytest.raises(ValueError, match="retry_max"):
            TrainingConfig(retry_max=-1)
        with pytest.raises(ValueError, match="retry_jitter"):
            TrainingConfig(retry_jitter=1.0)
        with pytest.raises(ValueError, match="retry_timeout_cap_s"):
            TrainingConfig(retry_timeout_s=0.05, retry_timeout_cap_s=0.01)
        with pytest.raises(ValueError, match="sync_quorum"):
            TrainingConfig(sync_quorum=0.0)
        with pytest.raises(ValueError, match="sync_quorum"):
            TrainingConfig(sync_quorum=1.5)
        with pytest.raises(ValueError, match="sync_timeout_s"):
            TrainingConfig(sync_timeout_s=0.0)

    def test_chaos_knobs_rejected(self):
        with pytest.raises(ValueError, match="chaos_corrupt_probability"):
            TrainingConfig(chaos_corrupt_probability=1.5)
        with pytest.raises(ValueError, match="chaos_duplicate_probability"):
            TrainingConfig(chaos_duplicate_probability=-0.1)
        with pytest.raises(ValueError, match="chaos_reorder_probability"):
            TrainingConfig(chaos_reorder_probability=2.0)
        with pytest.raises(ValueError, match="chaos_reorder_delay_s"):
            TrainingConfig(chaos_reorder_delay_s=-1.0)
        with pytest.raises(ValueError, match="chaos_duplicate_delay_s"):
            TrainingConfig(chaos_duplicate_delay_s=-0.5)
        with pytest.raises(ValueError, match="chaos_flap_mtbf_s"):
            TrainingConfig(chaos_flap_mtbf_s=0.0)
        with pytest.raises(ValueError, match="chaos_flap_mttr_s"):
            TrainingConfig(chaos_flap_mttr_s=0.0)
        with pytest.raises(ValueError, match="chaos_leave_mtbf_s"):
            TrainingConfig(chaos_leave_mtbf_s=-2.0)
        with pytest.raises(ValueError, match="chaos_leave_mttr_s"):
            TrainingConfig(chaos_leave_mttr_s=0.0)
        # Scripted and stochastic chaos are mutually exclusive.
        with pytest.raises(ValueError, match="mutually exclusive"):
            TrainingConfig(chaos_schedule=[("flap", 0.0, 0.1, 0)],
                           chaos_flap_mtbf_s=1.0)
        # Malformed schedule entries fail fast at config time.
        with pytest.raises(ValueError, match="chaos_schedule"):
            TrainingConfig(chaos_schedule=[("meteor", 0.0, 0.1, 0)])
        with pytest.raises(ValueError, match="start time"):
            TrainingConfig(chaos_schedule=[("flap", -1.0, 0.1, 0)])

    def test_reliability_and_chaos_knobs_accepted_and_serialized(self):
        config = TrainingConfig(
            reliable_delivery=True,
            retry_timeout_s=0.02,
            retry_backoff=1.5,
            retry_max=4,
            retry_jitter=0.2,
            retry_timeout_cap_s=0.5,
            sync_quorum=0.75,
            sync_timeout_s=0.1,
            chaos_corrupt_probability=0.01,
            chaos_duplicate_probability=0.02,
            chaos_reorder_probability=0.03,
            chaos_schedule=[("flap", 0.1, 0.05, 0), ("partition", 0.2, 0.1, 0, 1)],
        )
        assert config.reliable_delivery
        assert config.chaos_enabled
        assert config.message_chaos_enabled
        payload = config.to_dict()
        assert payload["retry_max"] == 4
        assert payload["sync_quorum"] == 0.75
        assert payload["chaos_schedule"] == [
            ("flap", 0.1, 0.05, 0),
            ("partition", 0.2, 0.1, 0, 1),
        ]
        # The knobs default to an inert fault-free plane.
        quiet = TrainingConfig()
        assert not quiet.reliable_delivery
        assert not quiet.chaos_enabled
        assert not quiet.message_chaos_enabled
