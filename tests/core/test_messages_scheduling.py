"""Tests for the activation/gradient messages and the parameter-scheduling queue."""

import numpy as np
import pytest

from repro.core.messages import ActivationMessage, GradientMessage
from repro.core.scheduling import (
    FIFOPolicy,
    ParameterQueue,
    RoundRobinPolicy,
    StalenessPriorityPolicy,
    WeightedFairPolicy,
    get_policy,
)


def make_message(system_id=0, batch_id=0, batch_size=4, created=0.0, arrival=0.0):
    return ActivationMessage(
        end_system_id=system_id,
        batch_id=batch_id,
        activations=np.zeros((batch_size, 2, 2, 2)),
        labels=np.zeros(batch_size, dtype=np.int64),
        created_at=created,
        arrival_time=arrival,
    )


class TestMessages:
    def test_activation_message_size_and_batch(self):
        message = make_message(batch_size=3)
        assert message.batch_size == 3
        assert message.size_bytes == 3 * 8 * 8 + 3 * 8

    def test_activation_message_label_mismatch(self):
        with pytest.raises(ValueError, match="label count"):
            ActivationMessage(0, 0, np.zeros((4, 2)), np.zeros(3))

    def test_queueing_delay_and_staleness(self):
        message = make_message(created=1.0, arrival=1.5)
        assert message.queueing_delay == pytest.approx(0.5)
        assert message.staleness(3.0) == pytest.approx(2.0)

    def test_sequence_numbers_increase(self):
        first = make_message()
        second = make_message()
        assert second.sequence > first.sequence

    def test_gradient_message_size(self):
        message = GradientMessage(0, 0, np.zeros((4, 8)), loss=1.0)
        assert message.size_bytes == 4 * 8 * 8


class TestPolicies:
    def test_fifo_orders_by_arrival(self):
        pending = [make_message(0, 0, arrival=3.0), make_message(1, 1, arrival=1.0)]
        assert FIFOPolicy().select(pending, now=5.0) == 1

    def test_fifo_ties_broken_by_sequence(self):
        first = make_message(0, 0, arrival=1.0)
        second = make_message(1, 1, arrival=1.0)
        assert FIFOPolicy().select([second, first], now=5.0) == 1

    def test_round_robin_alternates_between_systems(self):
        policy = RoundRobinPolicy()
        pending = [make_message(0, i) for i in range(3)] + [make_message(1, 10 + i) for i in range(3)]
        served = []
        for _ in range(4):
            index = policy.select(pending, now=0.0)
            message = pending.pop(index)
            policy.notify_processed(message)
            served.append(message.end_system_id)
        assert served == [0, 1, 0, 1]

    def test_round_robin_skips_empty_systems(self):
        policy = RoundRobinPolicy()
        policy.notify_processed(make_message(0, 0))
        pending = [make_message(0, 1)]
        assert pending[policy.select(pending, now=0.0)].end_system_id == 0

    def test_round_robin_continues_cycle_when_last_served_absent(self):
        """Regression: when the last-served system has nothing pending the
        cycle must continue from the next id after it, not restart at the
        lowest id (which hands low-numbered systems extra turns)."""
        policy = RoundRobinPolicy()
        policy.notify_processed(make_message(1, 0))
        pending = [make_message(0, 1), make_message(2, 2)]
        assert pending[policy.select(pending, now=0.0)].end_system_id == 2

    def test_round_robin_wraps_after_highest_id(self):
        policy = RoundRobinPolicy()
        policy.notify_processed(make_message(5, 0))
        pending = [make_message(0, 1), make_message(3, 2)]
        assert pending[policy.select(pending, now=0.0)].end_system_id == 0

    def test_staleness_policy_prefers_oldest_creation(self):
        fresh = make_message(0, 0, created=5.0, arrival=5.1)
        stale = make_message(1, 1, created=1.0, arrival=6.0)
        assert StalenessPriorityPolicy().select([fresh, stale], now=7.0) == 1

    def test_weighted_fair_prefers_least_served_system(self):
        policy = WeightedFairPolicy()
        policy.notify_processed(make_message(0, 0, batch_size=100))
        pending = [make_message(0, 1, arrival=0.0), make_message(1, 2, arrival=10.0)]
        assert pending[policy.select(pending, now=20.0)].end_system_id == 1

    def test_get_policy_factory(self):
        assert isinstance(get_policy("fifo"), FIFOPolicy)
        assert isinstance(get_policy("round_robin"), RoundRobinPolicy)
        assert isinstance(get_policy("staleness"), StalenessPriorityPolicy)
        assert isinstance(get_policy("weighted_fair"), WeightedFairPolicy)
        with pytest.raises(KeyError, match="unknown policy"):
            get_policy("bogus")


class TestParameterQueue:
    def test_push_pop_fifo(self):
        queue = ParameterQueue()
        queue.push(make_message(0, 0, arrival=2.0))
        queue.push(make_message(1, 1, arrival=1.0))
        assert len(queue) == 2
        assert queue.pop().batch_id == 1
        assert queue.pop().batch_id == 0
        assert not queue

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            ParameterQueue().pop()

    def test_max_size_drops(self):
        queue = ParameterQueue(max_size=1)
        assert queue.push(make_message(0, 0))
        assert not queue.push(make_message(0, 1))
        assert queue.dropped == 1

    def test_drain_returns_policy_order(self):
        queue = ParameterQueue(policy=StalenessPriorityPolicy())
        queue.push(make_message(0, 0, created=5.0))
        queue.push(make_message(1, 1, created=1.0))
        queue.push(make_message(2, 2, created=3.0))
        drained = queue.drain(now=10.0)
        assert [message.batch_id for message in drained] == [1, 2, 0]

    def test_waiting_time_statistics(self):
        queue = ParameterQueue()
        queue.push(make_message(0, 0, arrival=1.0))
        queue.pop(now=4.0)
        assert queue.mean_waiting_time == pytest.approx(3.0)

    def test_fairness_index_balanced_vs_skewed(self):
        balanced = ParameterQueue()
        for system in (0, 1):
            balanced.push(make_message(system, system, batch_size=10))
        balanced.drain()
        assert balanced.fairness_index() == pytest.approx(1.0)

        skewed = ParameterQueue()
        skewed.push(make_message(0, 0, batch_size=100))
        skewed.push(make_message(1, 1, batch_size=1))
        skewed.drain()
        assert skewed.fairness_index() < 0.6

    def test_fairness_index_empty_queue_is_one(self):
        assert ParameterQueue().fairness_index() == 1.0

    def test_processed_per_system(self):
        queue = ParameterQueue()
        queue.push(make_message(0, 0, batch_size=4))
        queue.push(make_message(0, 1, batch_size=4))
        queue.push(make_message(1, 2, batch_size=4))
        queue.drain()
        assert queue.processed_per_system() == {0: 8, 1: 4}

    def test_reset_clears_everything(self):
        queue = ParameterQueue(policy=WeightedFairPolicy())
        queue.push(make_message(0, 0))
        queue.drain()
        queue.reset()
        assert len(queue) == 0
        assert queue.mean_waiting_time == 0.0
        assert queue.processed_per_system() == {}

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            ParameterQueue(max_size=0)

    def test_peek_arrivals(self):
        queue = ParameterQueue()
        queue.push(make_message(0, 0, arrival=1.5))
        assert queue.peek_arrivals() == [1.5]

    def test_free_slots(self):
        unbounded = ParameterQueue()
        assert unbounded.free_slots is None
        queue = ParameterQueue(max_size=2)
        assert queue.free_slots == 2
        queue.push(make_message(0, 0))
        assert queue.free_slots == 1

    def test_flush_discards_without_statistics(self):
        queue = ParameterQueue(max_size=2)
        queue.push(make_message(0, 0, batch_size=4))
        queue.push(make_message(1, 1, batch_size=4))
        flushed = queue.flush()
        assert [message.batch_id for message in flushed] == [0, 1]
        assert len(queue) == 0
        # Unlike drain(), flush() records nothing.
        assert queue.mean_waiting_time == 0.0
        assert queue.processed_per_system() == {}
