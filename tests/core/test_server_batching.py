"""Tests for batched server-side queue draining (CentralServer.process_batch).

The suite runs under the float64 precision policy (autouse fixture), so
the batched-vs-reference equivalence assertions below are tight: the
concatenated pass must reproduce the weighted-accumulation reference with
nothing beyond float64 round-off from BLAS blocking.
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.messages import ActivationMessage
from repro.core.server import CentralServer
from repro.core.trainer import SpatioTemporalTrainer
from repro.nn import Tensor
from repro.nn.losses import get_loss


def make_messages(spec, count, batch_sizes=None, seed=0):
    """Random activation messages shaped like the tiny split's boundary."""
    rng = np.random.default_rng(seed)
    shape = spec.architecture.block_output_shape(spec.client_blocks)
    batch_sizes = batch_sizes or [4] * count
    messages = []
    for index, batch in enumerate(batch_sizes[:count]):
        messages.append(
            ActivationMessage(
                end_system_id=index % 3,
                batch_id=index,
                activations=rng.random((batch, *shape)),
                labels=rng.integers(0, 10, batch),
                arrival_time=float(index),
            )
        )
    return messages


def reference_batch_step(server, messages):
    """Accumulate per-message gradients of the sample-weighted mean loss,
    then take one optimizer step — the semantics process_batch must match."""
    total = sum(message.batch_size for message in messages)
    server.model.train(True)
    server.optimizer.zero_grad()
    sum_loss = get_loss("cross_entropy", reduction="sum")
    boundary = []
    losses = []
    for message in messages:
        smashed = Tensor(message.activations, requires_grad=True)
        logits = server.model(smashed)
        loss = sum_loss(logits, message.labels)
        loss.backward(np.asarray(1.0 / total))
        boundary.append(smashed.grad.copy())
        losses.append(float(loss.item()) / message.batch_size)
    server.optimizer.step()
    return boundary, losses


class TestProcessBatchEquivalence:
    def test_matches_weighted_reference(self, tiny_split_spec):
        batched = CentralServer(tiny_split_spec, seed=7)
        reference = CentralServer(tiny_split_spec, seed=7)
        for a, b in zip(batched.model.parameters(), reference.model.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

        messages = make_messages(tiny_split_spec, count=3, batch_sizes=[4, 6, 2])
        replies = batched.process_batch(messages)
        ref_boundary, ref_losses = reference_batch_step(reference, messages)

        # Same boundary gradients per message...
        for reply, expected in zip(replies, ref_boundary):
            np.testing.assert_allclose(reply.gradient, expected, rtol=1e-9, atol=1e-12)
        # ...same per-message mean losses...
        for reply, expected in zip(replies, ref_losses):
            assert reply.loss == pytest.approx(expected, rel=1e-9)
        # ...and the same updated server weights.
        state_a = batched.state_dict()
        state_b = reference.state_dict()
        assert set(state_a) == set(state_b)
        for key in state_a:
            np.testing.assert_allclose(state_a[key], state_b[key], rtol=1e-9, atol=1e-12)

    def test_differs_from_sequential_multi_step(self, tiny_split_spec):
        """Sequential process() takes one optimizer step per message, so a
        multi-message drain is intentionally NOT equivalent to it."""
        batched = CentralServer(tiny_split_spec, seed=3)
        sequential = CentralServer(tiny_split_spec, seed=3)
        messages = make_messages(tiny_split_spec, count=3)
        batched.process_batch(messages)
        for message in messages:
            sequential.process(message)
        weights_a = batched.model.parameters()[0].data
        weights_b = sequential.model.parameters()[0].data
        assert not np.allclose(weights_a, weights_b)

    def test_single_message_batch_equals_process(self, tiny_split_spec):
        batched = CentralServer(tiny_split_spec, seed=5)
        sequential = CentralServer(tiny_split_spec, seed=5)
        message = make_messages(tiny_split_spec, count=1)[0]
        (batched_reply,) = batched.process_batch([message])
        sequential_reply = sequential.process(message)
        np.testing.assert_array_equal(batched_reply.gradient, sequential_reply.gradient)
        assert batched_reply.loss == pytest.approx(sequential_reply.loss)
        for key, value in batched.state_dict().items():
            np.testing.assert_array_equal(value, sequential.state_dict()[key])

    def test_empty_batch_is_a_no_op(self, tiny_split_spec):
        server = CentralServer(tiny_split_spec, seed=1)
        before = server.state_dict()
        assert server.process_batch([]) == []
        assert server.batches_processed == 0
        for key, value in server.state_dict().items():
            np.testing.assert_array_equal(value, before[key])


class TestProcessBatchAccounting:
    def test_counters_and_reply_alignment(self, tiny_split_spec):
        server = CentralServer(tiny_split_spec, seed=2)
        messages = make_messages(tiny_split_spec, count=4, batch_sizes=[2, 3, 4, 5])
        replies = server.process_batch(messages)
        assert server.batches_processed == 4
        assert server.samples_processed == 14
        assert [reply.batch_id for reply in replies] == [m.batch_id for m in messages]
        assert [reply.end_system_id for reply in replies] == [m.end_system_id for m in messages]
        for reply, message in zip(replies, messages):
            assert reply.gradient.shape == message.activations.shape
            assert np.isfinite(reply.loss)
            assert 0.0 <= reply.accuracy <= 1.0

    def test_process_pending_batch_respects_policy_order(self, tiny_split_spec):
        from repro.core.scheduling import StalenessPriorityPolicy

        server = CentralServer(tiny_split_spec, seed=2,
                               queue_policy=StalenessPriorityPolicy())
        messages = make_messages(tiny_split_spec, count=3)
        # Push newest-created first; the staleness policy must drain
        # oldest-created first regardless.
        for message, created in zip(messages, [5.0, 1.0, 3.0]):
            message.created_at = created
            server.receive(message)
        results = server.process_pending_batch(now=10.0)
        drained_created = [activation.created_at for activation, _ in results]
        assert drained_created == sorted(drained_created)
        assert not server.has_pending()


class TestTrainerIntegration:
    @pytest.mark.parametrize("mode", ["synchronous", "asynchronous"])
    @pytest.mark.parametrize("server_batching", [True, False])
    def test_full_epoch_processes_every_sample(self, tiny_split_spec, tiny_parts,
                                               normalize, mode, server_batching):
        config = TrainingConfig.fast_debug(
            mode=mode, server_batching=server_batching,
            max_in_flight=2 if mode == "asynchronous" else 1,
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts, config,
                                        train_transform=normalize)
        history = trainer.train()
        total = sum(len(part) for part in tiny_parts)
        assert trainer.server.samples_processed == total
        assert all(es.pending_batches == 0 for es in trainer.end_systems)
        assert np.isfinite(history.records[0].train_loss)

    def test_batched_sync_round_takes_one_server_step(self, tiny_split_spec,
                                                      tiny_parts, normalize):
        config = TrainingConfig.fast_debug(server_batching=True)
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts, config,
                                        train_transform=normalize)
        trainer.train()
        # Every message is still accounted for individually...
        expected_messages = sum(
            -(-len(part) // config.batch_size) for part in tiny_parts
        )
        assert trainer.server.batches_processed == expected_messages
        # ...but the optimizer stepped once per round, not once per message.
        rounds = max(-(-len(part) // config.batch_size) for part in tiny_parts)
        assert trainer.server.optimizer.step_count == rounds

    def test_flag_off_reproduces_per_message_steps(self, tiny_split_spec,
                                                   tiny_parts, normalize):
        config = TrainingConfig.fast_debug(server_batching=False)
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts, config,
                                        train_transform=normalize)
        trainer.train()
        assert trainer.server.optimizer.step_count == trainer.server.batches_processed
