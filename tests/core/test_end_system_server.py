"""Tests for the EndSystem and CentralServer halves of the split network."""

import numpy as np
import pytest

from repro.core.end_system import EndSystem
from repro.core.messages import GradientMessage
from repro.core.scheduling import StalenessPriorityPolicy
from repro.core.server import CentralServer
from repro.core.split import SplitSpec
from repro.data.loader import DataLoader


@pytest.fixture
def end_system(tiny_split_spec, tiny_parts):
    loader = DataLoader(tiny_parts[0], batch_size=8, shuffle=True, seed=0)
    return EndSystem(0, loader, tiny_split_spec, optimizer_kwargs={"lr": 1e-3}, seed=11)


@pytest.fixture
def server(tiny_split_spec):
    return CentralServer(tiny_split_spec, optimizer_kwargs={"lr": 1e-3}, seed=22)


class TestEndSystem:
    def test_properties(self, end_system, tiny_parts):
        assert end_system.node_name == "end_system_0"
        assert end_system.has_trainable_parameters
        assert end_system.num_local_samples == len(tiny_parts[0])
        assert end_system.pending_batches == 0

    def test_forward_batch_produces_detached_activations(self, end_system, rng):
        images = rng.random((8, 3, 8, 8))
        labels = rng.integers(0, 10, 8)
        message = end_system.forward_batch(images, labels, created_at=1.0)
        assert message.activations.shape == (8, *end_system.split_spec.smashed_shape)
        assert message.created_at == 1.0
        assert message.batch_size == 8
        assert end_system.pending_batches == 1
        # The message holds a copy, not the live tensor data.
        message.activations[:] = 0.0
        assert end_system._pending[message.batch_id].data.any()

    def test_batch_ids_increment(self, end_system, rng):
        images = rng.random((4, 3, 8, 8))
        labels = rng.integers(0, 10, 4)
        first = end_system.forward_batch(images, labels)
        second = end_system.forward_batch(images, labels)
        assert second.batch_id == first.batch_id + 1

    def test_apply_gradient_updates_parameters(self, end_system, rng):
        images = rng.random((8, 3, 8, 8))
        labels = rng.integers(0, 10, 8)
        message = end_system.forward_batch(images, labels)
        weights_before = end_system.model["L1_conv"].weight.data.copy()
        gradient = GradientMessage(0, message.batch_id, rng.random(message.activations.shape))
        end_system.apply_gradient(gradient)
        assert not np.allclose(end_system.model["L1_conv"].weight.data, weights_before)
        assert end_system.pending_batches == 0
        assert end_system.updates_applied == 1

    def test_apply_gradient_unknown_batch(self, end_system, rng):
        with pytest.raises(KeyError, match="pending batch"):
            end_system.apply_gradient(GradientMessage(0, 999, rng.random((1, 4, 4, 4))))

    def test_apply_gradient_wrong_system(self, end_system, rng):
        images = rng.random((4, 3, 8, 8))
        message = end_system.forward_batch(images, rng.integers(0, 10, 4))
        with pytest.raises(ValueError, match="end-system"):
            end_system.apply_gradient(
                GradientMessage(5, message.batch_id, rng.random(message.activations.shape))
            )

    def test_apply_gradient_shape_mismatch(self, end_system, rng):
        images = rng.random((4, 3, 8, 8))
        message = end_system.forward_batch(images, rng.integers(0, 10, 4))
        with pytest.raises(ValueError, match="shape"):
            end_system.apply_gradient(GradientMessage(0, message.batch_id, np.zeros((1, 1))))

    def test_discard_pending(self, end_system, rng):
        images = rng.random((4, 3, 8, 8))
        labels = rng.integers(0, 10, 4)
        first = end_system.forward_batch(images, labels)
        end_system.forward_batch(images, labels)
        assert end_system.discard_pending(first.batch_id) == 1
        assert end_system.discard_pending() == 1
        assert end_system.pending_batches == 0

    def test_cut_zero_end_system_has_no_parameters(self, tiny_architecture, tiny_parts, rng):
        spec = SplitSpec(tiny_architecture, client_blocks=0)
        loader = DataLoader(tiny_parts[0], batch_size=8, seed=0)
        system = EndSystem(0, loader, spec, seed=0)
        assert not system.has_trainable_parameters
        images = rng.random((4, 3, 8, 8))
        message = system.forward_batch(images, rng.integers(0, 10, 4))
        np.testing.assert_allclose(message.activations, images)
        # Applying a gradient is a harmless no-op.
        system.apply_gradient(GradientMessage(0, message.batch_id, np.zeros_like(images)))
        assert system.updates_applied == 0

    def test_forward_inference_has_no_side_effects(self, end_system, rng):
        out = end_system.forward_inference(rng.random((4, 3, 8, 8)))
        assert out.shape == (4, *end_system.split_spec.smashed_shape)
        assert end_system.pending_batches == 0

    def test_state_dict_roundtrip(self, end_system, tiny_split_spec, tiny_parts):
        loader = DataLoader(tiny_parts[1], batch_size=8, seed=1)
        other = EndSystem(1, loader, tiny_split_spec, seed=99)
        other.load_state_dict(end_system.state_dict())
        np.testing.assert_allclose(
            other.model["L1_conv"].weight.data, end_system.model["L1_conv"].weight.data
        )

    def test_batches_iterator(self, end_system):
        batches = list(end_system.batches(epoch=0))
        assert sum(images.shape[0] for images, _ in batches) == end_system.num_local_samples

    def test_repr(self, end_system):
        assert "EndSystem(id=0" in repr(end_system)


class TestCentralServer:
    def test_process_returns_gradient_and_metrics(self, server, end_system, rng):
        images = rng.random((8, 3, 8, 8))
        labels = rng.integers(0, 10, 8)
        message = end_system.forward_batch(images, labels)
        gradient = server.process(message)
        assert gradient.gradient.shape == message.activations.shape
        assert gradient.loss > 0
        assert 0.0 <= gradient.accuracy <= 1.0
        assert gradient.end_system_id == 0
        assert server.batches_processed == 1
        assert server.samples_processed == 8

    def test_process_updates_server_parameters(self, server, end_system, rng):
        images = rng.random((8, 3, 8, 8))
        message = end_system.forward_batch(images, rng.integers(0, 10, 8))
        before = server.model["output"].weight.data.copy()
        server.process(message)
        assert not np.allclose(server.model["output"].weight.data, before)

    def test_queue_integration(self, server, end_system, rng):
        images = rng.random((4, 3, 8, 8))
        for _ in range(3):
            assert server.receive(end_system.forward_batch(images, rng.integers(0, 10, 4)))
        assert server.has_pending()
        processed = []
        while server.has_pending():
            message, _ = server.process_next()
            processed.append(message.batch_id)
        assert sorted(processed) == [0, 1, 2]

    def test_predict_and_evaluate(self, server, end_system, rng):
        images = rng.random((6, 3, 8, 8))
        labels = rng.integers(0, 10, 6)
        smashed = end_system.forward_inference(images)
        logits = server.predict(smashed)
        assert logits.shape == (6, 10)
        metrics = server.evaluate(smashed, labels)
        assert set(metrics) == {"loss", "accuracy"}
        assert metrics["loss"] > 0

    def test_evaluation_does_not_touch_parameters(self, server, end_system, rng):
        smashed = end_system.forward_inference(rng.random((4, 3, 8, 8)))
        before = server.state_dict()
        server.evaluate(smashed, rng.integers(0, 10, 4))
        after = server.state_dict()
        for key in before:
            np.testing.assert_allclose(before[key], after[key])

    def test_custom_queue_policy_is_used(self, tiny_split_spec):
        server = CentralServer(tiny_split_spec, queue_policy=StalenessPriorityPolicy(), seed=0)
        assert isinstance(server.queue.policy, StalenessPriorityPolicy)

    def test_all_layers_on_clients_rejected(self, tiny_architecture):
        # A cut that leaves the server without parameters is unsupported:
        # the dense head always stays on the server, so this requires a
        # degenerate architecture; emulate it by splitting past every layer.
        spec = SplitSpec(tiny_architecture, client_blocks=tiny_architecture.num_blocks)
        # Even at the deepest cut the server still has the dense layers, so
        # construction must succeed.
        CentralServer(spec, seed=0)

    def test_state_dict_roundtrip(self, server, tiny_split_spec):
        other = CentralServer(tiny_split_spec, seed=123)
        other.load_state_dict(server.state_dict())
        np.testing.assert_allclose(
            other.model["output"].weight.data, server.model["output"].weight.data
        )

    def test_repr(self, server):
        assert "CentralServer" in repr(server)
