"""Queue-drop NACKs travel over the downlink, not instantaneously.

When a bounded queue sheds an arrival under the ``"drop"`` backpressure
policy, the client now learns of the loss one *downlink delay* after the
overflow (previously: at the overflow instant).  These tests pin the new
semantics: the measured notification delay matches the downlink latency,
NACK traffic is logged in its own direction (gradient counts stay
clean), a NACK lost in transit degrades to an immediate notification,
and the leak-freedom/accounting invariants survive all of it.
"""

import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import SpatioTemporalTrainer
from repro.simnet.topology import star_topology

from test_lossy_semantics import assert_drop_accounting

DOWNLINK_LATENCY_S = 0.035


def make_congested_trainer(spec, parts, normalize, **overrides):
    """Fast uplinks, slow server, slow downlinks: queue drops guaranteed."""
    topology = star_topology(
        len(parts),
        latencies_s=[0.001] * len(parts),
        downlink_latencies_s=[DOWNLINK_LATENCY_S] * len(parts),
        **overrides.pop("topology_kwargs", {}),
    )
    defaults = dict(mode="asynchronous", max_in_flight=2, server_step_time_s=0.01,
                    server_batching=False, max_queue_size=1,
                    queue_backpressure="drop")
    defaults.update(overrides)
    config = TrainingConfig.fast_debug(**defaults)
    return SpatioTemporalTrainer(spec, parts, config, topology=topology,
                                 train_transform=normalize)


class TestNackDelay:
    def test_mean_nack_delay_matches_downlink_latency(self, tiny_split_spec,
                                                      tiny_parts, normalize):
        trainer = make_congested_trainer(tiny_split_spec, tiny_parts, normalize)
        history = trainer.train()
        stats = trainer.engine.stats
        assert stats.nacks_sent > 0
        assert stats.queue_drops == stats.nacks_sent
        # Constant-latency downlinks: every NACK takes latency + tiny
        # serialization time, so the mean sits just above the latency.
        assert stats.mean_nack_delay_s >= DOWNLINK_LATENCY_S
        assert stats.mean_nack_delay_s < DOWNLINK_LATENCY_S + 0.005
        assert history.queue_stats["mean_nack_delay_s"] == pytest.approx(
            stats.mean_nack_delay_s
        )
        assert_drop_accounting(trainer, history)

    def test_nack_traffic_logged_separately(self, tiny_split_spec, tiny_parts,
                                            normalize):
        trainer = make_congested_trainer(tiny_split_spec, tiny_parts, normalize)
        history = trainer.train()
        log = trainer.transport.log
        assert log.nack_messages == trainer.engine.stats.nacks_sent
        # Gradient accounting is untouched by NACK traffic: every
        # delivered uplink either got a gradient back or was shed.
        assert history.traffic["downlink_messages"] == (
            history.traffic["uplink_messages"] - trainer.server.queue.dropped
        )

    def test_synchronous_mode_also_delays_the_nack(self, tiny_split_spec, tiny_parts,
                                                   normalize):
        topology = star_topology(
            len(tiny_parts),
            latencies_s=[0.001, 0.002],
            downlink_latencies_s=[DOWNLINK_LATENCY_S] * len(tiny_parts),
        )
        config = TrainingConfig.fast_debug(max_queue_size=1,
                                           queue_backpressure="drop")
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts, config,
                                        topology=topology, train_transform=normalize)
        history = trainer.train()
        stats = trainer.engine.stats
        assert stats.nacks_sent > 0
        assert stats.mean_nack_delay_s >= DOWNLINK_LATENCY_S
        assert_drop_accounting(trainer, history)

    def test_lost_nack_degrades_to_immediate_notification(self, tiny_split_spec,
                                                          tiny_parts, normalize):
        trainer = make_congested_trainer(
            tiny_split_spec, tiny_parts, normalize,
            topology_kwargs=dict(downlink_drop_probability=0.6, seed=13),
        )
        history = trainer.train()
        stats = trainer.engine.stats
        assert stats.nacks_sent > 0
        assert stats.nacks_lost > 0
        assert trainer.transport.log.nack_dropped == stats.nacks_lost
        # Leak freedom and cross-layer drop accounting survive lost NACKs.
        assert_drop_accounting(trainer, history)

    def test_block_policy_sends_no_nacks(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_congested_trainer(tiny_split_spec, tiny_parts, normalize,
                                         queue_backpressure="block")
        history = trainer.train()
        assert trainer.engine.stats.nacks_sent == 0
        assert trainer.engine.stats.mean_nack_delay_s == 0.0
        assert history.queue_stats["dropped"] == 0
        assert_drop_accounting(trainer, history)
