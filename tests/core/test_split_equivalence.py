"""Integration test: split training is mathematically equivalent to joint training.

Splitting a network between a client and a server and relaying the
boundary gradient must produce *exactly* the same parameter updates as
training the unsplit network, provided both sides start from the same
weights, see the same data order and use per-parameter optimizers (Adam/
SGD treat each parameter independently).  This is the core correctness
property of split learning and therefore of the whole reproduction.
"""

import numpy as np
import pytest

from repro.core.split import SplitSpec
from repro.nn import CrossEntropyLoss, Tensor
from repro.nn.optim import get_optimizer


@pytest.mark.parametrize("optimizer_name", ["sgd", "adam"])
@pytest.mark.parametrize("client_blocks", [1, 2])
def test_split_training_matches_joint_training(tiny_architecture, rng, optimizer_name,
                                               client_blocks):
    spec = SplitSpec(tiny_architecture, client_blocks=client_blocks)
    loss_fn = CrossEntropyLoss()

    # Reference: the unsplit model trained end-to-end.
    reference = tiny_architecture.build(seed=42)
    reference_optimizer = get_optimizer(optimizer_name, reference.parameters(), lr=1e-2)

    # Split: client and server segments initialized with the *same* weights.
    split_full = tiny_architecture.build(seed=42)
    client, server = spec.split_model(split_full)
    client_optimizer = get_optimizer(optimizer_name, client.parameters(), lr=1e-2)
    server_optimizer = get_optimizer(optimizer_name, server.parameters(), lr=1e-2)

    for _ in range(5):
        images = rng.random((8, 3, 8, 8))
        labels = rng.integers(0, 10, 8)

        # --- joint update ---
        reference_optimizer.zero_grad()
        loss_joint = loss_fn(reference(Tensor(images)), labels)
        loss_joint.backward()
        reference_optimizer.step()

        # --- split update with an explicit gradient hand-off ---
        client_optimizer.zero_grad()
        server_optimizer.zero_grad()
        client_output = client(Tensor(images, requires_grad=True))
        smashed = Tensor(client_output.data.copy(), requires_grad=True)   # network boundary
        loss_split = loss_fn(server(smashed), labels)
        loss_split.backward()
        server_optimizer.step()
        client_output.backward(smashed.grad)
        client_optimizer.step()

        assert loss_split.item() == pytest.approx(loss_joint.item(), rel=1e-10)

    # After several steps every parameter must still match exactly.
    reference_params = dict(reference.named_parameters())
    for name, parameter in list(client.named_parameters()) + list(server.named_parameters()):
        np.testing.assert_allclose(
            parameter.data, reference_params[name].data, atol=1e-10,
            err_msg=f"parameter {name} diverged between split and joint training",
        )


def test_split_inference_equals_full_model(tiny_architecture, rng):
    """Client forward followed by server forward equals the unsplit forward."""
    full = tiny_architecture.build(seed=7)
    for cut in range(tiny_architecture.num_blocks + 1):
        client, server = SplitSpec(tiny_architecture, cut).split_model(full)
        images = Tensor(rng.random((4, 3, 8, 8)))
        np.testing.assert_allclose(server(client(images)).data, full(images).data, atol=1e-12)
