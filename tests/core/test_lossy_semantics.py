"""Drop/backpressure semantics of the bounded-queue, lossy-network path.

The invariants pinned here are the ones the seed tree violated:

* every drop — uplink loss, queue overflow, downlink loss — notifies the
  originating end-system, so no client-side pending activation ever
  leaks (``pending_batches == 0`` after any full run);
* drop counts are consistent across the layers: the queue's counter, the
  transport log, the per-link counters and the end-systems' notification
  counters all agree;
* the ``"block"`` backpressure policy never sheds work: admission
  control defers sends instead, so every sample is eventually processed.
"""

import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import SpatioTemporalTrainer
from repro.data.partition import IIDPartitioner
from repro.obs.invariants import assert_drop_balance
from repro.simnet.topology import star_topology


def make_trainer(spec, parts, normalize, topology=None, **overrides):
    config = TrainingConfig.fast_debug(**overrides)
    return SpatioTemporalTrainer(spec, parts, config, topology=topology,
                                 train_transform=normalize)


def assert_drop_accounting(trainer, history):
    """Drops must agree across queue, transport, links and end-systems.

    The extended balance itself (one notification per lost batch, plus
    the zero-leak check) lives in :func:`repro.obs.invariants
    .assert_drop_balance` — the single statement shared with the chaos
    experiments and smoke scripts; the long-form rationale for each term
    sits in that module's docstring.  What stays *here* is the parity
    the balance can't see: the history's queue counter and the physical
    per-link drop totals.
    """
    log = trainer.transport.log
    link_totals = trainer.topology.dropped_totals()
    balance = assert_drop_balance(trainer)

    assert history.queue_stats["dropped"] == balance.queue_dropped
    # Per-direction link parity: a physical link drop surfaces either as
    # a transport drop or as a reliability-absorbed retry, while a chaos
    # corruption adds a transport-level loss the link never saw.
    assert (log.uplink_dropped + log.uplink_retried - log.uplink_corrupted
            == link_totals["uplink"])
    # NACKs ride the downlink link, so its counter sees their losses too.
    assert (log.downlink_dropped + log.downlink_retried
            - log.downlink_corrupted == link_totals["downlink"])
    # Sync snapshots are never retried; quorum is sync's robustness story.
    assert log.sync_dropped - log.sync_corrupted == link_totals["sync"]


class TestSynchronousBoundedQueue:
    def test_drop_policy_sheds_and_notifies(self, tiny_split_spec, tiny_parts, normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize,
                               max_queue_size=1, queue_backpressure="drop")
        history = trainer.train()
        assert trainer.server.queue.dropped > 0
        assert_drop_accounting(trainer, history)
        # Dropped messages never produce gradients: each delivered uplink
        # either got a downlink reply or was shed at the queue.
        traffic = history.traffic
        assert traffic["downlink_messages"] == (
            traffic["uplink_messages"] - trainer.server.queue.dropped
        )

    def test_block_policy_defers_instead_of_dropping(self, tiny_split_spec, tiny_parts,
                                                     normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize,
                               max_queue_size=1, queue_backpressure="block")
        history = trainer.train()
        assert trainer.server.queue.dropped == 0
        assert history.queue_stats["blocked_sends"] > 0
        # Nothing was shed, so every sample still reached the server.
        total = sum(len(part) for part in tiny_parts)
        assert trainer.server.samples_processed == total
        assert_drop_accounting(trainer, history)

    def test_unbounded_queue_never_blocks_or_drops(self, tiny_split_spec, tiny_parts,
                                                   normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        history = trainer.train()
        assert trainer.server.queue.dropped == 0
        assert history.queue_stats["blocked_sends"] == 0
        assert_drop_accounting(trainer, history)


class TestAsynchronousBoundedQueue:
    def make_async(self, spec, parts, normalize, **overrides):
        # Equal latencies + a slow server make arrivals pile up while the
        # server is busy, which is what stresses the bound.
        topology = star_topology(len(parts), latencies_s=[0.003] * len(parts))
        defaults = dict(mode="asynchronous", max_in_flight=1,
                        server_step_time_s=0.01, server_batching=False)
        defaults.update(overrides)
        return make_trainer(spec, parts, normalize, topology=topology, **defaults)

    def test_drop_policy_sheds_and_notifies(self, tiny_split_spec, tiny_parts, normalize):
        trainer = self.make_async(tiny_split_spec, tiny_parts, normalize,
                                  max_queue_size=1, queue_backpressure="drop")
        history = trainer.train()
        assert trainer.server.queue.dropped > 0
        assert_drop_accounting(trainer, history)

    def test_block_policy_processes_everything(self, tiny_split_spec, tiny_parts,
                                               normalize):
        trainer = self.make_async(tiny_split_spec, tiny_parts, normalize,
                                  max_queue_size=1, queue_backpressure="block")
        history = trainer.train()
        assert trainer.server.queue.dropped == 0
        assert history.queue_stats["blocked_sends"] > 0
        total = sum(len(part) for part in tiny_parts)
        assert trainer.server.samples_processed == total
        assert_drop_accounting(trainer, history)

    def test_time_budget_discards_in_flight_work(self, tiny_split_spec, tiny_parts,
                                                 normalize):
        trainer = self.make_async(tiny_split_spec, tiny_parts, normalize,
                                  max_queue_size=2, queue_backpressure="drop")
        trainer.train_time_budget(0.1)
        # Batches cut off mid-flight by the budget are abandoned on the
        # client too (the pre-refactor loop leaked them).
        assert all(es.pending_batches == 0 for es in trainer.end_systems)
        assert not trainer.server.has_pending()


class TestLossyLinksWithBoundedQueue:
    @pytest.mark.parametrize("mode", ["synchronous", "asynchronous"])
    def test_accounting_consistent_under_link_loss(self, tiny_split_spec, tiny_parts,
                                                   normalize, mode):
        topology = star_topology(len(tiny_parts), latencies_s=[0.002, 0.006],
                                 drop_probability=0.25, seed=7)
        overrides = dict(max_queue_size=2, queue_backpressure="drop")
        if mode == "asynchronous":
            overrides.update(mode=mode, max_in_flight=2, server_step_time_s=0.004,
                             server_batching=False)
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize,
                               topology=topology, **overrides)
        history = trainer.train()
        assert trainer.transport.log.dropped_messages > 0
        assert_drop_accounting(trainer, history)

    def test_downlink_loss_notifies_client(self, tiny_split_spec, tiny_parts, normalize):
        # Perfect uplinks, very lossy downlinks: only gradient messages
        # are ever dropped, and each one must be notified.
        topology = star_topology(len(tiny_parts), latencies_s=[0.002, 0.006],
                                 drop_probability=0.0,
                                 downlink_drop_probability=0.5, seed=3)
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, topology=topology)
        history = trainer.train()
        assert trainer.transport.log.uplink_dropped == 0
        assert trainer.transport.log.downlink_dropped > 0
        assert_drop_accounting(trainer, history)


class TestShardCrashLeakFreedom:
    """Killing a shard mid-epoch preserves every lossy-path invariant.

    The crash sheds the dead shard's queued work and in-flight arrivals
    through ``notify_drop``, so the client ``_pending`` maps still drain
    to empty and the cross-layer drop counts still agree — on top of a
    bounded queue and a lossy WAN doing their usual damage.
    """

    @pytest.fixture()
    def four_parts(self, tiny_splits):
        train, _ = tiny_splits
        return IIDPartitioner(4, seed=5).partition(train)

    @pytest.mark.parametrize("mode", ["synchronous", "asynchronous"])
    def test_crash_keeps_accounting_consistent(self, tiny_split_spec, four_parts,
                                               normalize, mode):
        overrides = dict(
            num_servers=2, server_sync_every=1, server_sync_mode="staleness",
            max_queue_size=2, queue_backpressure="drop",
            failure_schedule=[(0.012, 1)], failover_policy="rebalance",
        )
        if mode == "asynchronous":
            overrides.update(mode=mode, max_in_flight=2, server_step_time_s=0.004,
                             server_batching=False)
        trainer = make_trainer(tiny_split_spec, four_parts, normalize, **overrides)
        history = trainer.train()
        stats = trainer.engine.stats
        assert stats.shard_crashes == 1
        # The dead shard's clients were all failed over to the survivor.
        orphans = trainer.cluster.original_clients(1)
        assert all(trainer.cluster.assignment[sid] == 0 for sid in orphans)
        assert all(es.pending_batches == 0 for es in trainer.end_systems)
        assert_drop_accounting(trainer, history)

    @pytest.mark.parametrize("mode", ["synchronous", "asynchronous"])
    def test_crash_under_link_loss(self, tiny_split_spec, four_parts, normalize,
                                   mode):
        from repro.simnet.topology import multi_hub_star_topology

        topology = multi_hub_star_topology(
            4, 2, latencies_s=[0.002, 0.004, 0.006, 0.008],
            drop_probability=0.2, seed=11,
        )
        overrides = dict(
            num_servers=2, server_sync_every=1, server_sync_mode="staleness",
            max_queue_size=2, queue_backpressure="drop",
            failure_schedule=[(0.015, 0, 0.04)], failover_policy="rebalance",
        )
        if mode == "asynchronous":
            overrides.update(mode=mode, max_in_flight=2, server_step_time_s=0.004,
                             server_batching=False)
        trainer = make_trainer(tiny_split_spec, four_parts, normalize,
                               topology=topology, **overrides)
        history = trainer.train()
        stats = trainer.engine.stats
        assert stats.shard_crashes >= 1
        assert stats.shard_recoveries >= 1
        assert trainer.transport.log.dropped_messages > 0
        assert all(es.pending_batches == 0 for es in trainer.end_systems)
        assert_drop_accounting(trainer, history)


class TestReliableDeliveryInvariants:
    """Retries, duplicates and give-ups preserve the extended balance."""

    @pytest.mark.parametrize("mode", ["synchronous", "asynchronous"])
    def test_duplicate_delivery_is_deduplicated(self, tiny_split_spec, tiny_parts,
                                                normalize, mode):
        # Loss-free links + certain duplication: every uplink lands twice
        # and the second copy must be silently absorbed by the receiver.
        overrides = dict(chaos_duplicate_probability=1.0)
        if mode == "asynchronous":
            overrides.update(mode=mode, max_in_flight=2,
                             server_step_time_s=0.004, server_batching=False)
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, **overrides)
        history = trainer.train()
        log = trainer.transport.log
        stats = trainer.engine.stats
        assert log.duplicated_messages > 0
        # Unbounded queue: every duplicate copy is shed by the dedup
        # guard, never by capacity, so the counts match one-for-one.
        assert stats.deduped == log.duplicated_messages
        assert_drop_accounting(trainer, history)

    @pytest.mark.parametrize("mode", ["synchronous", "asynchronous"])
    def test_exhausted_retries_notify_exactly_once(self, tiny_split_spec, tiny_parts,
                                                   normalize, mode):
        # Fully-lossy uplinks (clients administratively down, the chaos
        # "leave" condition): every retry chain exhausts its attempts, so
        # each batch surfaces as exactly one give-up notification and
        # every per-attempt loss is absorbed into the retried counters.
        overrides = dict(reliable_delivery=True, retry_max=1,
                         retry_timeout_s=0.01)
        if mode == "asynchronous":
            overrides.update(mode=mode, max_in_flight=1,
                             server_step_time_s=0.004, server_batching=False)
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize, **overrides)
        for end_system in trainer.end_systems:
            trainer.topology.set_node_up(end_system.node_name, False)
        history = trainer.train()
        stats = trainer.engine.stats
        log = trainer.transport.log
        total_batches = sum(es._next_batch_id for es in trainer.end_systems)
        assert stats.gave_up == total_batches
        assert sum(es.drops_notified for es in trainer.end_systems) == total_batches
        # Two physical attempts per chain, all absorbed — nothing reaches
        # the transport drop ledger.
        assert log.uplink_retried == 2 * total_batches
        assert log.dropped_messages == 0
        assert_drop_accounting(trainer, history)

    @pytest.mark.parametrize("mode", ["synchronous", "asynchronous"])
    def test_retries_under_partial_loss(self, tiny_split_spec, tiny_parts,
                                        normalize, mode):
        topology = star_topology(len(tiny_parts), latencies_s=[0.002, 0.006],
                                 drop_probability=0.3, seed=11)
        overrides = dict(reliable_delivery=True, retry_max=3,
                         retry_timeout_s=0.02, max_queue_size=2,
                         queue_backpressure="drop")
        if mode == "asynchronous":
            overrides.update(mode=mode, max_in_flight=2,
                             server_step_time_s=0.004, server_batching=False)
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize,
                               topology=topology, **overrides)
        history = trainer.train()
        assert trainer.engine.stats.retries > 0
        assert trainer.transport.log.retried_messages > 0
        assert_drop_accounting(trainer, history)

    @pytest.mark.parametrize("mode", ["synchronous", "asynchronous"])
    def test_mid_retry_shard_crash(self, tiny_split_spec, normalize, tiny_splits,
                                   mode):
        # A shard dies while retry chains are in flight: crash-flush,
        # stale-arrival shedding and give-up resolution must compose
        # without double-charging any batch.
        train, _ = tiny_splits
        four_parts = IIDPartitioner(4, seed=5).partition(train)
        from repro.simnet.topology import multi_hub_star_topology

        topology = multi_hub_star_topology(
            4, 2, latencies_s=[0.002, 0.004, 0.006, 0.008],
            drop_probability=0.25, seed=13,
        )
        overrides = dict(
            num_servers=2, server_sync_every=1, server_sync_mode="staleness",
            reliable_delivery=True, retry_max=2, retry_timeout_s=0.01,
            max_queue_size=2, queue_backpressure="drop",
            failure_schedule=[(0.015, 0, 0.04)], failover_policy="rebalance",
        )
        if mode == "asynchronous":
            overrides.update(mode=mode, max_in_flight=2,
                             server_step_time_s=0.004, server_batching=False)
        trainer = make_trainer(tiny_split_spec, four_parts, normalize,
                               topology=topology, **overrides)
        history = trainer.train()
        stats = trainer.engine.stats
        assert stats.shard_crashes >= 1
        assert stats.retries > 0
        assert all(es.pending_batches == 0 for es in trainer.end_systems)
        assert_drop_accounting(trainer, history)
