"""Tests for the cut-layer compression / perturbation transforms (extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.compression import (
    GaussianNoisePerturbation,
    NoCompression,
    TopKSparsifier,
    Uint8Quantizer,
    get_transform,
)


@pytest.fixture
def activations(rng):
    return rng.standard_normal((8, 4, 4, 4)) * 3.0


class TestNoCompression:
    def test_identity_and_byte_count(self, activations):
        result = NoCompression().apply(activations)
        np.testing.assert_allclose(result.activations, activations)
        assert result.wire_bytes == activations.nbytes


class TestUint8Quantizer:
    def test_reduces_wire_bytes_8x(self, activations):
        result = Uint8Quantizer().apply(activations)
        assert result.wire_bytes < activations.nbytes / 7

    def test_reconstruction_error_bounded_by_step(self, activations):
        result = Uint8Quantizer().apply(activations)
        step = (activations.max() - activations.min()) / 255
        assert np.abs(result.activations - activations).max() <= step / 2 + 1e-12

    def test_shape_preserved(self, activations):
        assert Uint8Quantizer().apply(activations).activations.shape == activations.shape

    def test_constant_tensor_handled(self):
        constant = np.full((2, 3), 1.5)
        result = Uint8Quantizer().apply(constant)
        np.testing.assert_allclose(result.activations, constant)

    def test_fewer_levels_more_error(self, activations):
        fine = Uint8Quantizer(levels=256).apply(activations)
        coarse = Uint8Quantizer(levels=4).apply(activations)
        assert coarse.metadata["quantization_mse"] > fine.metadata["quantization_mse"]

    def test_validation(self):
        with pytest.raises(ValueError):
            Uint8Quantizer(levels=1)
        with pytest.raises(ValueError):
            Uint8Quantizer(levels=512)


class TestTopKSparsifier:
    def test_keeps_requested_fraction(self, activations):
        result = TopKSparsifier(keep_fraction=0.25).apply(activations)
        nonzero_fraction = np.count_nonzero(result.activations) / activations.size
        assert nonzero_fraction == pytest.approx(0.25, abs=0.01)

    def test_kept_entries_are_largest_magnitude(self, activations):
        result = TopKSparsifier(keep_fraction=0.1).apply(activations)
        kept_mask = result.activations != 0
        if kept_mask.any() and (~kept_mask).any():
            smallest_kept = np.abs(activations[kept_mask]).min()
            largest_dropped = np.abs(activations[~kept_mask]).max()
            assert smallest_kept >= largest_dropped - 1e-12

    def test_wire_bytes_scale_with_fraction(self, activations):
        quarter = TopKSparsifier(keep_fraction=0.25).apply(activations)
        half = TopKSparsifier(keep_fraction=0.5).apply(activations)
        assert quarter.wire_bytes < half.wire_bytes < activations.nbytes

    def test_keep_everything_falls_back_to_dense(self, activations):
        result = TopKSparsifier(keep_fraction=1.0).apply(activations)
        np.testing.assert_allclose(result.activations, activations)
        assert result.wire_bytes == activations.nbytes

    def test_validation(self):
        with pytest.raises(ValueError):
            TopKSparsifier(keep_fraction=0.0)
        with pytest.raises(ValueError):
            TopKSparsifier(keep_fraction=1.5)


class TestGaussianNoisePerturbation:
    def test_norm_clipping(self, rng):
        activations = rng.standard_normal((4, 100)) * 50.0
        transform = GaussianNoisePerturbation(noise_multiplier=0.0, clip_norm=1.0, seed=0)
        result = transform.apply(activations)
        norms = np.linalg.norm(result.activations.reshape(4, -1), axis=1)
        assert (norms <= 1.0 + 1e-9).all()

    def test_small_activations_not_scaled_up(self, rng):
        activations = rng.standard_normal((4, 10)) * 0.01
        transform = GaussianNoisePerturbation(noise_multiplier=0.0, clip_norm=10.0, seed=0)
        result = transform.apply(activations)
        np.testing.assert_allclose(result.activations, activations, atol=1e-12)

    def test_noise_magnitude_scales_with_multiplier(self, rng):
        activations = np.zeros((8, 1000))
        quiet = GaussianNoisePerturbation(noise_multiplier=0.1, clip_norm=1.0, seed=0)
        loud = GaussianNoisePerturbation(noise_multiplier=1.0, clip_norm=1.0, seed=0)
        assert loud.apply(activations).activations.std() > quiet.apply(activations).activations.std()

    def test_traffic_unchanged(self, activations):
        result = GaussianNoisePerturbation(seed=0).apply(activations)
        assert result.wire_bytes == activations.nbytes

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNoisePerturbation(noise_multiplier=-1.0)
        with pytest.raises(ValueError):
            GaussianNoisePerturbation(clip_norm=0.0)


class TestFactoryAndProperties:
    def test_get_transform_factory(self):
        assert isinstance(get_transform("none"), NoCompression)
        assert isinstance(get_transform("uint8"), Uint8Quantizer)
        assert isinstance(get_transform("topk", keep_fraction=0.5), TopKSparsifier)
        assert isinstance(get_transform("gaussian_noise"), GaussianNoisePerturbation)
        with pytest.raises(KeyError, match="unknown transform"):
            get_transform("bogus")

    @settings(max_examples=25, deadline=None)
    @given(data=arrays(np.float64, (3, 2, 4, 4),
                       elements=st.floats(-10, 10, allow_nan=False, width=64)))
    def test_all_transforms_preserve_shape_and_report_positive_bytes(self, data):
        for transform in (NoCompression(), Uint8Quantizer(),
                          TopKSparsifier(keep_fraction=0.3),
                          GaussianNoisePerturbation(seed=0)):
            result = transform.apply(data)
            assert result.activations.shape == data.shape
            assert result.wire_bytes > 0
            assert np.isfinite(result.activations).all()

    @settings(max_examples=25, deadline=None)
    @given(data=arrays(np.float64, (2, 16),
                       elements=st.floats(-5, 5, allow_nan=False, width=64)))
    def test_compression_never_inflates_traffic(self, data):
        baseline = NoCompression().apply(data).wire_bytes
        assert Uint8Quantizer().apply(data).wire_bytes <= baseline + 16
        assert TopKSparsifier(keep_fraction=0.5).apply(data).wire_bytes <= baseline
