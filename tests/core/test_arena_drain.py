"""Activation-arena staging and the zero-copy batched drain.

Covers the arena data structure itself (`repro.utils.arena`) and the
acceptance property of PR 3's tentpole: at float64, the arena + backend
drain path produces the same gradients, metrics and parameter updates as
the original concatenate path, to round-off.
"""

import numpy as np
import pytest

from repro.backend import BlockedBackend, use_backend
from repro.core.messages import ActivationMessage
from repro.core.models import tiny_cnn_architecture
from repro.core.scheduling import StalenessPriorityPolicy
from repro.core.server import CentralServer
from repro.core.split import SplitSpec
from repro.utils.arena import ActivationArena
from repro.utils.perf import counters


@pytest.fixture
def spec():
    architecture = tiny_cnn_architecture(image_size=8, num_blocks=2, base_filters=4,
                                         dense_units=16)
    return SplitSpec(architecture, client_blocks=1)


def make_messages(spec, count, batch_size=4, seed=0, image_size=8):
    shape = spec.architecture.block_output_shape(spec.client_blocks)
    rng = np.random.default_rng(seed)
    return [
        ActivationMessage(
            end_system_id=index,
            batch_id=index,
            activations=rng.standard_normal((batch_size, *shape)),
            labels=rng.integers(0, 10, batch_size),
            arrival_time=float(index),
        )
        for index in range(count)
    ]


class TestActivationArena:
    def test_stage_and_gather_zero_copy(self, spec):
        arena = ActivationArena()
        messages = make_messages(spec, 4)
        for message in messages:
            assert arena.stage(message)
        gathered = arena.gather(messages)
        assert gathered is not None
        total = sum(message.batch_size for message in messages)
        assert gathered.activations.shape[0] == total
        assert gathered.labels.shape[0] == total
        # Zero-copy: the view shares memory with an arena bucket, not
        # with any message payload.
        assert not gathered.activations.flags.owndata
        for message, (start, stop) in zip(messages, gathered.segments):
            np.testing.assert_array_equal(
                gathered.activations[start:stop], message.activations
            )
            np.testing.assert_array_equal(gathered.labels[start:stop], message.labels)

    def test_gather_handles_permuted_drain_order(self, spec):
        arena = ActivationArena()
        messages = make_messages(spec, 3)
        for message in messages:
            arena.stage(message)
        shuffled = [messages[2], messages[0], messages[1]]
        gathered = arena.gather(shuffled)
        assert gathered is not None
        for message, (start, stop) in zip(shuffled, gathered.segments):
            np.testing.assert_array_equal(
                gathered.activations[start:stop], message.activations
            )

    def test_unstaged_message_falls_back(self, spec):
        arena = ActivationArena()
        staged, unstaged = make_messages(spec, 2)
        arena.stage(staged)
        assert arena.gather([staged, unstaged]) is None

    def test_ragged_shapes_use_separate_buckets_and_fall_back(self, spec):
        arena = ActivationArena()
        small = make_messages(spec, 1, batch_size=2)[0]
        shape = spec.architecture.block_output_shape(spec.client_blocks)
        ragged = ActivationMessage(
            end_system_id=9, batch_id=9,
            activations=np.zeros((2, shape[0], shape[1] + 1, shape[2])),
            labels=np.zeros(2, dtype=np.int64),
        )
        assert arena.stage(small) and arena.stage(ragged)
        assert arena.gather([small, ragged]) is None
        # Same-bucket gathers still work.
        assert arena.gather([small]) is not None

    def test_discard_leaves_hole_then_recovers_when_idle(self, spec):
        arena = ActivationArena()
        first, middle, last = make_messages(spec, 3)
        for message in (first, middle, last):
            arena.stage(message)
        arena.discard(middle)
        # The remaining segments are no longer contiguous.
        assert arena.gather([first, last]) is None
        arena.release([first, last])
        # All live messages released -> the bucket rewinds and restages
        # from the start without growing.
        assert arena.staged_messages == 0
        again = make_messages(spec, 2, seed=3)
        for message in again:
            assert arena.stage(message)
        assert arena.gather(again) is not None

    def test_grow_preserves_staged_payloads(self, spec):
        arena = ActivationArena(initial_rows=4)
        messages = make_messages(spec, 6, batch_size=3)
        before = counters.get("arena_grows")
        for message in messages:
            assert arena.stage(message)
        assert counters.get("arena_grows") > before
        gathered = arena.gather(messages)
        assert gathered is not None
        for message, (start, stop) in zip(messages, gathered.segments):
            np.testing.assert_array_equal(
                gathered.activations[start:stop], message.activations
            )

    def test_per_message_churn_compacts_instead_of_growing(self, spec):
        """A standing backlog drained one message at a time must not grow
        the bucket unboundedly: holes are compacted on demand."""
        arena = ActivationArena(initial_rows=8)
        messages = make_messages(spec, 40, batch_size=4)  # 4 rows per message
        grows_before = counters.get("arena_grows")
        compactions_before = counters.get("arena_compactions")
        live = []
        for message in messages:
            assert arena.stage(message)
            live.append(message)
            if len(live) > 2:
                arena.discard(live.pop(0))  # FIFO per-message pop
        # One initial doubling (8 -> 16 rows) is expected; after that the
        # churn is absorbed by compaction, not growth.
        assert counters.get("arena_grows") - grows_before == 1
        assert counters.get("arena_compactions") > compactions_before
        # Compaction preserved the live payloads byte-for-byte.
        gathered = arena.gather(live)
        assert gathered is not None
        for message, (start, stop) in zip(live, gathered.segments):
            np.testing.assert_array_equal(
                gathered.activations[start:stop], message.activations
            )
            np.testing.assert_array_equal(gathered.labels[start:stop], message.labels)

    def test_compaction_with_staging_order_unlike_sequence_order(self, spec):
        """Compaction must move segments in row order, not sequence order.

        Staging order can differ from message-sequence order (network
        reordering); moving a lower-sequence-but-higher-row segment first
        would overwrite a not-yet-moved segment's rows.
        """
        arena = ActivationArena(initial_rows=12)  # 3 x 4-row messages
        second, first, third, fourth = make_messages(spec, 4, batch_size=4)
        # Stage in an order where row position and sequence disagree:
        # rows 0-4 hold the *higher*-sequence message.
        assert arena.stage(first)   # rows 0-4, higher sequence
        assert arena.stage(second)  # rows 4-8, lower sequence
        assert arena.stage(third)   # rows 8-12
        arena.discard(third)        # hole at the tail
        compactions = counters.get("arena_compactions")
        assert arena.stage(fourth)  # needs room -> compaction, not growth
        assert counters.get("arena_compactions") == compactions + 1
        gathered = arena.gather([first, second, fourth])
        assert gathered is not None
        for message, (start, stop) in zip([first, second, fourth], gathered.segments):
            np.testing.assert_array_equal(
                gathered.activations[start:stop], message.activations
            )
            np.testing.assert_array_equal(gathered.labels[start:stop], message.labels)

    def test_grow_counts_replaced_bucket_against_cap_only_once(self):
        """A growth that fits once the old bucket is freed must succeed."""
        def raw(batch_id):
            return ActivationMessage(
                end_system_id=0, batch_id=batch_id,
                activations=np.full((4, 100), float(batch_id)),
                labels=np.full(4, batch_id, dtype=np.int64),
            )
        # Bucket rows are 808 bytes; 8 initial rows = 6464 B, doubled =
        # 12928 B.  The cap admits the doubled bucket alone but not old
        # and new together.
        arena = ActivationArena(initial_rows=8, max_bytes=16000)
        first, second, third = raw(1), raw(2), raw(3)
        assert arena.stage(first) and arena.stage(second)  # bucket full
        grows = counters.get("arena_grows")
        assert arena.stage(third)
        assert counters.get("arena_grows") == grows + 1
        gathered = arena.gather([first, second, third])
        assert gathered is not None
        assert arena.allocated_bytes <= 16000

    def test_max_bytes_rejects_staging(self, spec):
        arena = ActivationArena(max_bytes=64)
        message = make_messages(spec, 1)[0]
        before = counters.get("arena_stage_rejected")
        assert not arena.stage(message)
        assert counters.get("arena_stage_rejected") == before + 1
        assert arena.gather([message]) is None

    def test_reset_clears_segments_keeps_buckets(self, spec):
        arena = ActivationArena()
        messages = make_messages(spec, 2)
        for message in messages:
            arena.stage(message)
        allocated = arena.allocated_bytes
        arena.reset()
        assert arena.staged_messages == 0
        assert arena.allocated_bytes == allocated
        assert arena.gather(messages) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ActivationArena(initial_rows=0)
        with pytest.raises(ValueError):
            ActivationArena(max_bytes=0)


class TestServerArenaIntegration:
    def test_receive_stages_and_drain_is_zero_copy(self, spec):
        server = CentralServer(spec, seed=0)
        before = counters.get("arena_gather_zero_copy")
        for message in make_messages(spec, 5):
            assert server.receive(message)
        assert server.arena.staged_messages == 5
        results = server.process_pending_batch()
        assert len(results) == 5
        assert counters.get("arena_gather_zero_copy") == before + 1
        # Rows are recycled after the drain.
        assert server.arena.staged_messages == 0

    def test_use_arena_false_disables_staging(self, spec):
        server = CentralServer(spec, use_arena=False, seed=0)
        assert server.arena is None
        for message in make_messages(spec, 3):
            server.receive(message)
        assert len(server.process_pending_batch()) == 3

    def test_process_next_discards_staged_row(self, spec):
        server = CentralServer(spec, seed=0)
        for message in make_messages(spec, 2):
            server.receive(message)
        server.process_next()
        assert server.arena.staged_messages == 1
        server.process_next()
        assert server.arena.staged_messages == 0

    def test_flush_queue_releases_arena(self, spec):
        server = CentralServer(spec, seed=0)
        messages = make_messages(spec, 4)
        for message in messages:
            server.receive(message)
        flushed = server.flush_queue()
        assert [message.batch_id for message in flushed] == [m.batch_id for m in messages]
        assert server.arena.staged_messages == 0
        assert not server.has_pending()

    def test_queue_drop_does_not_stage(self, spec):
        server = CentralServer(spec, max_queue_size=1, seed=0)
        first, second = make_messages(spec, 2)
        assert server.receive(first)
        assert not server.receive(second)
        assert server.arena.staged_messages == 1


class TestArenaBackendEquivalence:
    """Acceptance: arena + blocked-backend drains == concatenate path at float64."""

    def test_drain_matches_concatenate_path_to_round_off(self, spec):
        messages = make_messages(spec, 6, batch_size=3, seed=42)

        def clone(msgs):
            return [
                ActivationMessage(
                    end_system_id=m.end_system_id,
                    batch_id=m.batch_id,
                    activations=m.activations.copy(),
                    labels=m.labels.copy(),
                    arrival_time=m.arrival_time,
                    # Descending creation times: the staleness policy
                    # drains in *reverse* staging order, so the arena
                    # batch (storage order) is a permutation of the
                    # concatenate batch (drain order).
                    created_at=float(len(msgs) - index),
                )
                for index, m in enumerate(msgs)
            ]

        # Path A: staged arrivals drained through the arena view with the
        # tiled backend (tiny block_rows so tiling actually engages).
        with use_backend(BlockedBackend(block_rows=2)):
            arena_server = CentralServer(spec, queue_policy=StalenessPriorityPolicy(),
                                         seed=123)
            for message in clone(messages):
                arena_server.receive(message)
            arena_results = arena_server.process_pending_batch()
        assert counters.get("arena_gather_zero_copy") > 0

        # Path B: the original concatenate path on the reference backend.
        with use_backend("numpy"):
            plain_server = CentralServer(spec, queue_policy=StalenessPriorityPolicy(),
                                         use_arena=False, seed=123)
            for message in clone(messages):
                plain_server.receive(message)
            plain_results = plain_server.process_pending_batch()

        assert len(arena_results) == len(plain_results) == 6
        for (msg_a, reply_a), (msg_b, reply_b) in zip(arena_results, plain_results):
            assert msg_a.batch_id == msg_b.batch_id
            assert reply_a.end_system_id == reply_b.end_system_id
            np.testing.assert_allclose(reply_a.gradient, reply_b.gradient,
                                       rtol=1e-12, atol=1e-12)
            assert reply_a.loss == pytest.approx(reply_b.loss, rel=1e-12)
            assert reply_a.accuracy == pytest.approx(reply_b.accuracy)
        for key, value in arena_server.state_dict().items():
            np.testing.assert_allclose(value, plain_server.state_dict()[key],
                                       rtol=1e-12, atol=1e-12)
