"""Tests for the training-history records."""

import pytest

from repro.core.history import EpochRecord, TrainingHistory


def make_record(epoch, train_accuracy=0.5, test_accuracy=None, simulated=1.0):
    return EpochRecord(
        epoch=epoch,
        train_loss=1.0 / (epoch + 1),
        train_accuracy=train_accuracy,
        test_accuracy=test_accuracy,
        simulated_time_s=simulated,
    )


class TestEpochRecord:
    def test_as_dict_omits_missing_test_metrics(self):
        record = make_record(0)
        as_dict = record.as_dict()
        assert "test_accuracy" not in as_dict
        assert as_dict["epoch"] == 0

    def test_as_dict_includes_extra(self):
        record = make_record(0)
        record.extra["fairness"] = 0.9
        assert record.as_dict()["fairness"] == 0.9

    def test_as_dict_includes_test_metrics_when_present(self):
        record = make_record(1, test_accuracy=0.7)
        record.test_loss = 0.5
        as_dict = record.as_dict()
        assert as_dict["test_accuracy"] == 0.7
        assert as_dict["test_loss"] == 0.5


class TestTrainingHistory:
    def test_append_len_iter(self):
        history = TrainingHistory()
        history.append(make_record(0))
        history.append(make_record(1))
        assert len(history) == 2
        assert [record.epoch for record in history] == [0, 1]

    def test_final_and_best_accuracy(self):
        history = TrainingHistory()
        history.append(make_record(0, train_accuracy=0.3, test_accuracy=0.4))
        history.append(make_record(1, train_accuracy=0.6, test_accuracy=0.55))
        history.append(make_record(2, train_accuracy=0.7))
        assert history.final_train_accuracy == 0.7
        assert history.final_test_accuracy == 0.55
        assert history.best_test_accuracy == 0.55

    def test_empty_history_defaults(self):
        history = TrainingHistory()
        assert history.final_train_accuracy == 0.0
        assert history.final_test_accuracy is None
        assert history.best_test_accuracy is None
        assert history.total_simulated_time == 0.0

    def test_curves_and_rows(self):
        history = TrainingHistory()
        history.append(make_record(0, train_accuracy=0.2))
        history.append(make_record(1, train_accuracy=0.8))
        assert history.accuracy_curve() == [0.2, 0.8]
        assert history.loss_curve() == [1.0, 0.5]
        rows = history.to_rows()
        assert rows[1]["train_accuracy"] == 0.8

    def test_total_simulated_time(self):
        history = TrainingHistory()
        history.append(make_record(0, simulated=1.5))
        history.append(make_record(1, simulated=2.5))
        assert history.total_simulated_time == pytest.approx(4.0)

    def test_summary_structure(self):
        history = TrainingHistory(config={"epochs": 2})
        history.append(make_record(0, test_accuracy=0.5))
        history.traffic = {"uplink_megabytes": 1.0}
        history.queue_stats = {"fairness_index": 1.0}
        history.per_system_accuracy = {0: 0.5}
        summary = history.summary()
        assert summary["epochs"] == 1
        assert summary["traffic"]["uplink_megabytes"] == 1.0
        assert summary["per_system_accuracy"] == {0: 0.5}
        assert summary["reliability"] == {}

    def test_reliability_view_collects_fault_plane_counters(self):
        history = TrainingHistory()
        history.queue_stats = {"fairness_index": 1.0, "retries": 3,
                               "gave_up": 1, "chaos_events": 4}
        history.traffic = {"uplink_megabytes": 1.0, "retried_messages": 3,
                           "corrupted_messages": 2}
        view = history.reliability()
        assert view == {"retries": 3, "gave_up": 1, "chaos_events": 4,
                        "retried_messages": 3.0, "corrupted_messages": 2.0}
        # Non-reliability stats stay out of the view.
        assert "fairness_index" not in view
        assert "uplink_megabytes" not in view
