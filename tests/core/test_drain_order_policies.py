"""Static drain orders must match the generic pop loop exactly.

``ParameterQueue.drain`` sorts once when the policy returns a full
``drain_order``; round-robin and weighted-fair now *simulate* their own
feedback loops to produce that order in O(n log n).  These tests replay
randomized backlogs — uneven per-system message counts, shuffled arrival
order, varying batch sizes, and pre-seeded policy state — through both
paths and require identical pop sequences and identical post-drain
policy state.
"""

import numpy as np
import pytest

from repro.core.messages import ActivationMessage
from repro.core.scheduling import (
    ParameterQueue,
    RoundRobinPolicy,
    get_policy,
)


def make_messages(rng, num_messages, num_systems, max_batch=8):
    """A shuffled backlog with collision-free arrival times."""
    messages = []
    arrivals = rng.permutation(num_messages).astype(float)
    for index in range(num_messages):
        batch = int(rng.integers(1, max_batch + 1))
        message = ActivationMessage(
            end_system_id=int(rng.integers(0, num_systems)),
            batch_id=index,
            activations=np.zeros((batch, 2)),
            labels=np.zeros(batch, dtype=np.int64),
            created_at=float(rng.random()),
            arrival_time=float(arrivals[index]) + float(rng.random()) * 0.5,
        )
        messages.append(message)
    return messages


def pop_loop_reference(policy, messages, now):
    """The generic one-select-per-pop drain (the pre-optimization path)."""
    pending = list(messages)
    order = []
    while pending:
        index = policy.select(pending, now)
        message = pending.pop(index)
        policy.notify_processed(message)
        order.append(message.sequence)
    return order


def seeded_policies(name, seed_messages):
    """Two identically-seeded policy instances (some state pre-populated)."""
    fast, reference = get_policy(name), get_policy(name)
    for message in seed_messages:
        fast.notify_processed(message)
        reference.notify_processed(message)
    return fast, reference


@pytest.mark.parametrize("name", ["round_robin", "weighted_fair", "fifo", "staleness"])
@pytest.mark.parametrize("trial", range(5))
def test_drain_order_matches_pop_loop(name, trial):
    rng = np.random.default_rng(100 * trial + hash(name) % 97)
    num_systems = int(rng.integers(2, 9))
    messages = make_messages(rng, num_messages=int(rng.integers(5, 40)),
                             num_systems=num_systems)
    # Pre-seed the stateful policies mid-cycle, as a real drain would be.
    seed = make_messages(rng, num_messages=3, num_systems=num_systems)
    fast, reference = seeded_policies(name, seed)
    now = max(message.arrival_time for message in messages)

    order = fast.drain_order(list(messages), now)
    assert order is not None
    assert sorted(order) == list(range(len(messages)))
    fast_sequence = [messages[index].sequence for index in order]
    assert fast_sequence == pop_loop_reference(reference, messages, now)


@pytest.mark.parametrize("name", ["round_robin", "weighted_fair"])
def test_drain_order_does_not_mutate_policy_state(name):
    rng = np.random.default_rng(9)
    messages = make_messages(rng, num_messages=12, num_systems=3)
    policy = get_policy(name)
    before = (dict(policy.__dict__.get("_processed_samples", {})),
              policy.__dict__.get("_last_served"))
    policy.drain_order(messages, now=100.0)
    after = (dict(policy.__dict__.get("_processed_samples", {})),
             policy.__dict__.get("_last_served"))
    assert before == after


@pytest.mark.parametrize("name", ["round_robin", "weighted_fair"])
def test_queue_drain_equals_sequential_pops(name):
    """End-to-end: ParameterQueue.drain == repeated ParameterQueue.pop."""
    rng = np.random.default_rng(31)
    messages = make_messages(rng, num_messages=25, num_systems=4)

    drained_queue = ParameterQueue(policy=get_policy(name))
    popped_queue = ParameterQueue(policy=get_policy(name))
    for message in messages:
        drained_queue.push(message)
        popped_queue.push(message)
    now = max(message.arrival_time for message in messages)

    drained = drained_queue.drain(now)
    popped = []
    while popped_queue:
        popped.append(popped_queue.pop(now))

    assert [m.sequence for m in drained] == [m.sequence for m in popped]
    assert drained_queue.processed_per_system() == popped_queue.processed_per_system()
    assert drained_queue.mean_waiting_time == pytest.approx(popped_queue.mean_waiting_time)


def test_round_robin_continues_cycle_after_drain():
    """Post-drain, _last_served sits where the pop loop would leave it."""
    rng = np.random.default_rng(4)
    messages = make_messages(rng, num_messages=10, num_systems=3)
    fast = ParameterQueue(policy=RoundRobinPolicy())
    slow = ParameterQueue(policy=RoundRobinPolicy())
    for message in messages:
        fast.push(message)
        slow.push(message)
    now = max(message.arrival_time for message in messages)
    fast.drain(now)
    while slow:
        slow.pop(now)
    assert fast.policy._last_served == slow.policy._last_served

    # A follow-up backlog must continue the cycle identically.
    follow_up = make_messages(rng, num_messages=6, num_systems=3)
    for message in follow_up:
        fast.push(message)
        slow.push(message)
    now = max(message.arrival_time for message in follow_up)
    fast_order = [m.sequence for m in fast.drain(now)]
    slow_order = []
    while slow:
        slow_order.append(slow.pop(now).sequence)
    assert fast_order == slow_order
