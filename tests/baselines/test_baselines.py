"""Tests for the baseline trainers (centralized, sequential split, FedAvg)."""

import numpy as np
import pytest

from repro.baselines.centralized import CentralizedTrainer
from repro.baselines.fedavg import FedAvgTrainer, average_state_dicts
from repro.baselines.vanilla_split import SequentialSplitTrainer
from repro.core.split import SplitSpec
from repro.data.loader import DataLoader


class TestCentralizedTrainer:
    def test_single_epoch_metrics(self, tiny_architecture, tiny_splits, normalize):
        train, test = tiny_splits
        trainer = CentralizedTrainer(tiny_architecture.build(seed=0))
        history = trainer.fit(train, test_dataset=test, epochs=1, batch_size=16,
                              transform=normalize, seed=0)
        assert len(history) == 1
        record = history.records[0]
        assert record.train_loss > 0
        assert record.test_accuracy is not None
        assert history.config["baseline"] == "centralized"

    def test_training_reduces_loss(self, tiny_architecture, tiny_splits, normalize):
        train, _ = tiny_splits
        trainer = CentralizedTrainer(tiny_architecture.build(seed=0))
        history = trainer.fit(train, epochs=3, batch_size=16, transform=normalize, seed=0)
        assert history.loss_curve()[-1] < history.loss_curve()[0]

    def test_train_epoch_updates_parameters(self, tiny_architecture, tiny_splits, normalize):
        train, _ = tiny_splits
        model = tiny_architecture.build(seed=0)
        before = model["output"].weight.data.copy()
        trainer = CentralizedTrainer(model)
        loader = DataLoader(train, batch_size=16, transform=normalize, seed=0)
        metrics = trainer.train_epoch(loader)
        assert not np.allclose(model["output"].weight.data, before)
        assert set(metrics) == {"loss", "accuracy"}

    def test_evaluate_without_transform(self, tiny_architecture, tiny_splits):
        _, test = tiny_splits
        trainer = CentralizedTrainer(tiny_architecture.build(seed=0))
        metrics = trainer.evaluate(test)
        assert 0.0 <= metrics["accuracy"] <= 1.0


class TestSequentialSplitTrainer:
    def test_requires_client_blocks(self, tiny_architecture, tiny_parts):
        spec = SplitSpec(tiny_architecture, client_blocks=0)
        with pytest.raises(ValueError, match="client block"):
            SequentialSplitTrainer(spec, tiny_parts)

    def test_requires_datasets(self, tiny_split_spec):
        with pytest.raises(ValueError):
            SequentialSplitTrainer(tiny_split_spec, [])

    def test_fit_runs_and_learns(self, tiny_split_spec, tiny_parts, tiny_splits, normalize):
        _, test = tiny_splits
        trainer = SequentialSplitTrainer(tiny_split_spec, tiny_parts, batch_size=16,
                                         seed=0, transform=normalize)
        history = trainer.fit(test_dataset=test, epochs=2)
        assert len(history) == 2
        assert history.loss_curve()[-1] < history.loss_curve()[0]
        assert history.records[-1].test_accuracy is not None

    def test_single_shared_client_segment(self, tiny_split_spec, tiny_parts, normalize):
        trainer = SequentialSplitTrainer(tiny_split_spec, tiny_parts, batch_size=16,
                                         seed=0, transform=normalize)
        before = trainer.client_model["L1_conv"].weight.data.copy()
        trainer.train_epoch(0)
        # One shared client segment is updated by every institution's data.
        assert not np.allclose(trainer.client_model["L1_conv"].weight.data, before)

    def test_evaluate_composes_segments(self, tiny_split_spec, tiny_parts, tiny_splits, normalize):
        _, test = tiny_splits
        trainer = SequentialSplitTrainer(tiny_split_spec, tiny_parts, seed=0, transform=normalize)
        metrics = trainer.evaluate(test)
        assert 0.0 <= metrics["accuracy"] <= 1.0


class TestFedAvg:
    def test_average_state_dicts_simple_mean(self):
        states = [{"w": np.array([1.0, 2.0])}, {"w": np.array([3.0, 4.0])}]
        averaged = average_state_dicts(states)
        np.testing.assert_allclose(averaged["w"], [2.0, 3.0])

    def test_average_state_dicts_weighted(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([10.0])}]
        averaged = average_state_dicts(states, weights=[3, 1])
        np.testing.assert_allclose(averaged["w"], [2.5])

    def test_average_state_dicts_validation(self):
        with pytest.raises(ValueError):
            average_state_dicts([])
        with pytest.raises(ValueError):
            average_state_dicts([{"w": np.zeros(1)}], weights=[1, 2])
        with pytest.raises(ValueError):
            average_state_dicts([{"w": np.zeros(1)}, {"v": np.zeros(1)}])
        with pytest.raises(ValueError):
            average_state_dicts([{"w": np.zeros(1)}], weights=[0.0])

    def test_fit_runs_and_reports(self, tiny_architecture, tiny_parts, tiny_splits, normalize):
        _, test = tiny_splits
        trainer = FedAvgTrainer(tiny_architecture, tiny_parts, local_epochs=1,
                                batch_size=16, seed=0, transform=normalize, lr=0.05)
        history = trainer.fit(test_dataset=test, rounds=2)
        assert len(history) == 2
        assert history.records[-1].test_accuracy is not None
        assert history.config["baseline"] == "fedavg"

    def test_round_changes_global_model(self, tiny_architecture, tiny_parts, normalize):
        trainer = FedAvgTrainer(tiny_architecture, tiny_parts, seed=0, transform=normalize)
        before = trainer.global_model["output"].weight.data.copy()
        trainer.train_round(0)
        assert not np.allclose(trainer.global_model["output"].weight.data, before)

    def test_identical_clients_average_equals_single_update(self, tiny_architecture, tiny_parts,
                                                            normalize):
        """Averaging N identical local updates must equal any one of them."""
        part = tiny_parts[0]
        trainer = FedAvgTrainer(tiny_architecture, [part, part], local_epochs=1,
                                batch_size=16, seed=0, transform=normalize)
        result = trainer._local_update(trainer.loaders[0], round_index=0)
        averaged = average_state_dicts([result["state"], result["state"]])
        for key in result["state"]:
            np.testing.assert_allclose(averaged[key], result["state"][key])

    def test_validation(self, tiny_architecture, tiny_parts):
        with pytest.raises(ValueError):
            FedAvgTrainer(tiny_architecture, [])
        with pytest.raises(ValueError):
            FedAvgTrainer(tiny_architecture, tiny_parts, local_epochs=0)
