"""Shared fixtures for the obs suite."""

import pytest

from obs_helpers import run_trainer


@pytest.fixture
def obs_run(tiny_split_spec, tiny_parts, normalize):
    """A finished obs-enabled run (drops + retries exercised)."""
    return run_trainer(tiny_split_spec, tiny_parts, normalize,
                       obs_enabled=True, obs_flush_every_s=0.005)
