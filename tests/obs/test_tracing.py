"""Tracer: seeded sampling, ring-buffer bounds, Chrome export schema."""

import json

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    validate_chrome_trace,
)


class TestSampling:
    def test_rate_extremes(self):
        always = Tracer(sample_rate=1.0, seed=7)
        never = Tracer(sample_rate=0.0, seed=7)
        for key in range(200):
            assert always.sampled(key)
            assert not never.sampled(key)

    def test_seeded_and_order_independent(self):
        """The decision is a pure function of (seed, key)."""
        a = Tracer(sample_rate=0.5, seed=42)
        b = Tracer(sample_rate=0.5, seed=42)
        keys = list(range(500))
        forward = [a.sampled(k) for k in keys]
        backward = [b.sampled(k) for k in reversed(keys)]
        assert forward == list(reversed(backward))
        # A different seed yields a different (but still deterministic)
        # subset at the same rate.
        c = Tracer(sample_rate=0.5, seed=43)
        assert [c.sampled(k) for k in keys] != forward

    def test_rate_is_roughly_honoured(self):
        tracer = Tracer(sample_rate=0.25, seed=3)
        hits = sum(tracer.sampled(k) for k in range(4000))
        assert 800 <= hits <= 1200  # 1000 expected

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)


class TestRingBuffer:
    def test_ring_keeps_newest_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant(f"e{i}", "test", float(i))
        assert tracer.emitted == 10
        assert len(tracer.events) == 4
        assert tracer.dropped == 6
        assert [event.name for event in tracer.events] == [
            "e6", "e7", "e8", "e9"]

    def test_span_clamps_negative_duration(self):
        tracer = Tracer()
        tracer.span("s", "test", 2.0, 1.5)
        event = tracer.events[0]
        assert event.dur_us == 0.0
        assert event.ts_us == pytest.approx(2e6)


class TestChromeExport:
    def test_export_schema_is_valid_and_json_serialisable(self):
        tracer = Tracer(sample_rate=0.5, seed=9, capacity=16)
        tracer.span("uplink", "message", 0.001, 0.004, pid=1, tid=3,
                    args={"seq": 17})
        tracer.instant("queue-drop", "message", 0.004, pid=1, tid=3)
        payload = tracer.chrome_trace()
        assert validate_chrome_trace(payload) == []
        decoded = json.loads(json.dumps(payload))
        assert decoded["displayTimeUnit"] == "ms"
        assert decoded["otherData"]["clock"] == "sim-time"
        assert decoded["otherData"]["seed"] == 9
        span, instant = decoded["traceEvents"]
        assert span["ph"] == "X" and span["dur"] == pytest.approx(3000.0)
        assert span["args"] == {"seq": 17}
        assert instant["ph"] == "i" and instant["s"] == "t"

    def test_validator_catches_malformed_events(self):
        bad = {"traceEvents": [
            {"name": "x", "cat": "c", "ph": "B", "ts": 0, "pid": 0, "tid": 0},
            {"name": "x", "cat": "c", "ph": "X", "ts": -1, "pid": 0, "tid": 0},
            {"name": "x", "cat": "c", "ph": "i", "ts": 0, "pid": "p", "tid": 0},
            "not-an-object",
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) >= 4
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []

    def test_validator_accepts_empty_trace(self):
        assert validate_chrome_trace(Tracer().chrome_trace()) == []


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        assert not tracer.enabled
        assert not tracer.sampled(0)
        tracer.span("s", "c", 0.0, 1.0)
        tracer.instant("i", "c", 0.0)
        assert tracer.emitted == 0
        assert len(tracer.events) == 0
        assert validate_chrome_trace(tracer.chrome_trace()) == []

    def test_shared_singleton_is_a_null_tracer(self):
        assert isinstance(NULL_TRACER, NullTracer)
