"""Helper shared by the obs suite: one tiny bounded-queue run."""

from repro.core.config import TrainingConfig
from repro.core.trainer import SpatioTemporalTrainer


def run_trainer(spec, parts, normalize, **overrides):
    """One tiny lossy run (drops + retries exercised); returns
    ``(trainer, history)``."""
    defaults = dict(max_queue_size=1, queue_backpressure="drop",
                    reliable_delivery=True)
    defaults.update(overrides)
    config = TrainingConfig.fast_debug(**defaults)
    trainer = SpatioTemporalTrainer(spec, parts, config,
                                    train_transform=normalize)
    history = trainer.train()
    return trainer, history
