"""The shared drop-accounting invariant (repro.obs.invariants)."""

import pytest

from repro.obs.invariants import (
    DropBalance,
    assert_drop_balance,
    drop_balance,
    drop_balance_from_metrics,
)


def balanced(**overrides):
    values = dict(notified=0, queue_dropped=0, transport_dropped=0,
                  nack_dropped=0, sync_dropped=0, failover_dropped=0,
                  deduped=0, gave_up=0, leaked=0)
    values.update(overrides)
    return DropBalance(**values)


class TestDropBalance:
    def test_expected_signs(self):
        balance = balanced(queue_dropped=5, transport_dropped=3,
                           nack_dropped=1, sync_dropped=2,
                           failover_dropped=4, deduped=2, gave_up=1)
        assert balance.expected == 5 + 3 - 1 - 2 + 4 - 2 + 1
        assert balanced(notified=8, queue_dropped=8).holds

    def test_leak_violates_even_when_balanced(self):
        assert not balanced(leaked=1).holds

    def test_describe_is_the_canonical_message(self):
        balance = balanced(notified=2, queue_dropped=1)
        assert balance.describe() == (
            "drop accounting out of balance: notified=2 expected=1 "
            "(queue=1, transport=0, nack=0, sync=0, failover=0, "
            "deduped=0, gave_up=0)")

    def test_as_dict_round_trips_through_metrics(self):
        balance = balanced(notified=3, queue_dropped=2, gave_up=1)
        metrics = {
            "clients.drops_notified": 3, "cluster.queue_dropped": 2,
            "traffic.dropped_messages": 0, "traffic.nack_dropped": 0,
            "traffic.sync_dropped": 0, "engine.failover_dropped": 0,
            "engine.deduped": 0, "engine.gave_up": 1,
            "clients.pending_batches": 0,
        }
        assert drop_balance_from_metrics(metrics) == balance
        assert balance.as_dict()["holds"] == 1

    def test_from_metrics_names_what_is_missing(self):
        with pytest.raises(KeyError, match="clients.drops_notified"):
            drop_balance_from_metrics({})

    def test_table_mentions_status(self):
        assert "BALANCED" in balanced().table()
        assert "VIOLATED" in balanced(notified=1).table()


class _StubQueue:
    def __init__(self, dropped):
        self.dropped = dropped


class _StubShard:
    def __init__(self, dropped):
        self.queue = _StubQueue(dropped)


class _StubEndSystem:
    def __init__(self, notified, pending=0):
        self.drops_notified = notified
        self.pending_batches = pending


class _Stub:
    """Duck-typed trainer exposing just what drop_balance reads."""

    def __init__(self, notified=0, queue=0, transport=0, nack=0, sync=0,
                 failover=0, deduped=0, gave_up=0, pending=0):
        self.transport = type("T", (), {})()
        self.transport.log = type("L", (), {
            "dropped_messages": transport, "nack_dropped": nack,
            "sync_dropped": sync})()
        self.engine = type("E", (), {})()
        self.engine.stats = type("S", (), {
            "failover_dropped": failover, "deduped": deduped,
            "gave_up": gave_up})()
        self.cluster = type("C", (), {})()
        self.cluster.shards = [_StubShard(queue)]
        self.end_systems = [_StubEndSystem(notified, pending)]


class TestLiveEvaluation:
    def test_balanced_trainer_passes(self):
        record = assert_drop_balance(_Stub(notified=2, queue=2))
        assert record.holds

    def test_imbalance_raises_with_canonical_message(self):
        with pytest.raises(AssertionError,
                           match="drop accounting out of balance"):
            assert_drop_balance(_Stub(notified=1))

    def test_leak_raises(self):
        with pytest.raises(AssertionError, match="pending activations leaked"):
            assert_drop_balance(_Stub(pending=3))

    def test_drop_balance_reads_all_terms(self):
        record = drop_balance(_Stub(notified=5, queue=1, transport=2, nack=1,
                                    sync=1, failover=3, deduped=1, gave_up=2))
        assert record.notified == 5
        assert record.expected == 1 + 2 - 1 - 1 + 3 - 1 + 2
        assert record.holds
