"""The live JSONL sink, the tolerant shared reader, and instrument
checkpointing — the obs pieces the run-server control plane rides on."""

import json

import pytest

from obs_helpers import run_trainer

from repro.obs.plane import Observability
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.obs.report import load_rows
from repro.obs.tracing import NULL_TRACER, Tracer


class TestStreamSink:
    def test_streamed_file_matches_export_byte_for_byte(
            self, tiny_split_spec, tiny_parts, normalize, tmp_path):
        """Every flush appends exactly the line the end-of-run export
        would contain — the property that lets the server serve
        ``metrics.jsonl`` live with no separate counter layer."""
        path = tmp_path / "metrics.jsonl"
        config_overrides = dict(obs_enabled=True, obs_flush_every_s=0.005)
        from repro.core.config import TrainingConfig
        from repro.core.trainer import SpatioTemporalTrainer
        trainer = SpatioTemporalTrainer(
            tiny_split_spec, tiny_parts,
            TrainingConfig.fast_debug(max_queue_size=1,
                                      queue_backpressure="drop",
                                      reliable_delivery=True,
                                      **config_overrides),
            train_transform=normalize)
        trainer.obs.stream_to(path)
        trainer.train()
        trainer.obs.close_stream()
        assert path.read_bytes() == trainer.obs.metrics_jsonl().encode()
        assert trainer.obs.flushes == len(path.read_text().splitlines())

    def test_append_mode_keeps_existing_rows(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        bundle = Observability(MetricsRegistry(), NULL_TRACER, enabled=True)
        bundle.registry.counter("x").inc(1.0)
        bundle.stream_to(path)
        bundle.flush(sim_time=0.5)
        bundle.close_stream()
        first = path.read_bytes()

        fresh = Observability(MetricsRegistry(), NULL_TRACER, enabled=True)
        fresh.registry.counter("x").inc(2.0)
        fresh.stream_to(path, append=True)
        fresh.flush(sim_time=1.0)
        fresh.close_stream()
        content = path.read_bytes()
        assert content.startswith(first)
        assert len(content.splitlines()) == 2

    def test_stream_to_is_noop_when_disabled(self, tmp_path):
        bundle = Observability(NULL_REGISTRY, NULL_TRACER, enabled=False)
        bundle.stream_to(tmp_path / "metrics.jsonl")
        bundle.flush(sim_time=0.5)
        bundle.close_stream()
        assert not (tmp_path / "metrics.jsonl").exists()


class TestTolerantReader:
    def rows(self, *ts):
        return "".join(json.dumps({"t": t, "metrics": []}) + "\n" for t in ts)

    def test_tolerates_torn_trailing_line(self, tmp_path):
        """``load_rows`` backs both ``repro.obs report`` and the server's
        metrics endpoint; a flush caught mid-write must not break either."""
        path = tmp_path / "metrics.jsonl"
        path.write_text(self.rows(0.1, 0.2) + '{"t": 0.3, "met')
        rows = load_rows(str(path), tolerant=True)
        assert [row["t"] for row in rows] == [0.1, 0.2]

    def test_tolerates_missing_trailing_newline(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(self.rows(0.1) + json.dumps({"t": 0.2, "metrics": []}))
        rows = load_rows(str(path), tolerant=True)
        assert [row["t"] for row in rows] == [0.1]

    def test_interior_corruption_still_raises(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text(self.rows(0.1) + "garbage\n" + self.rows(0.2))
        with pytest.raises(ValueError):
            load_rows(str(path), tolerant=True)


class TestInstrumentCheckpointing:
    def populated_registry(self):
        registry = MetricsRegistry()
        registry.counter("engine.drops", reason="queue_full").inc(4.0)
        registry.gauge("engine.inflight").set(2.0)
        histogram = registry.histogram("engine.queue_wait_seconds",
                                       (0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        return registry

    def test_round_trip_restores_every_instrument_kind(self):
        source = self.populated_registry()
        target = MetricsRegistry()
        target.restore_instruments(source.instruments_state())
        original = [s.as_dict() for s in source.collect()]
        restored = [s.as_dict() for s in target.collect()]
        assert restored == original

    def test_restore_merges_into_wired_instruments(self):
        """Restore order vs wiring order must not matter: the engine
        creates its histograms at construction, the checkpoint restore
        happens after — the state has to land in the same objects."""
        source = self.populated_registry()
        target = MetricsRegistry()
        wired = target.histogram("engine.queue_wait_seconds",
                                 (0.1, 1.0, 10.0))  # pre-wired, empty
        target.restore_instruments(source.instruments_state())
        assert wired.count == 4
        assert wired.total == pytest.approx(55.55)

    def test_resumed_run_continues_histogram_series(
            self, tiny_split_spec, tiny_parts, normalize, tmp_path):
        """Trainer-level: a resumed run's registry picks up the crashed
        run's instrument totals (via RunCheckpoint.obs_instruments), so
        its next flushed row continues the series instead of restarting
        the counts from zero."""
        from repro.core.config import TrainingConfig
        from repro.core.trainer import SpatioTemporalTrainer
        from repro.state import FileCheckpointStore

        common = dict(max_queue_size=1, queue_backpressure="drop",
                      reliable_delivery=True, obs_enabled=True,
                      obs_flush_every_s=0.005, checkpoint_every_s=0.005,
                      epochs=3)
        reference = SpatioTemporalTrainer(
            tiny_split_spec, tiny_parts,
            TrainingConfig.fast_debug(checkpoint_dir=str(tmp_path / "ref"),
                                      **common),
            train_transform=normalize)
        reference.train()

        interrupted = SpatioTemporalTrainer(
            tiny_split_spec, tiny_parts,
            TrainingConfig.fast_debug(checkpoint_dir=str(tmp_path / "crash"),
                                      **common),
            train_transform=normalize)
        interrupted.train(epochs=1)  # dies after one epoch
        resumed = SpatioTemporalTrainer.resume_from_store(
            FileCheckpointStore(tmp_path / "crash"), tiny_split_spec,
            tiny_parts, train_transform=normalize)
        resumed.train()

        snapshot = resumed.obs.last_snapshot()
        for name, value in reference.obs.last_snapshot().items():
            if name.startswith("perf."):
                continue  # process-scoped op counters, not replayable
            assert snapshot[name] == pytest.approx(value, abs=1e-9), name
