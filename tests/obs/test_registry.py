"""Typed metrics registry: instrument semantics, labels, collectors."""

import pytest

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
    samples_from_mapping,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.retries")
        counter.inc()
        counter.inc(3)
        sample = counter.sample()
        assert sample.value == 4.0
        assert sample.kind == "counter"
        assert sample.labels == ()

    def test_gauge_is_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        gauge.set(7)
        gauge.set(2)
        assert gauge.sample().value == 2.0

    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert (registry.histogram("h", (1.0,))
                is registry.histogram("h", (1.0,)))

    def test_labels_fork_series_order_independently(self):
        registry = MetricsRegistry()
        a = registry.counter("shard.drops", shard=0)
        b = registry.counter("shard.drops", shard=1)
        assert a is not b
        # Label order must not matter — the set is canonicalised.
        c = registry.counter("x", alpha=1, beta=2)
        d = registry.counter("x", beta=2, alpha=1)
        assert c is d
        assert c.labels == (("alpha", "1"), ("beta", "2"))

    def test_name_owns_one_kind(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("m")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.histogram("m", (1.0,))

    def test_histogram_bounds_must_match_across_labels(self):
        registry = MetricsRegistry()
        registry.histogram("wait", (0.1, 1.0), shard=0)
        with pytest.raises(ValueError, match="already registered with buckets"):
            registry.histogram("wait", (0.5, 1.0), shard=1)


class TestHistogramBuckets:
    def test_edges_are_inclusive(self):
        """A value equal to a bound lands in that bound's bucket."""
        histogram = Histogram("h", (1.0, 2.0, 5.0))
        for value in (0.0, 1.0, 1.5, 2.0, 5.0, 5.1):
            histogram.observe(value)
        # 0.0 and 1.0 -> <=1; 1.5 and 2.0 -> <=2; 5.0 -> <=5; 5.1 -> overflow
        assert histogram.counts == [2, 2, 1, 1]
        assert histogram.count == 6
        assert histogram.total == pytest.approx(14.6)

    def test_sample_carries_bounds_and_counts(self):
        histogram = Histogram("h", (1.0,))
        histogram.observe(0.5)
        histogram.observe(3.0)
        sample = histogram.sample()
        assert sample.bucket_bounds == (1.0,)
        assert sample.bucket_counts == (1, 1)
        assert sample.count == 2
        row = sample.as_dict()
        assert row["bucket_bounds"] == [1.0]
        assert row["bucket_counts"] == [1, 1]

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", ())
        with pytest.raises(ValueError, match="strictly ascending"):
            Histogram("h", (2.0, 1.0))
        with pytest.raises(ValueError, match="strictly ascending"):
            Histogram("h", (1.0, 1.0))


class TestCollection:
    def test_collect_is_sorted_and_merges_collectors(self):
        registry = MetricsRegistry()
        registry.counter("zz.last").inc()
        registry.counter("aa.first").inc(2)
        registry.register_collector(
            lambda: samples_from_mapping("mm", {"mid": 5}))
        names = [sample.name for sample in registry.collect()]
        assert names == ["aa.first", "mm.mid", "zz.last"]

    def test_samples_from_mapping_skips_non_numeric(self):
        rows = samples_from_mapping("s", {
            "count": 3, "ratio": 0.5, "node": "hub-0", "healthy": True,
            "nested": {"x": 1},
        })
        assert [(r.name, r.value) for r in rows] == [
            ("s.count", 3.0), ("s.ratio", 0.5)]

    def test_samples_from_mapping_applies_labels(self):
        rows = samples_from_mapping("shard", {"drops": 1}, labels={"shard": 2})
        assert rows[0].labels == (("shard", "2"),)
        assert rows[0].as_dict()["labels"] == {"shard": "2"}


class TestNullRegistry:
    def test_null_registry_is_inert(self):
        registry = NullRegistry()
        assert not registry.enabled
        counter = registry.counter("anything", shard=3)
        counter.inc(10)
        assert counter.value == 0.0
        gauge = registry.gauge("g")
        gauge.set(5)
        assert gauge.value == 0.0
        histogram = registry.histogram("h", (1.0, 2.0))
        histogram.observe(0.5)
        assert histogram.count == 0
        registry.register_collector(lambda: [])
        assert registry.collect() == []
        assert len(registry) == 0

    def test_null_instruments_are_shared(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
