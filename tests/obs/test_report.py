"""Report CLI: JSONL round-trip of a real run's metrics export."""

import json

import pytest

from repro.obs.__main__ import main as obs_main
from repro.obs.invariants import drop_balance_from_metrics
from repro.obs.report import load_rows, render_report, report_payload
from repro.obs.tracing import validate_chrome_trace


@pytest.fixture
def export(obs_run, tmp_path):
    trainer, _ = obs_run
    metrics_path, trace_path = trainer.obs.write(tmp_path)
    return trainer, metrics_path, trace_path


class TestRoundTrip:
    def test_jsonl_rows_load_and_flatten(self, export):
        trainer, metrics_path, _ = export
        rows = load_rows(str(metrics_path))
        assert len(rows) == trainer.obs.flushes
        assert all("t" in row and "metrics" in row for row in rows)
        # The export's last row re-proves the invariant without the
        # trainer — the property the report CLI relies on.
        balance = drop_balance_from_metrics(trainer.obs.last_snapshot())
        assert balance.holds
        assert balance.queue_dropped > 0  # the tiny queue actually shed

    def test_trace_export_passes_schema(self, export):
        trainer, _, trace_path = export
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["emitted"] == trainer.obs.tracer.emitted

    def test_rendered_report_contents(self, export):
        _, metrics_path, _ = export
        text, holds = render_report(load_rows(str(metrics_path)))
        assert holds
        assert "drop balance" in text
        assert "BALANCED" in text
        assert "engine.queue_wait_seconds" in text
        assert "engine.retries_per_transfer" in text
        assert text.rstrip().endswith("invariant: HOLDS")

    def test_payload_mirrors_render(self, export):
        _, metrics_path, _ = export
        payload = report_payload(load_rows(str(metrics_path)))
        assert payload["drop_balance"]["holds"] == 1
        assert payload["snapshots"] >= 1
        assert payload["headline"]["traffic.uplink_messages"] > 0
        assert json.loads(json.dumps(payload)) == payload


class TestCli:
    def test_table_exit_zero_when_invariant_holds(self, export, capsys):
        _, metrics_path, _ = export
        assert obs_main(["report", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "invariant: HOLDS" in out

    def test_json_format(self, export, capsys):
        _, metrics_path, _ = export
        assert obs_main(["report", str(metrics_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["drop_balance"]["holds"] == 1

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert obs_main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err

    def test_malformed_rows_exit_two(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_t": 1}\n')
        assert obs_main(["report", str(path)]) == 2

    def test_violated_invariant_exits_one(self, export, tmp_path, capsys):
        _, metrics_path, _ = export
        rows = load_rows(str(metrics_path))
        # Corrupt the notified counter so the ledger can't balance.
        for sample in rows[-1]["metrics"]:
            if sample["name"] == "clients.drops_notified":
                sample["value"] = sample["value"] + 1
        path = tmp_path / "violated.jsonl"
        path.write_text("".join(json.dumps(row) + "\n" for row in rows))
        assert obs_main(["report", str(path)]) == 1
        assert "VIOLATED" in capsys.readouterr().out
