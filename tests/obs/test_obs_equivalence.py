"""Obs-off runs are byte-identical; obs-on never perturbs the physics.

Two contracts:

* **obs-off == pre-obs.**  With ``obs_enabled=False`` (the default) the
  trainer carries the shared inert ``NULL_OBS`` bundle, no PRIORITY_OBS
  event is ever scheduled and the history has no observability block —
  same-seed runs stay bit-for-bit reproducible.
* **obs-on is read-only.**  Turning the plane on adds flush events to
  the simulator (so ``events_processed`` legitimately grows) but must
  not change anything physical: weights, traffic ledger, accuracy,
  drops, simulated time.
"""

import json

from repro.obs.plane import NULL_OBS

from obs_helpers import run_trainer


def physical_view(trainer, history):
    """Everything the simulation physics determines (no obs bookkeeping)."""
    queue_stats = {key: value for key, value in history.queue_stats.items()
                   if key not in ("observability", "engine_events")}
    states = [
        {name: value.copy() for name, value in shard.server.state_dict().items()}
        for shard in trainer.cluster.shards
    ]
    return {
        "traffic": trainer.transport.log.summary(),
        "queue_stats": queue_stats,
        "accuracy": history.accuracy_curve(),
        "loss": history.loss_curve(),
        "simulated_time": history.total_simulated_time,
        "notified": sum(es.drops_notified for es in trainer.end_systems),
    }, states


def assert_same_physics(a, b):
    view_a, states_a = a
    view_b, states_b = b
    assert view_a == view_b
    assert len(states_a) == len(states_b)
    for state_a, state_b in zip(states_a, states_b):
        assert state_a.keys() == state_b.keys()
        for name in state_a:
            assert (state_a[name] == state_b[name]).all(), name


class TestObsOff:
    def test_default_run_carries_the_shared_null_bundle(
            self, tiny_split_spec, tiny_parts, normalize):
        trainer, history = run_trainer(tiny_split_spec, tiny_parts, normalize)
        assert trainer.obs is NULL_OBS
        assert trainer.engine.obs is NULL_OBS
        assert "observability" not in history.queue_stats
        assert history.observability() == {}
        assert trainer.obs.rows == []
        assert len(trainer.obs.tracer.events) == 0

    def test_same_seed_runs_are_byte_identical(
            self, tiny_split_spec, tiny_parts, normalize):
        first = run_trainer(tiny_split_spec, tiny_parts, normalize)
        second = run_trainer(tiny_split_spec, tiny_parts, normalize)
        assert_same_physics(physical_view(*first), physical_view(*second))
        # Byte-level: the serialized histories match exactly.
        assert (json.dumps(first[1].summary(), sort_keys=True, default=str)
                == json.dumps(second[1].summary(), sort_keys=True,
                              default=str))


class TestObsOnEquivalence:
    def test_obs_on_changes_nothing_physical(
            self, tiny_split_spec, tiny_parts, normalize):
        off = run_trainer(tiny_split_spec, tiny_parts, normalize)
        on = run_trainer(tiny_split_spec, tiny_parts, normalize,
                         obs_enabled=True, obs_flush_every_s=0.005)
        assert_same_physics(physical_view(*off), physical_view(*on))
        # ...while the plane itself did observe the run.
        trainer_on = on[0]
        assert trainer_on.obs.flushes >= 1
        assert trainer_on.obs.tracer.emitted > 0
        assert on[1].observability()["flushes"] == trainer_on.obs.flushes

    def test_sampled_tracing_is_deterministic(
            self, tiny_split_spec, tiny_parts, normalize):
        kwargs = dict(obs_enabled=True, obs_trace_sample_rate=0.5)
        first = run_trainer(tiny_split_spec, tiny_parts, normalize, **kwargs)
        second = run_trainer(tiny_split_spec, tiny_parts, normalize, **kwargs)
        trace_a = first[0].obs.tracer.chrome_trace()
        trace_b = second[0].obs.tracer.chrome_trace()
        assert json.dumps(trace_a, sort_keys=True) == json.dumps(
            trace_b, sort_keys=True)
        # Half-rate sampling really does thin the uplink spans out.
        full = run_trainer(tiny_split_spec, tiny_parts, normalize,
                           obs_enabled=True, obs_trace_sample_rate=1.0)
        assert (first[0].obs.tracer.emitted
                < full[0].obs.tracer.emitted)
