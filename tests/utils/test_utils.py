"""Tests for the shared utilities (rng, tables, timer, logging)."""

import logging
import time

import numpy as np
import pytest

from repro.utils.logging import get_logger, set_verbosity
from repro.utils.rng import SeedSequence, seeded_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.timer import Timer


class TestRng:
    def test_seeded_rng_reproducible(self):
        assert seeded_rng(3).random() == seeded_rng(3).random()

    def test_spawn_rngs_independent_and_reproducible(self):
        first = [generator.random() for generator in spawn_rngs(0, 3)]
        second = [generator.random() for generator in spawn_rngs(0, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_rngs_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)

    def test_seed_sequence_same_name_same_stream(self):
        seeds = SeedSequence(7)
        assert seeds.generator("model").random() == SeedSequence(7).generator("model").random()

    def test_seed_sequence_different_names_differ(self):
        seeds = SeedSequence(7)
        assert seeds.generator("model").random() != seeds.generator("data").random()

    def test_seed_sequence_generators_list(self):
        generators = SeedSequence(1).generators(["a", "b", "c"])
        assert len(generators) == 3
        assert all(isinstance(generator, np.random.Generator) for generator in generators)

    def test_none_seed_accepted(self):
        assert SeedSequence(None).generator("x") is not None


class TestTables:
    def test_basic_rendering(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bbbb", 2.0]])
        lines = table.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.50" in table and "bbbb" in table

    def test_title_line(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        table = format_table(["col"], [["short"], ["a much longer cell"]])
        lines = table.splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3].rstrip()) or True
        assert "a much longer cell" in table

    def test_custom_float_format(self):
        assert "3.1416" in format_table(["pi"], [[3.14159265]], float_format="{:.4f}")

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])


class TestTimer:
    def test_sections_accumulate(self):
        timer = Timer()
        with timer.section("work"):
            time.sleep(0.01)
        with timer.section("work"):
            time.sleep(0.01)
        assert timer.count("work") == 2
        assert timer.total("work") >= 0.02
        assert timer.mean("work") >= 0.01

    def test_unknown_section_defaults(self):
        timer = Timer()
        assert timer.total("missing") == 0.0
        assert timer.mean("missing") == 0.0

    def test_summary_lists_sections(self):
        timer = Timer()
        with timer.section("alpha"):
            pass
        with timer.section("beta"):
            pass
        summary = timer.summary()
        assert "alpha" in summary and "beta" in summary
        assert timer.sections() == ["alpha", "beta"]


class TestLogging:
    def test_loggers_share_repro_namespace(self):
        assert get_logger("core.trainer").name == "repro.core.trainer"
        assert get_logger("repro.already.prefixed").name == "repro.already.prefixed"
        assert get_logger().name == "repro"

    def test_set_verbosity(self):
        set_verbosity(logging.DEBUG)
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity(logging.WARNING)
        assert logging.getLogger("repro").level == logging.WARNING
