"""Dedicated coverage for `repro.utils.perf.WorkspaceCache` eviction.

The cache was previously exercised only incidentally through the nn hot
paths; these tests pin its contract directly: LRU eviction under
``max_bytes`` pressure, the `_evict` keep-semantics (the buffer that
triggered the eviction is never evicted, even when it is the oldest),
and `clear()` under interleaved `get`s.
"""

import numpy as np

from repro.utils.perf import PerfCounters, WorkspaceCache, counters, track


def fill_marker(buffer, value):
    buffer.fill(value)
    return buffer


class TestBasicReuse:
    def test_same_key_returns_same_buffer(self):
        cache = WorkspaceCache()
        first = cache.get("tag", (4, 4), np.float32)
        second = cache.get("tag", (4, 4), np.float32)
        assert first is second

    def test_distinct_tags_shapes_dtypes_are_distinct_buffers(self):
        cache = WorkspaceCache()
        base = cache.get("a", (4,), np.float32)
        assert cache.get("b", (4,), np.float32) is not base
        assert cache.get("a", (5,), np.float32) is not base
        assert cache.get("a", (4,), np.float64) is not base
        assert len(cache) == 4

    def test_hit_and_miss_counters(self):
        cache = WorkspaceCache()
        with track() as delta:
            cache.get("t", (8,), np.float64)
            cache.get("t", (8,), np.float64)
        assert delta["workspace_misses"] == 1
        assert delta["workspace_hits"] == 1
        assert delta["workspace_bytes_allocated"] == 64


class TestEviction:
    def test_lru_evicted_under_byte_pressure(self):
        # Each float64 buffer of 16 elements is 128 bytes; cap at 3.
        cache = WorkspaceCache(max_bytes=3 * 128)
        for name in ("a", "b", "c"):
            cache.get(name, (16,), np.float64)
        assert len(cache) == 3
        with track() as delta:
            cache.get("d", (16,), np.float64)  # evicts "a" (least recent)
        assert delta["workspace_evictions"] == 1
        assert delta["workspace_bytes_evicted"] == 128
        assert len(cache) == 3
        # "a" is gone: requesting it again is a miss (and evicts "b").
        with track() as delta:
            cache.get("a", (16,), np.float64)
        assert delta["workspace_misses"] == 1

    def test_recent_use_protects_from_eviction(self):
        cache = WorkspaceCache(max_bytes=3 * 128)
        buffers = {name: cache.get(name, (16,), np.float64) for name in "abc"}
        # Touch "a" so "b" becomes the least recently used.
        cache.get("a", (16,), np.float64)
        cache.get("d", (16,), np.float64)
        assert cache.get("a", (16,), np.float64) is buffers["a"]  # survived
        with track() as delta:
            cache.get("b", (16,), np.float64)  # evicted above -> miss
        assert delta["workspace_misses"] == 1

    def test_evict_keeps_the_triggering_buffer(self):
        # A single oversized buffer exceeds the cap by itself; _evict must
        # keep it (it is the buffer being handed out) rather than evict it.
        cache = WorkspaceCache(max_bytes=100)
        big = cache.get("big", (64,), np.float64)  # 512 bytes > cap
        assert len(cache) == 1
        assert cache.cached_bytes == 512
        # And the same oversized buffer is still a hit afterwards.
        assert cache.get("big", (64,), np.float64) is big

    def test_oversized_newcomer_evicts_everyone_else_but_itself(self):
        cache = WorkspaceCache(max_bytes=300)
        for name in ("a", "b"):
            cache.get(name, (16,), np.float64)
        with track() as delta:
            huge = cache.get("huge", (64,), np.float64)  # 512 bytes
        assert delta["workspace_evictions"] == 2
        assert len(cache) == 1
        assert cache.get("huge", (64,), np.float64) is huge

    def test_eviction_cascade_counts_bytes(self):
        cache = WorkspaceCache(max_bytes=4 * 128)
        for name in "abcd":
            cache.get(name, (16,), np.float64)
        with track() as delta:
            cache.get("wide", (32,), np.float64)  # 256 bytes -> evict 2 LRU
        assert delta["workspace_evictions"] == 2
        assert delta["workspace_bytes_evicted"] == 256


class TestClear:
    def test_clear_under_interleaved_gets(self):
        cache = WorkspaceCache()
        first = fill_marker(cache.get("t", (4,), np.float32), 1.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.cached_bytes == 0
        # A get after clear() is a fresh miss; the old buffer object is
        # detached from the cache (caller-held references stay valid).
        with track() as delta:
            second = cache.get("t", (4,), np.float32)
        assert delta["workspace_misses"] == 1
        assert second is not first
        np.testing.assert_array_equal(first, np.full(4, 1.0, dtype=np.float32))
        # Interleave more gets and clears.
        cache.get("u", (8,), np.float64)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get("u", (8,), np.float64).shape == (8,)


class TestPerfCounters:
    def test_snapshot_reset_roundtrip(self):
        local = PerfCounters()
        local.add("x")
        local.add("x", 4)
        assert local.get("x") == 5
        assert local.snapshot() == {"x": 5}
        local.reset()
        assert local.get("x") == 0

    def test_track_reports_only_deltas(self):
        counters.add("tracked_thing", 3)
        with track() as delta:
            counters.add("tracked_thing", 2)
        assert delta["tracked_thing"] == 2
