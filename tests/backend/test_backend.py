"""Tests for the pluggable compute backend (`repro.backend`)."""

import numpy as np
import pytest

from repro.backend import (
    Backend,
    BlockedBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.utils.perf import counters


@pytest.fixture(autouse=True)
def _restore_backend():
    previous = get_backend()
    yield
    set_backend(previous)


class TestRegistry:
    def test_available_backends(self):
        assert available_backends() == ["blocked", "numpy"]

    def test_set_backend_by_name(self):
        backend = set_backend("numpy")
        assert isinstance(backend, NumpyBackend)
        assert get_backend() is backend

    def test_set_backend_instance(self):
        instance = BlockedBackend(block_rows=64)
        assert set_backend(instance) is instance
        assert get_backend() is instance

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            set_backend("cuda")

    def test_non_backend_rejected(self):
        with pytest.raises(TypeError):
            set_backend(42)

    def test_use_backend_restores_previous(self):
        set_backend("numpy")
        with use_backend("blocked") as active:
            assert isinstance(active, BlockedBackend)
            assert get_backend() is active
        assert isinstance(get_backend(), NumpyBackend)

    def test_use_backend_restores_on_error(self):
        set_backend("numpy")
        with pytest.raises(RuntimeError):
            with use_backend("blocked"):
                raise RuntimeError("boom")
        assert isinstance(get_backend(), NumpyBackend)

    def test_abstract_interface_raises(self):
        backend = Backend()
        with pytest.raises(NotImplementedError):
            backend.gemm(np.eye(2), np.eye(2))
        with pytest.raises(NotImplementedError):
            backend.elementwise("relu", np.zeros(2))
        with pytest.raises(NotImplementedError):
            backend.reduce("sum", np.zeros(2))


class TestNumpyBackendGemm:
    def test_matches_matmul(self, rng):
        a = rng.standard_normal((7, 5))
        b = rng.standard_normal((5, 3))
        np.testing.assert_array_equal(NumpyBackend().gemm(a, b), a @ b)

    def test_out_parameter_is_written_and_returned(self, rng):
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 4))
        out = np.empty((4, 4))
        result = NumpyBackend().gemm(a, b, out=out)
        assert result is out
        np.testing.assert_array_equal(out, a @ b)

    def test_bias_epilogue(self, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 2))
        bias = rng.standard_normal(2)
        np.testing.assert_allclose(
            NumpyBackend().gemm(a, b, bias=bias), a @ b + bias, rtol=1e-12
        )

    def test_relu_epilogue(self, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 2))
        bias = rng.standard_normal(2)
        expected = np.maximum(a @ b + bias, 0.0)
        np.testing.assert_allclose(
            NumpyBackend().gemm(a, b, bias=bias, activation="relu"), expected,
            rtol=1e-12,
        )

    def test_counts_gemm_calls(self, rng):
        a = rng.standard_normal((3, 3))
        before = counters.get("gemm_calls")
        NumpyBackend().gemm(a, a)
        assert counters.get("gemm_calls") == before + 1


class TestBlockedBackend:
    def test_small_problem_defers_to_direct(self, rng):
        backend = BlockedBackend(block_rows=64)
        a = rng.standard_normal((32, 8))
        b = rng.standard_normal((8, 4))
        before = counters.get("backend_gemm_blocked")
        np.testing.assert_array_equal(backend.gemm(a, b), a @ b)
        assert counters.get("backend_gemm_blocked") == before

    def test_large_problem_tiles_and_matches_reference(self, rng):
        backend = BlockedBackend(block_rows=16)
        a = rng.standard_normal((100, 12))
        b = rng.standard_normal((12, 5))
        bias = rng.standard_normal(5)
        before_tiles = counters.get("backend_gemm_tiles")
        result = backend.gemm(a, b, bias=bias, activation="relu")
        expected = np.maximum(a @ b + bias, 0.0)
        np.testing.assert_allclose(result, expected, rtol=1e-12)
        # ceil(100 / 16) = 7 tiles
        assert counters.get("backend_gemm_tiles") == before_tiles + 7

    def test_out_parameter_on_tiled_path(self, rng):
        backend = BlockedBackend(block_rows=8)
        a = rng.standard_normal((40, 6))
        b = rng.standard_normal((6, 3))
        out = np.empty((40, 3))
        result = backend.gemm(a, b, out=out)
        assert result is out
        np.testing.assert_allclose(out, a @ b, rtol=1e-12)

    def test_non_2d_defers(self, rng):
        backend = BlockedBackend(block_rows=1)
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((2, 4, 5))
        np.testing.assert_allclose(backend.gemm(a, b), a @ b, rtol=1e-12)

    def test_invalid_block_rows(self):
        with pytest.raises(ValueError):
            BlockedBackend(block_rows=0)


class TestElementwiseAndReduce:
    @pytest.fixture(params=["numpy", "blocked"])
    def backend(self, request):
        return {"numpy": NumpyBackend, "blocked": BlockedBackend}[request.param]()

    def test_relu(self, backend):
        x = np.array([-1.0, 0.0, 2.5])
        np.testing.assert_array_equal(backend.elementwise("relu", x), [0.0, 0.0, 2.5])

    def test_relu_preserves_float32(self, backend):
        x = np.array([-1.0, 2.0], dtype=np.float32)
        assert backend.elementwise("relu", x).dtype == np.float32

    def test_binary_op_with_out(self, backend, rng):
        x = rng.standard_normal(8)
        y = rng.standard_normal(8)
        out = np.empty(8)
        result = backend.elementwise("add", x, y, out=out)
        assert result is out
        np.testing.assert_array_equal(out, x + y)

    def test_unknown_elementwise_raises(self, backend):
        with pytest.raises(KeyError, match="unknown elementwise op"):
            backend.elementwise("frobnicate", np.zeros(2))

    def test_reduce_sum_axis_keepdims(self, backend, rng):
        x = rng.standard_normal((4, 6))
        np.testing.assert_allclose(
            backend.reduce("sum", x, axis=1, keepdims=True),
            x.sum(axis=1, keepdims=True),
        )

    def test_reduce_max_and_argmax(self, backend, rng):
        x = rng.standard_normal((5, 3))
        np.testing.assert_array_equal(backend.reduce("max", x, axis=0), x.max(axis=0))
        np.testing.assert_array_equal(
            backend.reduce("argmax", x, axis=1), x.argmax(axis=1)
        )

    def test_unknown_reduction_raises(self, backend):
        with pytest.raises(KeyError, match="unknown reduction"):
            backend.reduce("median", np.zeros(3))


class TestBackendThreadsThroughOps:
    def test_dense_forward_uses_active_backend(self, rng):
        from repro.nn import Dense, Tensor

        recorded = {}

        class Spy(NumpyBackend):
            def gemm(self, a, b, out=None, *, bias=None, activation=None):
                recorded["bias"] = bias
                return super().gemm(a, b, out=out, bias=bias, activation=activation)

        layer = Dense(4, 3, rng=rng)
        with use_backend(Spy()):
            out = layer(Tensor(rng.standard_normal((2, 4))))
        assert out.shape == (2, 3)
        assert recorded["bias"] is layer.bias.data

    def test_conv_activation_epilogue_matches_separate_relu(self, rng):
        from repro.nn import Conv2D, ReLU, Tensor, no_grad
        from repro.utils.perf import counters as perf_counters

        init_rng = np.random.default_rng(3)
        fused = Conv2D(2, 4, kernel_size=3, activation="relu", rng=init_rng)
        init_rng = np.random.default_rng(3)
        separate = Conv2D(2, 4, kernel_size=3, rng=init_rng)
        x = rng.standard_normal((3, 2, 5, 5))

        # Inference: the clamp rides the GEMM epilogue.
        before = perf_counters.get("backend_fused_activation")
        with no_grad():
            fused_out = fused(Tensor(x))
            reference = ReLU()(separate(Tensor(x)))
        assert perf_counters.get("backend_fused_activation") > before
        np.testing.assert_allclose(fused_out.data, reference.data, rtol=1e-12)

        # Training: the epilogue is a regular graph node with exact grads.
        inputs_fused = Tensor(x, requires_grad=True)
        inputs_ref = Tensor(x, requires_grad=True)
        fused(inputs_fused).sum().backward()
        ReLU()(separate(inputs_ref)).sum().backward()
        np.testing.assert_allclose(inputs_fused.grad, inputs_ref.grad,
                                   rtol=1e-12, atol=1e-12)

    def test_conv_rejects_unknown_activation(self):
        from repro.nn import Conv2D

        with pytest.raises(ValueError, match="activation"):
            Conv2D(2, 4, activation="gelu")

    def test_blocked_and_numpy_training_agree(self, rng):
        """A conv+dense forward/backward matches across backends to round-off."""
        from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential, Tensor
        from repro.nn import functional as F

        def run(backend_name):
            with use_backend(backend_name):
                model_rng = np.random.default_rng(7)
                model = Sequential([
                    Conv2D(2, 4, kernel_size=3, rng=model_rng),
                    ReLU(),
                    MaxPool2D(2),
                    Flatten(),
                    Dense(16, 3, rng=model_rng),
                ])
                x = Tensor(rng.standard_normal((5, 2, 4, 4)), requires_grad=True)
                loss = F.cross_entropy(model(x), np.array([0, 1, 2, 0, 1]))
                loss.backward()
                return loss.item(), x.grad.copy()

        rng_state = rng.bit_generator.state
        loss_numpy, grad_numpy = run("numpy")
        rng.bit_generator.state = rng_state
        loss_blocked, grad_blocked = run(BlockedBackend(block_rows=2))
        assert loss_numpy == pytest.approx(loss_blocked, rel=1e-12)
        np.testing.assert_allclose(grad_numpy, grad_blocked, rtol=1e-12, atol=1e-12)
