"""Tests for links, topologies and the transport layer."""

import numpy as np
import pytest

from repro.simnet.latency import ConstantLatency
from repro.simnet.link import Link, Message, payload_bytes
from repro.simnet.topology import WORLD_CITIES, GeoTopology, geo_star_topology, star_topology
from repro.simnet.transport import TrafficLog, Transport


class TestPayloadBytes:
    def test_numpy_array(self):
        assert payload_bytes(np.zeros((4, 4), dtype=np.float64)) == 128

    def test_dict_and_list_recursive(self):
        payload = {"a": np.zeros(2), "b": [np.zeros(4), np.zeros(4)]}
        assert payload_bytes(payload) > 16 + 32 + 64

    def test_none_and_scalars(self):
        assert payload_bytes(None) == 0
        assert payload_bytes(42) == 64


class TestLink:
    def test_transfer_time_includes_latency_and_bandwidth(self):
        link = Link(latency=ConstantLatency(0.010), bandwidth_bps=8e6)  # 1 MB/s
        assert link.transfer_time(1_000_000) == pytest.approx(0.010 + 1.0)
        assert link.expected_transfer_time(0) == pytest.approx(0.010)

    def test_infinite_bandwidth(self):
        link = Link(latency=ConstantLatency(0.005), bandwidth_bps=None)
        assert link.transfer_time(10 ** 9) == pytest.approx(0.005)

    def test_send_stamps_arrival_time(self):
        link = Link(latency=ConstantLatency(0.02), bandwidth_bps=None)
        message = link.send("client", "server", np.zeros(10), now=5.0)
        assert isinstance(message, Message)
        assert message.arrival_time == pytest.approx(5.02)
        assert message.transit_time == pytest.approx(0.02)
        assert message.size_bytes == 80

    def test_drop_probability_one_is_rejected_but_high_drop_works(self):
        with pytest.raises(ValueError):
            Link(drop_probability=1.0)
        link = Link(latency=ConstantLatency(0.0), drop_probability=0.99, seed=0)
        results = [link.send("a", "b", np.zeros(1), now=0.0) for _ in range(200)]
        dropped = sum(result is None for result in results)
        assert dropped > 150
        assert link.stats()["drop_rate"] == pytest.approx(dropped / 200)

    def test_stats_counters(self):
        link = Link(latency=ConstantLatency(0.001), seed=0)
        link.send("a", "b", np.zeros(100), now=0.0)
        stats = link.stats()
        assert stats["messages_sent"] == 1
        assert stats["bytes_sent"] == 800

    def test_validation(self):
        with pytest.raises(ValueError):
            Link(bandwidth_bps=0)


class TestTopology:
    def test_star_topology_structure(self):
        topology = star_topology(3, latencies_s=[0.001, 0.002, 0.003])
        assert topology.server == "server"
        assert len(topology.end_systems) == 3
        latencies = topology.mean_latencies()
        assert latencies["end_system_2"] == pytest.approx(0.003)

    def test_star_topology_default_latencies(self):
        topology = star_topology(2)
        assert all(latency == pytest.approx(0.005) for latency in topology.mean_latencies().values())

    def test_star_topology_with_jitter(self):
        topology = star_topology(2, jitter_std_s=0.001)
        samples = {name: topology.uplink(name).transfer_time(0) for name in topology.end_systems}
        assert all(value > 0 for value in samples.values())

    def test_star_topology_validation(self):
        with pytest.raises(ValueError):
            star_topology(0)
        with pytest.raises(ValueError):
            star_topology(3, latencies_s=[0.001])

    def test_geo_star_topology_latency_orders_by_distance(self):
        topology = geo_star_topology(["tokyo", "new_york"], server_city="seoul",
                                     jitter_std_s=0.0)
        latencies = topology.mean_latencies()
        tokyo = [v for k, v in latencies.items() if "tokyo" in k][0]
        new_york = [v for k, v in latencies.items() if "new_york" in k][0]
        assert new_york > tokyo

    def test_geo_star_topology_unknown_city(self):
        with pytest.raises(KeyError, match="unknown cities"):
            geo_star_topology(["atlantis"])

    def test_manual_topology_api(self):
        topology = GeoTopology()
        topology.add_node("server", role="server")
        topology.add_node("clinic", role="end_system")
        topology.add_link("clinic", "server", Link(latency=ConstantLatency(0.001)))
        assert topology.uplink("clinic").latency.mean() == pytest.approx(0.001)
        assert topology.coordinates("clinic") is None
        with pytest.raises(ValueError):
            topology.add_node("clinic")
        with pytest.raises(KeyError):
            topology.add_link("clinic", "ghost", Link())
        with pytest.raises(KeyError):
            topology.link("server", "ghost")

    def test_server_property_requires_exactly_one_server(self):
        topology = GeoTopology()
        topology.add_node("a", role="end_system")
        with pytest.raises(ValueError):
            _ = topology.server

    def test_world_cities_have_coordinates(self):
        assert all(len(coords) == 2 for coords in WORLD_CITIES.values())
        assert "seoul" in WORLD_CITIES


class TestAsymmetricLinks:
    def test_star_topology_has_separate_downlinks(self):
        topology = star_topology(2)
        for name in topology.end_systems:
            assert topology.downlink(name) is not topology.uplink(name)
            assert topology.uplink(name).direction == "up"
            assert topology.downlink(name).direction == "down"

    def test_geo_star_topology_has_separate_downlinks(self):
        topology = geo_star_topology(["tokyo", "new_york"], server_city="seoul")
        for name in topology.end_systems:
            assert topology.downlink(name) is not topology.uplink(name)

    def test_downlink_latency_override(self):
        topology = star_topology(2, latencies_s=[0.001, 0.002],
                                 downlink_latencies_s=[0.01, 0.02])
        assert topology.uplink("end_system_1").latency.mean() == pytest.approx(0.002)
        assert topology.downlink("end_system_1").latency.mean() == pytest.approx(0.02)

    def test_symmetric_fallback_without_downlink(self):
        topology = GeoTopology()
        topology.add_node("server", role="server")
        topology.add_node("clinic", role="end_system")
        topology.add_link("clinic", "server", Link(latency=ConstantLatency(0.001)))
        assert topology.downlink("clinic") is topology.uplink("clinic")

    def test_transport_downlink_traffic_does_not_touch_uplink(self):
        """Regression: send_to_end_system used topology.uplink(), commingling
        gradient-return traffic into the uplink's counters."""
        topology = star_topology(1)
        transport = Transport(topology)
        transport.send_to_end_system("end_system_0", np.zeros(100), now=0.0)
        assert topology.uplink("end_system_0").messages_sent == 0
        assert topology.downlink("end_system_0").messages_sent == 1
        assert transport.log.downlink_messages == 1
        assert transport.log.uplink_messages == 0

    def test_per_direction_drop_counters(self):
        topology = star_topology(1, drop_probability=0.0,
                                 downlink_drop_probability=0.99, seed=0)
        transport = Transport(topology)
        for _ in range(100):
            transport.send_to_server("end_system_0", np.zeros(4), now=0.0)
            transport.send_to_end_system("end_system_0", np.zeros(4), now=0.0)
        assert transport.log.uplink_dropped == 0
        assert transport.log.downlink_dropped > 50
        assert transport.log.dropped_messages == transport.log.downlink_dropped
        totals = topology.dropped_totals()
        assert totals["uplink"] == 0
        assert totals["downlink"] == transport.log.downlink_dropped

    def test_stats_direction_argument(self):
        topology = star_topology(1)
        assert topology.stats("up")["end_system_0"]["direction"] == "up"
        assert topology.stats("down")["end_system_0"]["direction"] == "down"
        with pytest.raises(ValueError):
            topology.stats("sideways")


class TestTransport:
    def make_transport(self, latency=0.01):
        topology = star_topology(2, latencies_s=[latency, latency])
        return Transport(topology), topology

    def test_send_to_server_records_uplink(self):
        transport, _ = self.make_transport()
        message = transport.send_to_server("end_system_0", np.zeros(100), now=0.0)
        assert message.arrival_time > 0.0
        assert transport.log.uplink_messages == 1
        assert transport.log.uplink_bytes == 800

    def test_send_to_end_system_records_downlink(self):
        transport, _ = self.make_transport()
        transport.send_to_end_system("end_system_1", np.zeros(50), now=1.0)
        assert transport.log.downlink_messages == 1
        assert transport.log.total_bytes == 400

    def test_clock_is_monotone(self):
        transport, _ = self.make_transport()
        transport.send_to_server("end_system_0", np.zeros(1), now=5.0)
        transport.send_to_server("end_system_0", np.zeros(1), now=1.0)
        assert transport.now == 5.0

    def test_clock_does_not_rewrite_send_times(self):
        """A late observation on one link must not delay an independent
        transfer that was handed over earlier."""
        transport, _ = self.make_transport(latency=0.01)
        transport.send_to_server("end_system_0", np.zeros(1), now=5.0)
        message = transport.send_to_server("end_system_1", np.zeros(1), now=1.0)
        assert message.created_at == pytest.approx(1.0)
        assert message.arrival_time < 5.0

    def test_dropped_messages_counted(self):
        topology = star_topology(1, latencies_s=[0.001], drop_probability=0.9, seed=0)
        transport = Transport(topology)
        for _ in range(50):
            transport.send_to_server("end_system_0", np.zeros(10), now=0.0)
        assert transport.log.dropped_messages > 20

    def test_summary_and_reset(self):
        transport, _ = self.make_transport()
        transport.send_to_server("end_system_0", np.zeros(10), now=0.0)
        summary = transport.log.summary()
        assert summary["uplink_messages"] == 1
        assert summary["mean_transit_time_s"] > 0
        old_log = transport.reset_log()
        assert isinstance(old_log, TrafficLog)
        assert transport.log.uplink_messages == 0

    def test_empty_log_statistics(self):
        log = TrafficLog()
        assert log.mean_transit_time == 0.0
        assert log.max_transit_time == 0.0
        assert log.total_bytes == 0


class TestNodeHealthAndRerouting:
    """Failure-injection support: hub down-marking and uplink rerouting."""

    def make_multi_hub(self):
        from repro.simnet.topology import multi_hub_star_topology

        return multi_hub_star_topology(4, 2, latencies_s=[0.002] * 4, seed=0)

    def test_nodes_default_up(self):
        topology = self.make_multi_hub()
        assert topology.is_up("server_0")
        assert topology.is_up("end_system_0")
        with pytest.raises(KeyError):
            topology.is_up("nowhere")

    def test_down_hub_kills_incident_links(self):
        topology = self.make_multi_hub()
        transport = Transport(topology)
        topology.set_node_up("server_1", False)
        # end_system_1 hangs off server_1 (static_hash: 1 % 2).
        assert topology.uplink("end_system_1").up is False
        assert topology.downlink("end_system_1").up is False
        assert topology.inter_server_link("server_0", "server_1").up is False
        # The other hub's client edges are untouched.
        assert topology.uplink("end_system_0").up is True
        # Anything sent over a dead link is deterministically lost and
        # counted on both the link and the transport log.
        assert transport.send_to_server("end_system_1", np.zeros(4), now=0.0) is None
        assert transport.send_to_end_system("end_system_1", np.zeros(4), now=0.0) is None
        assert transport.send_between_servers("server_0", "server_1",
                                              np.zeros(4), now=0.0) is None
        assert transport.log.uplink_dropped == 1
        assert transport.log.downlink_dropped == 1
        assert transport.log.sync_dropped == 1
        assert topology.uplink("end_system_1").messages_dropped == 1
        # Recovery restores every incident link.
        topology.set_node_up("server_1", True)
        assert topology.uplink("end_system_1").up is True
        assert transport.send_to_server("end_system_1", np.zeros(4), now=0.0) is not None

    def test_reroute_end_system_moves_access_links(self):
        topology = self.make_multi_hub()
        uplink = topology.uplink("end_system_1")
        downlink = topology.downlink("end_system_1")
        assert topology.hub_of("end_system_1") == "server_1"
        topology.reroute_end_system("end_system_1", "server_0")
        assert topology.hub_of("end_system_1") == "server_0"
        # Same physical access links, new termination point.
        assert topology.uplink("end_system_1") is uplink
        assert topology.downlink("end_system_1") is downlink
        # Rerouting to the current hub is a no-op; bad names are rejected.
        topology.reroute_end_system("end_system_1", "server_0")
        with pytest.raises(KeyError):
            topology.reroute_end_system("server_0", "server_1")
        with pytest.raises(KeyError):
            topology.reroute_end_system("end_system_1", "end_system_0")

    def test_reroute_respects_target_health(self):
        topology = self.make_multi_hub()
        topology.set_node_up("server_0", False)
        topology.reroute_end_system("end_system_1", "server_0")
        assert topology.uplink("end_system_1").up is False
        topology.set_node_up("server_0", True)
        assert topology.uplink("end_system_1").up is True
