"""Tests for the discrete-event simulator and the latency models."""

import numpy as np
import pytest

from repro.simnet.events import Simulator
from repro.simnet.latency import (
    ConstantLatency,
    DistanceLatency,
    GaussianLatency,
    UniformLatency,
    great_circle_km,
)


class TestSimulator:
    def test_events_run_in_time_order(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(3.0, lambda sim: fired.append(("c", sim.now)))
        simulator.schedule(1.0, lambda sim: fired.append(("a", sim.now)))
        simulator.schedule(2.0, lambda sim: fired.append(("b", sim.now)))
        simulator.run()
        assert [label for label, _ in fired] == ["a", "b", "c"]
        assert [when for _, when in fired] == [1.0, 2.0, 3.0]

    def test_ties_broken_by_priority_then_fifo(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda sim: fired.append("low"), priority=5)
        simulator.schedule(1.0, lambda sim: fired.append("high"), priority=0)
        simulator.schedule(1.0, lambda sim: fired.append("low2"), priority=5)
        simulator.run()
        assert fired == ["high", "low", "low2"]

    def test_callbacks_can_schedule_more_events(self):
        simulator = Simulator()
        fired = []

        def recurring(sim):
            fired.append(sim.now)
            if sim.now < 3.0:
                sim.schedule_after(1.0, recurring)

        simulator.schedule(1.0, recurring)
        simulator.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_until_stops_early(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda sim: fired.append(1))
        simulator.schedule(5.0, lambda sim: fired.append(5))
        simulator.run(until=2.0)
        assert fired == [1]
        assert simulator.now == 2.0
        assert simulator.pending_events == 1

    def test_max_events_guard(self):
        simulator = Simulator()

        def forever(sim):
            sim.schedule_after(1.0, forever)

        simulator.schedule(0.0, forever)
        simulator.run(max_events=10)
        assert simulator.processed_events == 10

    def test_cannot_schedule_in_the_past(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda sim: None)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule(0.5, lambda sim: None)
        with pytest.raises(ValueError):
            simulator.schedule_after(-1.0, lambda sim: None)

    def test_stop_requested_mid_run(self):
        simulator = Simulator()
        fired = []

        def stopper(sim):
            fired.append(sim.now)
            sim.stop()

        simulator.schedule(1.0, stopper)
        simulator.schedule(2.0, lambda sim: fired.append(sim.now))
        simulator.run()
        assert fired == [1.0]
        assert simulator.stopped
        assert simulator.pending_events == 1
        simulator.reset()
        assert not simulator.stopped

    def test_stop_does_not_advance_clock_to_until(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda sim: sim.stop())
        assert simulator.run(until=10.0) == 1.0
        assert simulator.now == 1.0

    def test_reset(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda sim: None)
        simulator.run()
        simulator.reset()
        assert simulator.now == 0.0
        assert simulator.pending_events == 0
        assert simulator.processed_events == 0

    def test_run_advances_clock_to_until_even_without_events(self):
        simulator = Simulator()
        simulator.run(until=4.0)
        assert simulator.now == 4.0


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.01)
        assert model.sample() == 0.01
        assert model.mean() == 0.01
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_bounds_and_mean(self):
        model = UniformLatency(0.01, 0.03)
        samples = [model.sample(np.random.default_rng(i)) for i in range(200)]
        assert all(0.01 <= sample <= 0.03 for sample in samples)
        assert model.mean() == pytest.approx(0.02)
        with pytest.raises(ValueError):
            UniformLatency(0.03, 0.01)

    def test_gaussian_floor(self):
        model = GaussianLatency(0.001, 0.1, floor_s=0.0005)
        samples = [model.sample(np.random.default_rng(i)) for i in range(100)]
        assert min(samples) >= 0.0005
        assert model.mean() == 0.001

    def test_gaussian_validation(self):
        with pytest.raises(ValueError):
            GaussianLatency(-0.001, 0.01)

    def test_great_circle_known_distance(self):
        # Seoul to Tokyo is roughly 1,150 km.
        distance = great_circle_km((37.5665, 126.9780), (35.6762, 139.6503))
        assert 1000 < distance < 1300

    def test_great_circle_zero_for_same_point(self):
        assert great_circle_km((10.0, 20.0), (10.0, 20.0)) == pytest.approx(0.0)

    def test_distance_latency_scales_with_distance(self):
        seoul, new_york = (37.5665, 126.9780), (40.7128, -74.0060)
        seoul_tokyo = DistanceLatency((37.5665, 126.9780), (35.6762, 139.6503), jitter_std_s=0.0)
        seoul_ny = DistanceLatency(seoul, new_york, jitter_std_s=0.0)
        assert seoul_ny.mean() > seoul_tokyo.mean() * 3
        assert seoul_tokyo.mean() > 0.001  # at least the base latency

    def test_distance_latency_jitter_is_nonnegative(self):
        model = DistanceLatency((0.0, 0.0), (10.0, 10.0), jitter_std_s=0.005)
        samples = [model.sample(np.random.default_rng(i)) for i in range(50)]
        assert min(samples) >= model.base_s + model.propagation_s

    def test_distance_latency_validation(self):
        with pytest.raises(ValueError):
            DistanceLatency((0.0, 0.0), (1.0, 1.0), path_stretch=0.5)

    def test_reprs(self):
        assert "ms" in repr(ConstantLatency(0.005))
        assert "ms" in repr(UniformLatency(0.001, 0.002))
        assert "ms" in repr(GaussianLatency(0.01, 0.001))
        assert "km" in repr(DistanceLatency((0.0, 0.0), (1.0, 1.0)))
