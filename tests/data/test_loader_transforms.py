"""Tests for the DataLoader and the batch transforms."""

import numpy as np
import pytest

from repro.data.datasets import ArrayDataset
from repro.data.loader import DataLoader
from repro.data.transforms import (
    Compose,
    Cutout,
    GaussianNoise,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
)


@pytest.fixture
def image_dataset(rng):
    return ArrayDataset(rng.random((50, 3, 8, 8)), rng.integers(0, 5, 50))


class TestDataLoader:
    def test_batches_have_requested_size(self, image_dataset):
        loader = DataLoader(image_dataset, batch_size=16, shuffle=False)
        batches = list(loader)
        assert [images.shape[0] for images, _ in batches] == [16, 16, 16, 2]
        assert len(loader) == 4

    def test_drop_last(self, image_dataset):
        loader = DataLoader(image_dataset, batch_size=16, drop_last=True, shuffle=False)
        assert len(loader) == 3
        assert all(images.shape[0] == 16 for images, _ in loader)
        assert loader.num_samples == 48

    def test_covers_every_sample_once(self, image_dataset):
        loader = DataLoader(image_dataset, batch_size=7, shuffle=True, seed=0)
        labels = np.concatenate([batch_labels for _, batch_labels in loader])
        np.testing.assert_array_equal(np.sort(labels), np.sort(image_dataset.labels))

    def test_shuffling_changes_across_epochs_but_is_deterministic(self, image_dataset):
        loader_a = DataLoader(image_dataset, batch_size=50, shuffle=True, seed=3)
        loader_b = DataLoader(image_dataset, batch_size=50, shuffle=True, seed=3)
        first_a = next(iter(loader_a))[1]
        first_b = next(iter(loader_b))[1]
        np.testing.assert_array_equal(first_a, first_b)
        second_a = next(iter(loader_a))[1]
        assert not np.array_equal(first_a, second_a)

    def test_set_epoch_reproduces_order(self, image_dataset):
        loader = DataLoader(image_dataset, batch_size=50, shuffle=True, seed=1)
        loader.set_epoch(5)
        first = next(iter(loader))[1]
        loader.set_epoch(5)
        second = next(iter(loader))[1]
        np.testing.assert_array_equal(first, second)

    def test_no_shuffle_preserves_order(self, image_dataset):
        loader = DataLoader(image_dataset, batch_size=50, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, image_dataset.labels)

    def test_transform_applied(self, image_dataset):
        loader = DataLoader(image_dataset, batch_size=10, shuffle=False,
                            transform=Normalize(mean=[0.5] * 3, std=[0.5] * 3))
        images, _ = next(iter(loader))
        assert images.min() < 0  # normalization shifted the [0,1] data

    def test_validation(self, image_dataset):
        with pytest.raises(ValueError):
            DataLoader(image_dataset, batch_size=0)
        empty = ArrayDataset(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            DataLoader(empty)


class TestTransforms:
    def test_normalize_statistics(self, rng):
        batch = rng.random((20, 3, 8, 8))
        transform = Normalize.from_dataset(batch)
        normalized = transform(batch)
        np.testing.assert_allclose(normalized.mean(axis=(0, 2, 3)), np.zeros(3), atol=1e-10)
        np.testing.assert_allclose(normalized.std(axis=(0, 2, 3)), np.ones(3), atol=1e-6)

    def test_normalize_rejects_zero_std(self):
        with pytest.raises(ValueError):
            Normalize(mean=[0.0], std=[0.0])

    def test_flip_probability_zero_and_one(self, rng):
        batch = rng.random((5, 3, 6, 6))
        never = RandomHorizontalFlip(p=0.0, rng=np.random.default_rng(0))
        always = RandomHorizontalFlip(p=1.0, rng=np.random.default_rng(0))
        np.testing.assert_allclose(never(batch), batch)
        np.testing.assert_allclose(always(batch), batch[:, :, :, ::-1])

    def test_flip_preserves_pixel_multiset(self, rng):
        batch = rng.random((8, 3, 6, 6))
        flipped = RandomHorizontalFlip(p=0.5, rng=np.random.default_rng(1))(batch)
        np.testing.assert_allclose(np.sort(flipped.reshape(-1)), np.sort(batch.reshape(-1)))

    def test_random_crop_preserves_shape(self, rng):
        batch = rng.random((4, 3, 8, 8))
        cropped = RandomCrop(padding=2, rng=np.random.default_rng(0))(batch)
        assert cropped.shape == batch.shape

    def test_random_crop_zero_padding_is_identity(self, rng):
        batch = rng.random((4, 3, 8, 8))
        np.testing.assert_allclose(RandomCrop(padding=0)(batch), batch)

    def test_gaussian_noise_magnitude(self, rng):
        batch = np.zeros((10, 3, 8, 8))
        noisy = GaussianNoise(std=0.1, rng=np.random.default_rng(0))(batch)
        assert 0.05 < noisy.std() < 0.15

    def test_cutout_zeroes_a_patch(self, rng):
        batch = np.ones((3, 3, 8, 8))
        cut = Cutout(size=4, rng=np.random.default_rng(0))(batch)
        assert (cut == 0).any()
        assert cut.shape == batch.shape

    def test_compose_applies_in_order(self, rng):
        batch = rng.random((2, 3, 8, 8))
        compose = Compose([Normalize(mean=[0.5] * 3, std=[0.5] * 3), GaussianNoise(std=0.0)])
        np.testing.assert_allclose(
            compose(batch), Normalize(mean=[0.5] * 3, std=[0.5] * 3)(batch)
        )
        assert "Normalize" in repr(compose)

    def test_transform_validation(self, rng):
        with pytest.raises(ValueError):
            RandomHorizontalFlip(p=1.5)
        with pytest.raises(ValueError):
            RandomCrop(padding=-1)
        with pytest.raises(ValueError):
            GaussianNoise(std=-1.0)
        with pytest.raises(ValueError):
            Cutout(size=0)
        with pytest.raises(ValueError):
            RandomHorizontalFlip()(rng.random((3, 8, 8)))
