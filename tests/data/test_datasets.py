"""Tests for the synthetic datasets and dataset utilities."""

import numpy as np
import pytest

from repro.data.datasets import (
    ArrayDataset,
    Subset,
    SyntheticCIFAR10,
    SyntheticImageDataset,
    SyntheticMNIST,
    train_test_split,
)


class TestArrayDataset:
    def test_length_and_indexing(self, rng):
        dataset = ArrayDataset(rng.standard_normal((10, 3, 4, 4)), rng.integers(0, 3, 10))
        assert len(dataset) == 10
        image, label = dataset[2]
        assert image.shape == (3, 4, 4)
        assert isinstance(label, int)

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(ValueError, match="sample count"):
            ArrayDataset(rng.standard_normal((10, 3)), rng.integers(0, 2, 9))

    def test_arrays_and_class_counts(self, rng):
        labels = np.array([0, 0, 1, 2, 2, 2])
        dataset = ArrayDataset(rng.standard_normal((6, 2)), labels)
        assert dataset.num_classes == 3
        np.testing.assert_array_equal(dataset.class_counts(), [2, 1, 3])

    def test_iteration(self, rng):
        dataset = ArrayDataset(rng.standard_normal((4, 2)), np.zeros(4))
        assert len(list(dataset)) == 4


class TestSubset:
    def test_indexing_goes_through_parent(self, rng):
        dataset = ArrayDataset(np.arange(20).reshape(10, 2).astype(float), np.arange(10) % 2)
        subset = Subset(dataset, [3, 5, 7])
        assert len(subset) == 3
        np.testing.assert_allclose(subset[1][0], dataset[5][0])

    def test_arrays_selects_rows(self, rng):
        dataset = ArrayDataset(rng.standard_normal((10, 2)), np.arange(10))
        subset = Subset(dataset, [0, 9])
        _, labels = subset.arrays()
        np.testing.assert_array_equal(labels, [0, 9])

    def test_out_of_range_indices_rejected(self, rng):
        dataset = ArrayDataset(rng.standard_normal((5, 2)), np.zeros(5))
        with pytest.raises(IndexError):
            Subset(dataset, [5])


class TestSyntheticDatasets:
    def test_cifar_like_shapes(self):
        dataset = SyntheticCIFAR10(num_samples=50, seed=0)
        images, labels = dataset.arrays()
        assert images.shape == (50, 3, 32, 32)
        assert labels.shape == (50,)
        assert dataset.image_shape == (3, 32, 32)

    def test_mnist_like_shapes(self):
        dataset = SyntheticMNIST(num_samples=30, seed=0)
        images, _ = dataset.arrays()
        assert images.shape == (30, 1, 28, 28)

    def test_pixel_range(self):
        dataset = SyntheticCIFAR10(num_samples=40, image_size=16, seed=0)
        assert dataset.images.min() >= 0.0
        assert dataset.images.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = SyntheticCIFAR10(num_samples=20, image_size=8, seed=42)
        b = SyntheticCIFAR10(num_samples=20, image_size=8, seed=42)
        np.testing.assert_allclose(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = SyntheticCIFAR10(num_samples=20, image_size=8, seed=1)
        b = SyntheticCIFAR10(num_samples=20, image_size=8, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_classes_roughly_balanced(self):
        dataset = SyntheticCIFAR10(num_samples=100, image_size=8, seed=0)
        counts = dataset.class_counts()
        assert counts.min() >= 8 and counts.max() <= 12

    def test_classes_are_separable(self):
        """A nearest-prototype classifier must beat chance by a wide margin,
        otherwise the synthetic task would be unlearnable and Table I
        meaningless."""
        dataset = SyntheticCIFAR10(num_samples=200, image_size=16, seed=0)
        images, labels = dataset.arrays()
        prototypes = dataset.prototypes.reshape(10, -1)
        flat = images.reshape(images.shape[0], -1)
        distances = ((flat[:, None, :] - prototypes[None, :, :]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        assert (predictions == labels).mean() > 0.5

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_samples=5, num_classes=10)
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_samples=50, num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_samples=50, image_size=2)

    def test_no_jitter_no_noise_reproduces_prototypes(self):
        dataset = SyntheticImageDataset(
            num_samples=20, num_classes=4, image_size=8, channels=1,
            jitter=0, deformation_noise=0.0, pixel_noise=0.0, seed=0,
        )
        images, labels = dataset.arrays()
        for image, label in zip(images, labels):
            np.testing.assert_allclose(image, dataset.prototypes[label])


class TestTrainTestSplit:
    def test_partition_is_disjoint_and_complete(self):
        dataset = SyntheticCIFAR10(num_samples=60, image_size=8, seed=0)
        train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
        train_indices = set(train.indices.tolist())
        test_indices = set(test.indices.tolist())
        assert train_indices.isdisjoint(test_indices)
        assert len(train_indices | test_indices) == 60

    def test_fraction_respected(self):
        dataset = SyntheticCIFAR10(num_samples=100, image_size=8, seed=0)
        train, test = train_test_split(dataset, test_fraction=0.2, seed=0)
        assert len(test) == pytest.approx(20, abs=2)
        assert len(train) == 100 - len(test)

    def test_stratified_split_covers_all_classes(self):
        dataset = SyntheticCIFAR10(num_samples=100, image_size=8, seed=0)
        _, test = train_test_split(dataset, test_fraction=0.2, seed=0, stratified=True)
        _, labels = test.arrays()
        assert len(np.unique(labels)) == 10

    def test_unstratified_split(self):
        dataset = SyntheticCIFAR10(num_samples=60, image_size=8, seed=0)
        train, test = train_test_split(dataset, test_fraction=0.5, seed=0, stratified=False)
        assert len(train) + len(test) == 60

    def test_invalid_fraction(self):
        dataset = SyntheticCIFAR10(num_samples=30, image_size=8, seed=0)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.0)
