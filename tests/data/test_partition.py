"""Tests (including property-based) for the multi-end-system partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import ArrayDataset
from repro.data.partition import (
    DirichletPartitioner,
    IIDPartitioner,
    LabelShardPartitioner,
    QuantitySkewPartitioner,
    get_partitioner,
    partition_summary,
)


def make_dataset(num_samples=100, num_classes=5, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.standard_normal((num_samples, 4)),
                        rng.integers(0, num_classes, num_samples))


def assert_valid_partition(dataset, parts):
    """Disjointness + completeness: the defining invariants of any partition."""
    all_indices = np.concatenate([part.indices for part in parts])
    assert len(all_indices) == len(dataset)
    assert len(np.unique(all_indices)) == len(dataset)
    assert all(len(part) > 0 for part in parts)


class TestIIDPartitioner:
    def test_partition_is_valid_and_balanced(self):
        dataset = make_dataset(100)
        parts = IIDPartitioner(4, seed=0).partition(dataset)
        assert_valid_partition(dataset, parts)
        assert all(len(part) == 25 for part in parts)

    def test_class_distribution_roughly_uniform(self):
        dataset = make_dataset(1000, num_classes=4)
        parts = IIDPartitioner(4, seed=0).partition(dataset)
        for part in parts:
            _, labels = part.arrays()
            counts = np.bincount(labels, minlength=4)
            assert counts.min() > 0.5 * counts.max()

    def test_deterministic_given_seed(self):
        dataset = make_dataset(60)
        a = IIDPartitioner(3, seed=5).partition(dataset)
        b = IIDPartitioner(3, seed=5).partition(dataset)
        for part_a, part_b in zip(a, b):
            np.testing.assert_array_equal(part_a.indices, part_b.indices)

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError):
            IIDPartitioner(10).partition(make_dataset(5))

    def test_invalid_num_parts(self):
        with pytest.raises(ValueError):
            IIDPartitioner(0)


class TestDirichletPartitioner:
    def test_partition_is_valid(self):
        dataset = make_dataset(200)
        parts = DirichletPartitioner(4, alpha=0.5, seed=0).partition(dataset)
        assert_valid_partition(dataset, parts)

    def test_small_alpha_more_skewed_than_large_alpha(self):
        dataset = make_dataset(2000, num_classes=10, seed=1)

        def mean_skew(parts):
            """Mean max-class-share across parts: 0.1 = uniform, 1.0 = single class."""
            shares = []
            for part in parts:
                _, labels = part.arrays()
                counts = np.bincount(labels, minlength=10)
                shares.append(counts.max() / max(counts.sum(), 1))
            return np.mean(shares)

        skewed = mean_skew(DirichletPartitioner(5, alpha=0.1, seed=0).partition(dataset))
        uniform = mean_skew(DirichletPartitioner(5, alpha=100.0, seed=0).partition(dataset))
        assert skewed > uniform + 0.1

    def test_every_part_nonempty_even_when_extremely_skewed(self):
        dataset = make_dataset(40, num_classes=2)
        parts = DirichletPartitioner(8, alpha=0.05, seed=3).partition(dataset)
        assert all(len(part) > 0 for part in parts)
        assert_valid_partition(dataset, parts)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            DirichletPartitioner(3, alpha=0.0)


class TestLabelShardPartitioner:
    def test_partition_is_valid(self):
        dataset = make_dataset(100, num_classes=10)
        parts = LabelShardPartitioner(5, shards_per_part=2, seed=0).partition(dataset)
        assert_valid_partition(dataset, parts)

    def test_each_part_sees_few_classes(self):
        dataset = make_dataset(1000, num_classes=10, seed=2)
        parts = LabelShardPartitioner(5, shards_per_part=2, seed=0).partition(dataset)
        for part in parts:
            _, labels = part.arrays()
            # Two contiguous label shards cover at most ~3 distinct classes.
            assert len(np.unique(labels)) <= 4

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError):
            LabelShardPartitioner(10, shards_per_part=5).partition(make_dataset(20))

    def test_invalid_shards_per_part(self):
        with pytest.raises(ValueError):
            LabelShardPartitioner(2, shards_per_part=0)


class TestQuantitySkewPartitioner:
    def test_partition_is_valid(self):
        dataset = make_dataset(300)
        parts = QuantitySkewPartitioner(4, beta=0.5, seed=0).partition(dataset)
        assert_valid_partition(dataset, parts)

    def test_sizes_are_unequal(self):
        dataset = make_dataset(1000)
        parts = QuantitySkewPartitioner(4, beta=0.5, seed=1).partition(dataset)
        sizes = [len(part) for part in parts]
        assert max(sizes) > 1.5 * min(sizes)

    def test_min_samples_respected(self):
        dataset = make_dataset(100)
        parts = QuantitySkewPartitioner(5, beta=0.3, min_samples=5, seed=0).partition(dataset)
        assert all(len(part) >= 5 for part in parts)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantitySkewPartitioner(3, beta=0.0)
        with pytest.raises(ValueError):
            QuantitySkewPartitioner(3, min_samples=0)
        with pytest.raises(ValueError):
            QuantitySkewPartitioner(30, min_samples=10).partition(make_dataset(100))


class TestHelpers:
    def test_partition_summary(self):
        dataset = make_dataset(60, num_classes=3)
        parts = IIDPartitioner(3, seed=0).partition(dataset)
        summary = partition_summary(parts, num_classes=3)
        assert set(summary) == {0, 1, 2}
        assert sum(entry["num_samples"] for entry in summary.values()) == 60
        assert all(len(entry["class_histogram"]) == 3 for entry in summary.values())

    def test_get_partitioner_factory(self):
        assert isinstance(get_partitioner("iid", 3), IIDPartitioner)
        assert isinstance(get_partitioner("dirichlet", 3, alpha=0.2), DirichletPartitioner)
        with pytest.raises(KeyError, match="unknown partitioner"):
            get_partitioner("bogus", 3)


class TestPartitionProperties:
    """Hypothesis: disjointness and completeness hold for arbitrary settings."""

    @settings(max_examples=25, deadline=None)
    @given(num_samples=st.integers(20, 200), num_parts=st.integers(1, 8),
           seed=st.integers(0, 1000))
    def test_iid_partition_always_valid(self, num_samples, num_parts, seed):
        dataset = make_dataset(num_samples, seed=seed)
        parts = IIDPartitioner(num_parts, seed=seed).partition(dataset)
        assert_valid_partition(dataset, parts)

    @settings(max_examples=25, deadline=None)
    @given(num_samples=st.integers(30, 200), num_parts=st.integers(2, 6),
           alpha=st.floats(0.05, 10.0), seed=st.integers(0, 1000))
    def test_dirichlet_partition_always_valid(self, num_samples, num_parts, alpha, seed):
        dataset = make_dataset(num_samples, seed=seed)
        parts = DirichletPartitioner(num_parts, alpha=alpha, seed=seed).partition(dataset)
        assert_valid_partition(dataset, parts)

    @settings(max_examples=25, deadline=None)
    @given(num_samples=st.integers(50, 200), num_parts=st.integers(2, 5),
           beta=st.floats(0.1, 5.0), seed=st.integers(0, 1000))
    def test_quantity_skew_partition_always_valid(self, num_samples, num_parts, beta, seed):
        dataset = make_dataset(num_samples, seed=seed)
        parts = QuantitySkewPartitioner(num_parts, beta=beta, seed=seed).partition(dataset)
        assert_valid_partition(dataset, parts)
