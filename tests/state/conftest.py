"""Fixtures for the durability (checkpoint/restart) test suite."""

import pytest

from repro.data.partition import IIDPartitioner


@pytest.fixture(scope="session")
def tiny_parts4(tiny_splits):
    """The tiny training set partitioned IID across 4 end-systems — two
    clients per shard in the 2-server restart drills."""
    train, _ = tiny_splits
    return IIDPartitioner(4, seed=5).partition(train)
