"""Snapshot-format tests: capture/restore exactness and payload round-trips.

A :class:`ShardCheckpoint` must reinstall *everything* a recovering shard
needs to resume the exact update trajectory — weights, optimizer moment
buffers, module RNG streams, per-sync counters — and the flat payload
conversion through a persistent store must be lossless.
"""

import numpy as np
import pytest

from repro.cluster.shard import ServerShard
from repro.core.server import CentralServer
from repro.state import (
    ClientCheckpoint,
    FileCheckpointStore,
    MemoryCheckpointStore,
    ShardCheckpoint,
)
from repro.state.checkpoint import queue_counter_state, restore_queue_counters


def make_shard(spec, shard_id=0, seed=0):
    return ServerShard(shard_id, CentralServer(spec, seed=seed),
                       f"server_{shard_id}")


def take_steps(shard, steps=3, seed=7):
    """Apply synthetic gradient steps so optimizer moments are non-trivial."""
    rng = np.random.default_rng(seed)
    optimizer = shard.server.optimizer
    for _ in range(steps):
        for parameter in optimizer.parameters:
            parameter.grad = rng.normal(size=parameter.data.shape)
        optimizer.step()


def weights_of(shard):
    return {name: value.copy()
            for name, value in shard.server.state_dict().items()}


def assert_same_weights(a, b):
    assert a.keys() == b.keys()
    for name in a:
        np.testing.assert_array_equal(a[name], b[name])


def assert_same_optimizer_state(a, b):
    assert a["lr"] == b["lr"]
    assert a["step_count"] == b["step_count"]
    assert a["slots"].keys() == b["slots"].keys()
    for name in a["slots"]:
        for left, right in zip(a["slots"][name], b["slots"][name]):
            if left is None or right is None:
                assert left is None and right is None
            else:
                np.testing.assert_array_equal(left, right)


class TestShardCheckpoint:
    def test_restore_resumes_exact_trajectory(self, tiny_split_spec):
        """The acid test: checkpoint, diverge, restore, re-run — the
        restored shard must land on byte-identical weights and moments."""
        shard = make_shard(tiny_split_spec)
        take_steps(shard, steps=3, seed=7)
        checkpoint = ShardCheckpoint.capture(shard, sim_time=1.0)

        take_steps(shard, steps=4, seed=11)  # the "reference" continuation
        reference_weights = weights_of(shard)
        reference_optimizer = shard.server.optimizer.state_dict()

        take_steps(shard, steps=2, seed=99)  # diverge further ...
        checkpoint.restore(shard)            # ... then rewind
        take_steps(shard, steps=4, seed=11)  # replay the continuation

        assert_same_weights(weights_of(shard), reference_weights)
        assert_same_optimizer_state(shard.server.optimizer.state_dict(),
                                    reference_optimizer)

    def test_capture_is_a_snapshot_not_a_view(self, tiny_split_spec):
        shard = make_shard(tiny_split_spec)
        take_steps(shard, steps=2)
        checkpoint = ShardCheckpoint.capture(shard, sim_time=0.5)
        frozen = {name: value.copy() for name, value in checkpoint.weights.items()}
        take_steps(shard, steps=3)  # keep training after the capture
        assert_same_weights(checkpoint.weights, frozen)

    def test_default_restore_keeps_monotone_counters(self, tiny_split_spec):
        shard = make_shard(tiny_split_spec)
        shard.samples_since_sync = 5
        shard.steps_since_sync = 2
        checkpoint = ShardCheckpoint.capture(shard, sim_time=0.0)
        shard.samples_since_sync = 9
        shard.server.samples_processed = 40
        shard.crashes = 3
        checkpoint.restore(shard)  # failover path: training state only
        assert shard.samples_since_sync == 5
        assert shard.steps_since_sync == 2
        assert shard.samples_processed == 40  # work that happened, happened
        assert shard.crashes == 3

    def test_include_counters_restores_ledger_and_health(self, tiny_split_spec):
        shard = make_shard(tiny_split_spec)
        shard.server.samples_processed = 24
        shard.server.batches_processed = 3
        shard.syncs_applied = 2
        shard.crashes = 1
        shard.recoveries = 1
        shard.downtime_s = 0.25
        shard.note_recovery_point(0.8, "checkpoint")
        checkpoint = ShardCheckpoint.capture(shard, sim_time=1.0)

        other = make_shard(tiny_split_spec, seed=1)
        checkpoint.restore(other, include_counters=True)
        assert other.samples_processed == 24
        assert other.batches_processed == 3
        assert other.syncs_applied == 2
        assert other.crashes == 1
        assert other.recoveries == 1
        assert other.downtime_s == 0.25
        assert other.recovery_point_time_s == 0.8
        assert other.recovery_point_kind == "checkpoint"
        assert_same_weights(weights_of(other), weights_of(shard))

    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_store_round_trip_is_lossless(self, tiny_split_spec, tmp_path, backend):
        shard = make_shard(tiny_split_spec)
        take_steps(shard, steps=3)
        shard.samples_since_sync = 7
        shard.note_recovery_point(0.4, "sync")
        checkpoint = ShardCheckpoint.capture(shard, sim_time=1.25,
                                             round_index=4, generation=2)
        store = (MemoryCheckpointStore() if backend == "memory"
                 else FileCheckpointStore(tmp_path))
        store.save_shard(checkpoint)
        if backend == "file":
            store = FileCheckpointStore(tmp_path)  # cold reopen
        loaded = store.latest_shard(shard.shard_id)
        assert loaded is not None
        assert loaded.shard_id == checkpoint.shard_id
        assert loaded.sim_time == 1.25
        assert loaded.round_index == 4
        assert loaded.generation == 2
        assert loaded.samples_since_sync == 7
        assert loaded.rpo["recovery_point_kind"] == "sync"
        assert_same_weights(loaded.weights, checkpoint.weights)
        assert_same_optimizer_state(loaded.optimizer_state,
                                    checkpoint.optimizer_state)
        # And a restore from the persisted copy lands on the same state.
        other = make_shard(tiny_split_spec, seed=3)
        loaded.restore(other, include_counters=True)
        assert_same_weights(weights_of(other), checkpoint.weights)

    def test_latest_shard_of_empty_store_is_none(self, tmp_path):
        assert FileCheckpointStore(tmp_path).latest_shard(0) is None
        assert MemoryCheckpointStore().latest_shard(0) is None


class TestQueueLedger:
    def test_ledger_round_trip(self, tiny_split_spec):
        shard = make_shard(tiny_split_spec)
        queue = shard.queue
        queue._dropped = 4
        queue._waiting_times = [0.1, 0.2]
        queue._processed_per_system[3] = 8
        state = queue_counter_state(queue)

        other = make_shard(tiny_split_spec, seed=1)
        restore_queue_counters(other.queue, state)
        assert other.queue.dropped == 4
        assert other.queue._waiting_times == [0.1, 0.2]
        assert other.queue.processed_per_system() == {3: 8}

    def test_ledger_int_keys_survive_json(self, tiny_split_spec, tmp_path):
        """The file store serializes meta as JSON, which stringifies int
        dict keys; ``from_payload`` must normalize them back."""
        shard = make_shard(tiny_split_spec)
        shard.queue._processed_per_system[5] = 12
        checkpoint = ShardCheckpoint.capture(shard, sim_time=0.0)
        store = FileCheckpointStore(tmp_path)
        store.save_shard(checkpoint)
        loaded = FileCheckpointStore(tmp_path).latest_shard(0)
        assert loaded.ledger["processed_per_system"] == {5: 12}


class TestClientCheckpoint:
    def make_end_system(self, spec, seed=0):
        from repro.core.end_system import EndSystem
        from repro.data.datasets import SyntheticCIFAR10
        from repro.data.loader import DataLoader
        dataset = SyntheticCIFAR10(num_samples=16, image_size=8, seed=3)
        loader = DataLoader(dataset, batch_size=8, seed=1)
        return EndSystem(system_id=0, loader=loader, split_spec=spec, seed=seed)

    def test_round_trip_through_run_payload_shape(self, tiny_split_spec):
        end_system = self.make_end_system(tiny_split_spec)
        end_system.samples_seen = 24
        end_system.updates_applied = 3
        end_system.drops_notified = 1
        checkpoint = ClientCheckpoint.capture(end_system)
        arrays, meta = checkpoint.to_payload()
        loaded = ClientCheckpoint.from_payload(arrays, meta)

        other = self.make_end_system(tiny_split_spec, seed=9)
        loaded.restore(other)
        assert other.samples_seen == 24
        assert other.updates_applied == 3
        assert other.drops_notified == 1
        assert_same_weights(other.state_dict(), end_system.state_dict())
