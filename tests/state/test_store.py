"""Durability tests for the checkpoint stores.

The property pinned throughout: **a store always loads the newest intact
checkpoint**.  Writers may die at any instant — mid-payload, between the
payload rename and the manifest write, leaving truncated temp droppings —
and a reader opening the directory afterwards must still get a
checksum-verified, fully parsed record (the previous one if the newest
write never completed).
"""

import json
import zlib
from pathlib import Path

import numpy as np
import pytest

from repro.state import FileCheckpointStore, MemoryCheckpointStore


def record(value: float):
    """A tiny payload whose content encodes its version."""
    arrays = {"weights": np.full((4, 3), value), "bias": np.arange(3.0) + value}
    meta = {"value": value, "note": f"record-{value}"}
    return arrays, meta


def write(store, value: float, kind="shard", scope="shard-0"):
    arrays, meta = record(value)
    return store.save(kind, scope, sim_time=value, arrays=arrays, meta=meta)


def assert_loads(store, value: float, kind="shard", scope="shard-0"):
    loaded = store._read_latest(kind, scope)
    assert loaded is not None
    arrays, meta = loaded
    np.testing.assert_array_equal(arrays["weights"], np.full((4, 3), value))
    np.testing.assert_array_equal(arrays["bias"], np.arange(3.0) + value)
    assert meta["value"] == value


@pytest.mark.parametrize("backend", ["memory", "file"])
def test_latest_wins(backend, tmp_path):
    store = MemoryCheckpointStore() if backend == "memory" else FileCheckpointStore(tmp_path)
    v1 = write(store, 1.0)
    v2 = write(store, 2.0)
    assert v2 > v1
    assert_loads(store, 2.0)
    assert store.checkpoints_written == 2
    assert store.bytes_written > 0
    assert store.write_wall_s >= 0.0


def test_scopes_are_independent(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0, scope="shard-0")
    write(store, 2.0, scope="shard-1")
    assert_loads(store, 1.0, scope="shard-0")
    assert_loads(store, 2.0, scope="shard-1")
    assert store._read_latest("shard", "shard-9") is None
    assert store._read_latest("run", "run") is None


def test_versions_listing(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0, scope="shard-0")
    write(store, 2.0, scope="shard-1")
    write(store, 3.0, scope="shard-0")
    rows = store.versions(kind="shard", scope="shard-0")
    assert [row["sim_time"] for row in rows] == [1.0, 3.0]
    assert [row["version"] for row in rows] == sorted(row["version"] for row in rows)


def test_reopen_persists(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0)
    write(store, 2.0)
    reopened = FileCheckpointStore(tmp_path)
    assert_loads(reopened, 2.0)


def test_keep_prunes_old_records(tmp_path):
    store = FileCheckpointStore(tmp_path, keep=2)
    for value in (1.0, 2.0, 3.0, 4.0):
        write(store, value)
    rows = store.versions(kind="shard", scope="shard-0")
    assert [row["sim_time"] for row in rows] == [3.0, 4.0]
    # Pruned payload files are actually gone from disk.
    npz_files = sorted(path.name for path in tmp_path.glob("*.npz"))
    assert len(npz_files) == 2
    assert_loads(store, 4.0)


def test_memory_keep_prunes(tmp_path):
    store = MemoryCheckpointStore(keep=1)
    write(store, 1.0)
    write(store, 2.0)
    assert len(store.versions()) == 1
    assert_loads(store, 2.0)


def test_memory_store_copies_buffers():
    store = MemoryCheckpointStore()
    arrays, meta = record(1.0)
    store.save("shard", "shard-0", 1.0, arrays, meta)
    arrays["weights"][:] = 99.0  # mutate the caller's buffer after saving
    loaded, _ = store._read_latest("shard", "shard-0")
    np.testing.assert_array_equal(loaded["weights"], np.full((4, 3), 1.0))
    loaded["weights"][:] = -1.0  # and the loaded copy is private too
    assert_loads(store, 1.0)


def test_invalid_keep_rejected(tmp_path):
    with pytest.raises(ValueError):
        MemoryCheckpointStore(keep=0)
    with pytest.raises(ValueError):
        FileCheckpointStore(tmp_path, keep=-1)


# --------------------------------------------------------------------------- #
# Corruption fallback
# --------------------------------------------------------------------------- #
def newest_file(store) -> Path:
    rows = store.versions()
    return store.directory / rows[-1]["file"]


def test_corrupted_newest_falls_back(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0)
    write(store, 2.0)
    path = newest_file(store)
    payload = bytearray(path.read_bytes())
    payload[len(payload) // 2] ^= 0xFF  # flip one byte mid-archive
    path.write_bytes(bytes(payload))
    assert_loads(FileCheckpointStore(tmp_path), 1.0)


def test_truncated_newest_falls_back(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0)
    write(store, 2.0)
    path = newest_file(store)
    path.write_bytes(path.read_bytes()[: 10])
    assert_loads(FileCheckpointStore(tmp_path), 1.0)


def test_missing_newest_falls_back(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0)
    write(store, 2.0)
    newest_file(store).unlink()
    assert_loads(FileCheckpointStore(tmp_path), 1.0)


def test_all_corrupted_returns_none(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0)
    for row in store.versions():
        (tmp_path / row["file"]).write_bytes(b"garbage")
    assert FileCheckpointStore(tmp_path)._read_latest("shard", "shard-0") is None


def test_unreadable_manifest_starts_fresh(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0)
    (tmp_path / FileCheckpointStore.MANIFEST_NAME).write_text("{not json")
    fresh = FileCheckpointStore(tmp_path)
    assert fresh._read_latest("shard", "shard-0") is None
    write(fresh, 2.0)
    assert_loads(fresh, 2.0)


def test_foreign_format_rejected(tmp_path):
    manifest = {"format": 99, "next_version": 1, "records": []}
    (tmp_path / FileCheckpointStore.MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(ValueError, match="format"):
        FileCheckpointStore(tmp_path)


# --------------------------------------------------------------------------- #
# Mid-write kill (property-style)
# --------------------------------------------------------------------------- #
class KilledMidWrite(RuntimeError):
    pass


class DyingStore(FileCheckpointStore):
    """A store whose writer process 'dies' after ``die_after`` bytes of the
    payload temp file have been written (plus optionally right before the
    manifest update), leaving whatever the filesystem had at that instant."""

    def __init__(self, directory, die_after=None, die_before_manifest=False):
        super().__init__(directory)
        self.die_after = die_after
        self.die_before_manifest = die_before_manifest

    def _write_record(self, kind, scope, sim_time, arrays, meta):
        if self.die_after is None and not self.die_before_manifest:
            return super()._write_record(kind, scope, sim_time, arrays, meta)
        # Simulate the real write sequence, dying at the configured point.
        intact = FileCheckpointStore(self.directory)
        version = int(intact._manifest["next_version"])
        file_name = f"ckpt_{version:06d}_{kind}_{scope}.npz"
        temp_path = self.directory / (file_name + ".tmp")
        from repro.nn.serialization import save_state_dict
        save_state_dict(arrays, temp_path)
        full = temp_path.read_bytes()
        if self.die_after is not None:
            cut = min(self.die_after, len(full))
            temp_path.write_bytes(full[:cut])  # truncated temp dropping
            raise KilledMidWrite("died while writing the payload temp file")
        # Payload fully written and renamed; die before the manifest update.
        import os
        os.replace(temp_path, self.directory / file_name)
        raise KilledMidWrite("died before updating the manifest")


@pytest.mark.parametrize("die_after", [0, 1, 17, 100, 10_000])
def test_killed_while_writing_temp_always_falls_back(tmp_path, die_after):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0)
    dying = DyingStore(tmp_path, die_after=die_after)
    with pytest.raises(KilledMidWrite):
        write(dying, 2.0)
    # The survivor sees the last intact record, with the stale temp ignored.
    survivor = FileCheckpointStore(tmp_path)
    assert_loads(survivor, 1.0)
    # The next successful save sweeps the dropping and supersedes normally.
    write(survivor, 3.0)
    assert list(tmp_path.glob("*.tmp")) == []
    assert_loads(FileCheckpointStore(tmp_path), 3.0)


def test_killed_between_rename_and_manifest(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0)
    dying = DyingStore(tmp_path, die_before_manifest=True)
    with pytest.raises(KilledMidWrite):
        write(dying, 2.0)
    # The orphan payload is never referenced: loads return the old record.
    assert_loads(FileCheckpointStore(tmp_path), 1.0)


def test_random_kill_offsets_property(tmp_path):
    """Many random kill points, one invariant: loads always succeed and
    always return the newest *completed* value."""
    rng = np.random.default_rng(42)
    store = FileCheckpointStore(tmp_path)
    committed = 0.0
    write(store, committed)
    reference_size = len(newest_file(store).read_bytes())
    for trial in range(12):
        value = float(trial + 1)
        if rng.random() < 0.5:
            cut = int(rng.integers(0, reference_size + 1))
            with pytest.raises(KilledMidWrite):
                write(DyingStore(tmp_path, die_after=cut), value)
        else:
            write(FileCheckpointStore(tmp_path), value)
            committed = value
        assert_loads(FileCheckpointStore(tmp_path), committed)


def test_checksums_recorded_in_manifest(tmp_path):
    store = FileCheckpointStore(tmp_path)
    write(store, 1.0)
    manifest = json.loads((tmp_path / FileCheckpointStore.MANIFEST_NAME).read_text())
    entry = manifest["records"][-1]
    payload = (tmp_path / entry["file"]).read_bytes()
    assert entry["checksum"] == (zlib.crc32(payload) & 0xFFFFFFFF)
