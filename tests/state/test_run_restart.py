"""Coordinator restart: resume from the store alone, replay-exact.

The drill in every test: run a trainer with checkpointing enabled for the
first K epochs, throw it away (the "coordinator crash"), rebuild a fresh
trainer from nothing but the checkpoint store plus the immutable inputs
(architecture + datasets), finish the run, and compare against a twin
that ran uninterrupted — weights pinned at 1e-9, the simulated clock and
history records exact.
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import SpatioTemporalTrainer
from repro.state import FileCheckpointStore, MemoryCheckpointStore


def make_trainer(spec, parts, normalize, **overrides):
    config = TrainingConfig.fast_debug(**overrides)
    return SpatioTemporalTrainer(spec, parts, config, train_transform=normalize)


def assert_same_deployment(reference, resumed, atol=1e-9):
    ref_state = reference.state_dict()
    res_state = resumed.state_dict()
    assert ref_state.keys() == res_state.keys()
    for key in ref_state:
        for name in ref_state[key]:
            np.testing.assert_allclose(
                res_state[key][name], ref_state[key][name],
                rtol=0, atol=atol, err_msg=f"{key}/{name}",
            )
    assert resumed.engine.clock == pytest.approx(reference.engine.clock, abs=atol)


def run_interrupted(spec, parts, normalize, store_dir, *, crash_after, epochs,
                    **overrides):
    """Train ``crash_after`` epochs, discard the trainer, resume and finish."""
    trainer = make_trainer(spec, parts, normalize,
                           checkpoint_dir=str(store_dir), **overrides)
    trainer.train(epochs=crash_after)
    del trainer  # the coordinator process dies here
    store = FileCheckpointStore(store_dir)
    resumed = SpatioTemporalTrainer.resume_from_store(
        store, spec, parts, train_transform=normalize)
    assert resumed._start_epoch == crash_after
    history = resumed.train(epochs=epochs)
    return resumed, history


COMMON = dict(epochs=3, num_servers=2, server_sync_every=2,
              checkpoint_every_s=0.005)


class TestReplayExactRestart:
    def test_synchronous(self, tiny_split_spec, tiny_parts4, normalize, tmp_path):
        overrides = dict(COMMON, mode="synchronous")
        reference = make_trainer(tiny_split_spec, tiny_parts4, normalize, **overrides)
        ref_history = reference.train()
        resumed, history = run_interrupted(
            tiny_split_spec, tiny_parts4, normalize, tmp_path,
            crash_after=2, **overrides)
        assert_same_deployment(reference, resumed)
        assert history.records[-1].epoch == 2
        assert history.records[-1].train_loss == pytest.approx(
            ref_history.records[-1].train_loss, abs=1e-9)

    def test_asynchronous(self, tiny_split_spec, tiny_parts4, normalize, tmp_path):
        overrides = dict(COMMON, mode="asynchronous",
                         server_sync_mode="staleness")
        reference = make_trainer(tiny_split_spec, tiny_parts4, normalize, **overrides)
        ref_history = reference.train()
        resumed, history = run_interrupted(
            tiny_split_spec, tiny_parts4, normalize, tmp_path,
            crash_after=2, **overrides)
        assert_same_deployment(reference, resumed)
        assert history.records[-1].train_loss == pytest.approx(
            ref_history.records[-1].train_loss, abs=1e-9)

    def test_with_scripted_failures(self, tiny_split_spec, tiny_parts4,
                                    normalize, tmp_path):
        """Shard crash/recovery before the coordinator restart: assignment
        replay, failure-model progress and RPO bookkeeping all round-trip."""
        overrides = dict(COMMON, mode="synchronous",
                         failure_schedule=[(0.01, 0, 0.02)],
                         failover_policy="rebalance")
        reference = make_trainer(tiny_split_spec, tiny_parts4, normalize, **overrides)
        reference.train()
        resumed, history = run_interrupted(
            tiny_split_spec, tiny_parts4, normalize, tmp_path,
            crash_after=2, **overrides)
        assert_same_deployment(reference, resumed)
        assert history.queue_stats["shard_crashes"] == \
            reference.engine.stats.shard_crashes
        assert history.queue_stats["shard_recoveries"] == \
            reference.engine.stats.shard_recoveries

    def test_with_stochastic_churn(self, tiny_split_spec, tiny_parts4,
                                   normalize, tmp_path):
        """Churn draws ride per-shard RNG streams; restoring their packed
        state must reproduce the reference run's exact crash pattern."""
        overrides = dict(COMMON, mode="synchronous",
                         failure_mtbf_s=0.02, failure_mttr_s=0.01,
                         failover_policy="rebalance")
        reference = make_trainer(tiny_split_spec, tiny_parts4, normalize, **overrides)
        reference.train()
        assert reference.engine.stats.shard_crashes > 0  # churn actually fires
        resumed, history = run_interrupted(
            tiny_split_spec, tiny_parts4, normalize, tmp_path,
            crash_after=2, **overrides)
        assert_same_deployment(reference, resumed)
        assert history.queue_stats["shard_crashes"] == \
            reference.engine.stats.shard_crashes

    def test_resume_restores_traffic_and_engine_stats(
            self, tiny_split_spec, tiny_parts4, normalize, tmp_path):
        overrides = dict(COMMON, mode="synchronous")
        reference = make_trainer(tiny_split_spec, tiny_parts4, normalize, **overrides)
        ref_history = reference.train()
        resumed, history = run_interrupted(
            tiny_split_spec, tiny_parts4, normalize, tmp_path,
            crash_after=2, **overrides)
        ref_traffic = dict(ref_history.traffic)
        res_traffic = dict(history.traffic)
        for key in ("uplink_messages", "downlink_messages", "uplink_megabytes",
                    "downlink_megabytes", "sync_messages", "mean_transit_time_s"):
            assert res_traffic[key] == ref_traffic[key], key
        assert history.queue_stats["engine_events"] == \
            ref_history.queue_stats["engine_events"]
        assert history.queue_stats["processed_per_system"] == \
            ref_history.queue_stats["processed_per_system"]


class TestResumeGuards:
    def test_empty_store_rejected(self, tiny_split_spec, tiny_parts4,
                                  normalize, tmp_path):
        with pytest.raises(ValueError, match="no intact run checkpoint"):
            SpatioTemporalTrainer.resume_from_store(
                FileCheckpointStore(tmp_path), tiny_split_spec, tiny_parts4,
                train_transform=normalize)

    def test_shard_count_mismatch_rejected(self, tiny_split_spec, tiny_parts4,
                                           normalize, tmp_path):
        trainer = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                               checkpoint_dir=str(tmp_path),
                               **dict(COMMON, mode="synchronous"))
        trainer.train(epochs=1)
        run = FileCheckpointStore(tmp_path).latest_run()
        other = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                             epochs=3, num_servers=1)
        with pytest.raises(ValueError, match="shards"):
            other.restore_run_checkpoint(run)

    def test_client_count_mismatch_rejected(self, tiny_split_spec, tiny_parts4,
                                            tiny_parts, normalize, tmp_path):
        trainer = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                               checkpoint_dir=str(tmp_path),
                               **dict(COMMON, mode="synchronous"))
        trainer.train(epochs=1)
        run = FileCheckpointStore(tmp_path).latest_run()
        other = make_trainer(tiny_split_spec, tiny_parts, normalize,
                             epochs=3, num_servers=2, server_sync_every=2)
        with pytest.raises(ValueError, match="clients"):
            other.restore_run_checkpoint(run)


class TestStoreAutoBuild:
    def test_memory_store_when_no_dir(self, tiny_split_spec, tiny_parts4,
                                      normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                               epochs=1, num_servers=2, server_sync_every=2,
                               checkpoint_every_s=0.005)
        assert isinstance(trainer.checkpoint_store, MemoryCheckpointStore)
        trainer.train()
        assert trainer.checkpoint_store.checkpoints_written > 0

    def test_no_store_when_feature_off(self, tiny_split_spec, tiny_parts4,
                                       normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                               epochs=1, num_servers=2, server_sync_every=2)
        assert trainer.checkpoint_store is None
        history = trainer.train()
        assert "checkpoints_written" not in history.queue_stats

    def test_overhead_accounting_surfaces(self, tiny_split_spec, tiny_parts4,
                                          normalize, tmp_path):
        trainer = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                               epochs=1, num_servers=2, server_sync_every=2,
                               checkpoint_every_s=0.005,
                               checkpoint_dir=str(tmp_path))
        history = trainer.train()
        stats = history.queue_stats
        assert stats["checkpoints_written"] > 0
        assert stats["checkpoint_bytes"] > 0
        assert stats["checkpoint_write_wall_s"] > 0.0
