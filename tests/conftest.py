"""Shared fixtures for the test suite.

Everything here is deliberately tiny (small images, few samples, shallow
networks) so the whole suite runs in well under a minute while still
exercising every code path the full-scale experiments use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.dtype import default_dtype
from repro.core.models import CNNArchitecture, tiny_cnn_architecture
from repro.core.split import SplitSpec
from repro.data.datasets import ArrayDataset, SyntheticCIFAR10, train_test_split
from repro.data.partition import IIDPartitioner
from repro.data.transforms import Normalize


@pytest.fixture(autouse=True)
def _float64_precision_mode():
    """Run the unit-test suite under a float64 dtype policy.

    The library default is float32 (fast mode; see
    :mod:`repro.nn.dtype`), but the central-difference gradient checks
    and exact-equivalence assertions in this suite need float64
    round-off.  Tests that exercise the float32 policy itself opt back
    in with ``default_dtype(np.float32)``.
    """
    with default_dtype(np.float64):
        yield


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy generator shared by a test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_architecture() -> CNNArchitecture:
    """A 2-block, 8x8-input CNN: the smallest architecture that still has
    every layer type of the paper's Fig.-3 network."""
    return tiny_cnn_architecture(image_size=8, num_blocks=2, base_filters=4, dense_units=16)


@pytest.fixture(scope="session")
def tiny_dataset() -> SyntheticCIFAR10:
    """A 160-sample synthetic CIFAR-10-like dataset with 8x8 images."""
    return SyntheticCIFAR10(num_samples=160, image_size=8, seed=7)


@pytest.fixture(scope="session")
def tiny_splits(tiny_dataset):
    """(train, test) subsets of the tiny dataset."""
    return train_test_split(tiny_dataset, test_fraction=0.25, seed=3)


@pytest.fixture(scope="session")
def tiny_parts(tiny_splits):
    """The tiny training set partitioned IID across 2 end-systems."""
    train, _ = tiny_splits
    return IIDPartitioner(2, seed=5).partition(train)


@pytest.fixture(scope="session")
def normalize() -> Normalize:
    """Standard [-1, 1] normalization for 3-channel images."""
    return Normalize(mean=[0.5, 0.5, 0.5], std=[0.5, 0.5, 0.5])


@pytest.fixture
def tiny_split_spec(tiny_architecture) -> SplitSpec:
    """SplitSpec with one block on the end-systems (the paper's main cut)."""
    return SplitSpec(tiny_architecture, client_blocks=1)


@pytest.fixture
def small_classification_dataset(rng) -> ArrayDataset:
    """A linearly separable 3-class dataset of flat feature vectors."""
    centers = np.array([[2.0, 0.0, 0.0], [0.0, 2.0, 0.0], [0.0, 0.0, 2.0]])
    samples, labels = [], []
    for label, center in enumerate(centers):
        samples.append(center + 0.3 * rng.standard_normal((30, 3)))
        labels.extend([label] * 30)
    return ArrayDataset(np.concatenate(samples), np.array(labels))


def numeric_gradient(function, array: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference numerical gradient of a scalar function of ``array``.

    ``function`` must read ``array`` in place (the helper mutates and
    restores entries one at a time).
    """
    gradient = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + epsilon
        positive = function()
        array[index] = original - epsilon
        negative = function()
        array[index] = original
        gradient[index] = (positive - negative) / (2 * epsilon)
        iterator.iternext()
    return gradient


@pytest.fixture
def gradcheck():
    """Expose the numerical-gradient helper as a fixture."""
    return numeric_gradient
