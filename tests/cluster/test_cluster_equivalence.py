"""The sharded cluster path must reduce to the single-server trainer.

``num_servers=1`` runs the exact same event chains the pre-cluster
engine ran: a one-hub ``multi_hub_star_topology`` deployment (the
cluster-construction path) must reproduce the classic single-server
``star_topology`` run — per-epoch histories, final parameters and the
simulated clock all matching to 1e-9 on a lossless topology, in both
training modes (the same pinning style as
``tests/core/test_engine_equivalence.py``).

For actual multi-shard runs, the ``"average"`` sync mode is pinned
against an independent weighted-average reference at float64: every sync
must install exactly the per-shard-sample-weighted mean of the pre-sync
server segments, on every shard.
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import SpatioTemporalTrainer
from repro.simnet.topology import multi_hub_star_topology, star_topology

# Deliberately irregular latencies so no two arrival times collide.
LATENCIES_S = [0.0013, 0.0047, 0.0031, 0.0062]


def make_trainer(spec, parts, normalize, topology, **overrides):
    config = TrainingConfig.fast_debug(**overrides)
    return SpatioTemporalTrainer(spec, parts, config, topology=topology,
                                 train_transform=normalize)


def curves(history):
    return [(record.train_loss, record.train_accuracy) for record in history.records]


def assert_same_parameters(reference, cluster):
    reference_state = reference.state_dict()
    cluster_state = cluster.state_dict()
    assert set(reference_state) == set(cluster_state)
    for segment, params in reference_state.items():
        for name, value in params.items():
            np.testing.assert_allclose(
                cluster_state[segment][name], value, rtol=1e-9, atol=1e-12,
                err_msg=f"{segment}/{name} diverged",
            )


def assert_same_curves(reference, cluster):
    assert len(reference) == len(cluster)
    for (ref_loss, ref_acc), (clu_loss, clu_acc) in zip(reference, cluster):
        assert clu_loss == pytest.approx(ref_loss, rel=1e-9)
        assert clu_acc == pytest.approx(ref_acc, rel=1e-9)


EPOCHS = 2


class TestSingleShardEquivalence:
    """One hub == the classic star, event for event."""

    @pytest.mark.parametrize("server_batching", [True, False],
                             ids=["batched", "per-message"])
    def test_synchronous_matches_star(self, tiny_split_spec, tiny_parts, normalize,
                                      server_batching):
        latencies = LATENCIES_S[: len(tiny_parts)]
        reference = make_trainer(
            tiny_split_spec, tiny_parts, normalize,
            star_topology(len(tiny_parts), latencies_s=latencies),
            server_batching=server_batching,
        )
        cluster = make_trainer(
            tiny_split_spec, tiny_parts, normalize,
            multi_hub_star_topology(len(tiny_parts), 1, latencies_s=latencies),
            server_batching=server_batching,
        )
        assert cluster.cluster.num_shards == 1
        ref_history = reference.train(epochs=EPOCHS)
        clu_history = cluster.train(epochs=EPOCHS)
        assert_same_curves(curves(ref_history), curves(clu_history))
        assert_same_parameters(reference, cluster)
        assert cluster.simulated_time == pytest.approx(reference.simulated_time, rel=1e-9)
        # The rolled-up queue statistics must be the single queue's.
        for key in ("dropped", "fairness_index", "mean_waiting_time_s"):
            assert clu_history.queue_stats[key] == pytest.approx(
                ref_history.queue_stats[key], rel=1e-9
            )

    def test_asynchronous_matches_star(self, tiny_split_spec, tiny_parts, normalize):
        latencies = LATENCIES_S[: len(tiny_parts)]
        overrides = dict(mode="asynchronous", max_in_flight=2,
                         server_step_time_s=0.0021)
        reference = make_trainer(
            tiny_split_spec, tiny_parts, normalize,
            star_topology(len(tiny_parts), latencies_s=latencies), **overrides,
        )
        cluster = make_trainer(
            tiny_split_spec, tiny_parts, normalize,
            multi_hub_star_topology(len(tiny_parts), 1, latencies_s=latencies),
            **overrides,
        )
        ref_history = reference.train(epochs=EPOCHS)
        clu_history = cluster.train(epochs=EPOCHS)
        assert_same_curves(curves(ref_history), curves(clu_history))
        assert_same_parameters(reference, cluster)
        assert cluster.simulated_time == pytest.approx(reference.simulated_time, rel=1e-9)

    def test_sync_settings_are_inert_with_one_shard(self, tiny_split_spec, tiny_parts,
                                                    normalize):
        """server_sync_every/mode must not perturb a single-server run."""
        latencies = LATENCIES_S[: len(tiny_parts)]
        plain = make_trainer(
            tiny_split_spec, tiny_parts, normalize,
            star_topology(len(tiny_parts), latencies_s=latencies),
        )
        tuned = make_trainer(
            tiny_split_spec, tiny_parts, normalize,
            star_topology(len(tiny_parts), latencies_s=latencies),
            server_sync_every=1, server_sync_mode="staleness",
        )
        assert_same_curves(curves(plain.train(epochs=1)), curves(tuned.train(epochs=1)))
        assert_same_parameters(plain, tuned)
        assert tuned.engine.stats.weight_syncs == 0
        assert tuned.engine.stats.sync_messages == 0


class TestWeightedAverageReference:
    """2-shard full averaging == an independent weighted-mean reference."""

    def test_every_sync_installs_the_weighted_average(self, tiny_split_spec,
                                                      tiny_parts4, normalize):
        config = TrainingConfig.fast_debug(
            num_servers=2, server_sync_every=1, server_sync_mode="average",
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts4, config,
                                        train_transform=normalize)
        shards = trainer.cluster.shards
        original_sync = trainer.cluster.sync_average
        records = []

        def spying_sync(delivered=None, snapshots=None, participants=None):
            assert delivered is None, "lossless run must use the global-average path"
            assert participants is None, "lossless run must not restrict the average"
            pre = [
                {name: value.copy() for name, value in shard.server.state_dict().items()}
                for shard in shards
            ]
            weights = [shard.samples_since_sync for shard in shards]
            result = original_sync(snapshots=snapshots, participants=participants)
            post = [
                {name: value.copy() for name, value in shard.server.state_dict().items()}
                for shard in shards
            ]
            records.append((pre, weights, post))
            return result

        trainer.cluster.sync_average = spying_sync
        trainer.train(epochs=1)

        assert records, "no sync event ever fired"
        for pre, weights, post in records:
            # The shards genuinely diverged before the sync (each trained
            # on different clients), so the averaging is load-bearing.
            assert any(
                not np.array_equal(pre[0][name], pre[1][name]) for name in pre[0]
            )
            total = float(sum(weights))
            assert total > 0
            for name in pre[0]:
                expected = np.average(
                    np.stack([np.asarray(state[name], dtype=np.float64)
                              for state in pre]),
                    axis=0,
                    weights=[weight / total for weight in weights],
                )
                for shard_index in range(len(shards)):
                    np.testing.assert_allclose(
                        post[shard_index][name], expected, rtol=1e-12, atol=1e-15,
                        err_msg=f"shard {shard_index} {name} is not the weighted average",
                    )

    def test_sync_counters_and_cadence(self, tiny_split_spec, tiny_parts4, normalize):
        config = TrainingConfig.fast_debug(
            num_servers=2, server_sync_every=2, server_sync_mode="average",
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts4, config,
                                        train_transform=normalize)
        history = trainer.train(epochs=1)
        # Every client holds 30 samples at batch 8 -> 4 rounds per shard;
        # a rendezvous fires after shard-rounds 2 and 4.
        expected_syncs = 2
        assert trainer.engine.stats.weight_syncs == expected_syncs
        # Full mesh: every sync ships S*(S-1) snapshots.
        assert trainer.engine.stats.sync_messages == expected_syncs * 2
        assert history.traffic["sync_messages"] == expected_syncs * 2
        assert history.traffic["sync_megabytes"] > 0
        assert history.queue_stats["weight_syncs"] == expected_syncs

    def test_average_barrier_costs_inter_server_latency(self, tiny_split_spec,
                                                        tiny_parts4, normalize):
        """The averaging barrier delays the next round; gossip does not."""
        inter_latency = 0.25

        def build(sync_mode):
            topology = multi_hub_star_topology(
                len(tiny_parts4), 2, latencies_s=[0.001] * len(tiny_parts4),
                inter_server_latency_s=inter_latency,
            )
            config = TrainingConfig.fast_debug(
                num_servers=2, server_sync_every=1, server_sync_mode=sync_mode,
            )
            return SpatioTemporalTrainer(tiny_split_spec, tiny_parts4, config,
                                         topology=topology, train_transform=normalize)

        barrier = build("average")
        gossip = build("staleness")
        barrier_history = barrier.train(epochs=1)
        gossip_history = gossip.train(epochs=1)
        syncs = barrier.engine.stats.weight_syncs
        assert syncs > 0
        # Every barrier sync adds at least one inter-server round trip of
        # simulated time that the non-blocking gossip mode does not pay.
        assert barrier_history.total_simulated_time >= (
            gossip_history.total_simulated_time + syncs * inter_latency - 1e-9
        )


class TestLossyAverageSync:
    """Dropped inter-server snapshots must not contribute to the average."""

    def test_partial_delivery_averages_only_what_arrived(self, tiny_split_spec):
        from repro.cluster import ClusterCoordinator, ServerShard
        from repro.core.server import CentralServer

        shards = [
            ServerShard(index, CentralServer(tiny_split_spec, seed=0), f"server_{index}")
            for index in range(2)
        ]
        cluster = ClusterCoordinator(shards, {0: 0, 1: 1})
        # Give the replicas known, distinct weights and sync weights 1:3.
        base = shards[0].server.state_dict()
        shards[1].server.load_state_dict({k: v + 1.0 for k, v in base.items()})
        shards[0].samples_since_sync = 1
        shards[1].samples_since_sync = 3
        # Shard 0's snapshot was lost on the way to shard 1's peer — no:
        # here, shard 0 received nothing, shard 1 received shard 0's.
        cluster.sync_average(delivered={0: set(), 1: {0}})
        after_0 = shards[0].server.state_dict()
        after_1 = shards[1].server.state_dict()
        for name, value in base.items():
            # Shard 0 heard from nobody: keeps its own weights.
            np.testing.assert_allclose(after_0[name], value, rtol=0, atol=0)
            # Shard 1 averages itself (weight 3) with shard 0 (weight 1).
            np.testing.assert_allclose(
                after_1[name], 0.25 * value + 0.75 * (value + 1.0),
                rtol=1e-12, atol=1e-15,
            )

    def test_lossy_inter_server_links_let_replicas_diverge(self, tiny_split_spec,
                                                           tiny_parts4, normalize):
        topology = multi_hub_star_topology(
            len(tiny_parts4), 2, latencies_s=[0.001] * len(tiny_parts4),
            inter_server_drop_probability=0.9, seed=21,
        )
        config = TrainingConfig.fast_debug(
            num_servers=2, server_sync_every=1, server_sync_mode="average",
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts4, config,
                                        topology=topology, train_transform=normalize)
        history = trainer.train(epochs=1)
        assert trainer.engine.stats.sync_messages_lost > 0
        assert history.traffic["sync_dropped"] == trainer.engine.stats.sync_messages_lost
        # With 90% loss the replicas cannot have ended identical — lost
        # snapshots genuinely never contributed.
        state_a = trainer.cluster.shards[0].server.state_dict()
        state_b = trainer.cluster.shards[1].server.state_dict()
        assert any(not np.array_equal(state_a[name], state_b[name]) for name in state_a)
        assert all(es.pending_batches == 0 for es in trainer.end_systems)


class TestStalenessMerge:
    def test_merge_weight_decays_with_staleness(self):
        from repro.cluster.coordinator import ClusterCoordinator

        fresh = ClusterCoordinator.staleness_merge_weight(0.0)
        aged = ClusterCoordinator.staleness_merge_weight(1.0)
        ancient = ClusterCoordinator.staleness_merge_weight(100.0)
        assert fresh == pytest.approx(0.5)
        assert aged == pytest.approx(0.25)
        assert ancient < 0.01
        assert fresh > aged > ancient

    def test_async_gossip_converges_replicas(self, tiny_split_spec, tiny_parts4,
                                             normalize):
        config = TrainingConfig.fast_debug(
            num_servers=2, server_sync_every=1, server_sync_mode="staleness",
            mode="asynchronous", server_step_time_s=0.001,
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts4, config,
                                        train_transform=normalize)
        trainer.train(epochs=1)
        assert trainer.engine.stats.weight_syncs > 0
        # Gossip keeps the replicas close: the relative gap between the
        # two server segments stays far below the weight scale.
        state_a = trainer.cluster.shards[0].server.state_dict()
        state_b = trainer.cluster.shards[1].server.state_dict()
        for name in state_a:
            scale = np.abs(state_a[name]).mean() + 1e-12
            gap = np.abs(state_a[name] - state_b[name]).mean()
            assert gap / scale < 1.0

    def test_average_mode_rejected_in_async(self):
        with pytest.raises(ValueError, match="barrier"):
            TrainingConfig(num_servers=2, mode="asynchronous",
                           server_sync_mode="average")
