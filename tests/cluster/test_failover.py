"""Shard failover: crash injection, client reassignment, recovery.

The invariants pinned here are the ones ISSUE 5 names:

* with failures configured but never firing (a scripted crash beyond the
  training horizon), the cluster engine reproduces the no-failure run —
  histories, parameters and the simulated clock to 1e-9;
* a scripted mid-epoch shard crash lets training complete in both sync
  modes (``"average"`` and ``"staleness"``) and both training modes,
  every one of the dead shard's clients is reassigned to a survivor, and
  no client-side ``_pending`` activation leaks;
* the ``"average"`` rendezvous skips unhealthy shards instead of hanging
  the barrier, and a dead shard neither contributes to nor receives the
  installed average;
* a recovering shard reinstalls the coordinator's last sync snapshot,
  fails its original clients back (policy permitting), and resumes
  training.
"""

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator, ServerShard
from repro.cluster.failover import (
    RebalanceFailover,
    ScheduledFailures,
    StandbyFailover,
    StochasticFailures,
    available_failover_policies,
    get_failover_policy,
)
from repro.core.config import TrainingConfig
from repro.core.server import CentralServer
from repro.core.trainer import SpatioTemporalTrainer


def make_trainer(spec, parts, normalize, **overrides):
    config = TrainingConfig.fast_debug(**overrides)
    return SpatioTemporalTrainer(spec, parts, config, train_transform=normalize)


def curves(history):
    return [(record.train_loss, record.train_accuracy) for record in history.records]


def assert_no_leaks(trainer):
    assert all(es.pending_batches == 0 for es in trainer.end_systems)
    assert not trainer.cluster.has_pending()


def assert_failover_accounting(trainer):
    """Crash-shed messages must balance against client notifications."""
    stats = trainer.engine.stats
    queue_dropped = sum(shard.queue.dropped for shard in trainer.cluster.shards)
    log = trainer.transport.log
    notified = sum(es.drops_notified for es in trainer.end_systems)
    assert notified == (
        queue_dropped + log.dropped_messages - log.nack_dropped - log.sync_dropped
        + stats.failover_dropped
    )


class TestFailureModels:
    def test_scheduled_timeline_orders_and_pairs(self):
        model = ScheduledFailures([(0.5, 1, 0.2), (0.1, 0)])
        first = model.peek(1)
        assert (first.time, first.kind) == (0.5, "crash")
        model.advance(1)
        second = model.peek(1)
        assert second.time == pytest.approx(0.7)
        assert second.kind == "recover"
        model.advance(1)
        assert model.peek(1) is None
        # Shard 0 crashes once and never recovers.
        assert model.peek(0).kind == "crash"
        model.advance(0)
        assert model.peek(0) is None
        # Shards without scripted failures have empty timelines.
        assert model.peek(7) is None

    def test_scheduled_validation(self):
        with pytest.raises(ValueError, match="time_s"):
            ScheduledFailures([(0.5,)])
        with pytest.raises(ValueError, match="downtime_s"):
            ScheduledFailures([(0.5, 0, -1.0)])
        with pytest.raises(ValueError, match="non-negative"):
            ScheduledFailures([(-0.5, 0)])

    def test_scheduled_rejects_overlapping_outages(self):
        # A crash scripted inside another outage would silently end the
        # longer outage at the shorter entry's recovery.
        with pytest.raises(ValueError, match="overlapping"):
            ScheduledFailures([(1.0, 0, 10.0), (2.0, 0, 1.0)])
        # An open-ended crash must be the shard's last entry.
        with pytest.raises(ValueError, match="overlapping"):
            ScheduledFailures([(1.0, 0), (2.0, 0, 1.0)])
        # Sequential outages (and other shards' overlaps-in-time) are fine,
        # including back-to-back ones — in either entry order.
        ScheduledFailures([(1.0, 0, 1.0), (3.0, 0, 1.0), (1.5, 1, 5.0)])
        ScheduledFailures([(1.0, 0, 1.0), (2.0, 0, 5.0)])
        ScheduledFailures([(2.0, 0, 5.0), (1.0, 0, 1.0)])

    def test_stochastic_alternates_and_is_deterministic(self):
        model_a = StochasticFailures(mtbf_s=10.0, mttr_s=1.0, seed=3)
        model_b = StochasticFailures(mtbf_s=10.0, mttr_s=1.0, seed=3)
        kinds = []
        times = []
        for _ in range(6):
            transition = model_a.peek(0)
            # Peeking repeatedly must not consume randomness.
            assert model_a.peek(0) is transition
            other = model_b.peek(0)
            assert other.time == transition.time and other.kind == transition.kind
            kinds.append(transition.kind)
            times.append(transition.time)
            model_a.advance(0)
            model_b.advance(0)
        assert kinds == ["crash", "recover"] * 3
        assert times == sorted(times)

    def test_stochastic_streams_differ_per_shard(self):
        model = StochasticFailures(mtbf_s=10.0, mttr_s=1.0, seed=3)
        assert model.peek(0).time != model.peek(1).time


class TestFailoverPolicies:
    def test_registry(self):
        assert available_failover_policies() == ["rebalance", "standby"]
        assert isinstance(get_failover_policy("rebalance"), RebalanceFailover)
        assert isinstance(get_failover_policy("standby"), StandbyFailover)
        with pytest.raises(KeyError, match="unknown failover policy"):
            get_failover_policy("chaos")

    def test_rebalance_spreads_over_survivors(self):
        policy = RebalanceFailover(assigner="load_aware")
        moves = policy.reassign([3, 5, 9, 11], survivors=[0, 2],
                                loads=[40, 10, 10, 40])
        assert set(moves) == {3, 5, 9, 11}
        assert set(moves.values()) <= {0, 2}
        # LPT on the loads balances the survivors' added work.
        load_per_survivor = {0: 0, 2: 0}
        for client, load in zip([3, 5, 9, 11], [40, 10, 10, 40]):
            load_per_survivor[moves[client]] += load
        assert load_per_survivor[0] == load_per_survivor[2]

    def test_rebalance_with_no_survivors_strands(self):
        assert RebalanceFailover().reassign([1, 2], survivors=[]) == {}

    def test_standby_never_moves(self):
        assert StandbyFailover().reassign([1, 2], survivors=[0]) == {}
        assert StandbyFailover.failback is False


class TestConfigValidation:
    def test_schedule_and_mtbf_are_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            TrainingConfig(failure_schedule=[(0.1, 0)], failure_mtbf_s=5.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="failover_policy"):
            TrainingConfig(failure_mtbf_s=5.0, failover_policy="chaos")

    def test_unknown_failover_assigner_rejected(self):
        with pytest.raises(ValueError, match="failover_assigner"):
            TrainingConfig(failure_mtbf_s=5.0, failover_assigner="nope")

    def test_schedule_shard_ids_must_exist(self):
        # An out-of-range shard id would silently never fire.
        with pytest.raises(ValueError, match="num_servers"):
            TrainingConfig(num_servers=2, failure_schedule=[(0.01, 2)])
        TrainingConfig(num_servers=2, failure_schedule=[(0.01, 1)])

    def test_policy_only_checked_when_failures_enabled(self):
        # An unused bogus policy name must not break failure-free configs.
        config = TrainingConfig(failover_policy="rebalance")
        assert not config.failures_enabled


class TestInertWhenNotFiring:
    """A failure timeline beyond the horizon must not perturb the run."""

    def test_synchronous_average_identical(self, tiny_split_spec, tiny_parts4,
                                           normalize):
        baseline = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                                num_servers=2, server_sync_every=1,
                                server_sync_mode="average")
        injected = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                                num_servers=2, server_sync_every=1,
                                server_sync_mode="average",
                                failure_schedule=[(1e6, 1, 1.0)])
        base_history = baseline.train(epochs=2)
        injected_history = injected.train(epochs=2)
        assert injected.engine.stats.shard_crashes == 0
        assert injected.engine.stats.clients_reassigned == 0
        for (base_loss, base_acc), (loss, acc) in zip(curves(base_history),
                                                      curves(injected_history)):
            assert loss == pytest.approx(base_loss, rel=1e-9)
            assert acc == pytest.approx(base_acc, rel=1e-9)
        assert injected.simulated_time == pytest.approx(baseline.simulated_time,
                                                        rel=1e-9)
        base_state = baseline.state_dict()
        injected_state = injected.state_dict()
        for segment, params in base_state.items():
            for name, value in params.items():
                np.testing.assert_allclose(
                    injected_state[segment][name], value, rtol=1e-9, atol=1e-12,
                    err_msg=f"{segment}/{name} diverged",
                )

    def test_asynchronous_identical(self, tiny_split_spec, tiny_parts4, normalize):
        overrides = dict(num_servers=2, server_sync_every=1,
                         server_sync_mode="staleness", mode="asynchronous",
                         server_step_time_s=0.002)
        baseline = make_trainer(tiny_split_spec, tiny_parts4, normalize, **overrides)
        injected = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                                failure_schedule=[(1e6, 0)], **overrides)
        base_history = baseline.train(epochs=2)
        injected_history = injected.train(epochs=2)
        assert injected.engine.stats.shard_crashes == 0
        for (base_loss, base_acc), (loss, acc) in zip(curves(base_history),
                                                      curves(injected_history)):
            assert loss == pytest.approx(base_loss, rel=1e-9)
            assert acc == pytest.approx(base_acc, rel=1e-9)
        assert injected.simulated_time == pytest.approx(baseline.simulated_time,
                                                        rel=1e-9)


class TestCheckpointObserverInert:
    """Periodic checkpoint captures are pure observers: with no crash to
    recover from, a checkpointing run matches the feature-off run to 1e-9
    (reading RNG stream positions must not advance them)."""

    @pytest.mark.parametrize("overrides", [
        dict(mode="synchronous", server_sync_mode="average"),
        dict(mode="asynchronous", server_sync_mode="staleness",
             server_step_time_s=0.002),
    ], ids=["synchronous", "asynchronous"])
    def test_checkpointing_on_matches_off(self, tiny_split_spec, tiny_parts4,
                                          normalize, overrides):
        common = dict(num_servers=2, server_sync_every=1, **overrides)
        baseline = make_trainer(tiny_split_spec, tiny_parts4, normalize, **common)
        observed = make_trainer(tiny_split_spec, tiny_parts4, normalize,
                                checkpoint_every_s=0.002, **common)
        base_history = baseline.train(epochs=2)
        observed_history = observed.train(epochs=2)
        assert observed.engine.stats.checkpoints_written > 0
        for (base_loss, base_acc), (loss, acc) in zip(curves(base_history),
                                                      curves(observed_history)):
            assert loss == pytest.approx(base_loss, rel=1e-9)
            assert acc == pytest.approx(base_acc, rel=1e-9)
        assert observed.simulated_time == pytest.approx(baseline.simulated_time,
                                                        rel=1e-9)
        base_state = baseline.state_dict()
        observed_state = observed.state_dict()
        for segment, params in base_state.items():
            for name, value in params.items():
                np.testing.assert_allclose(
                    observed_state[segment][name], value, rtol=1e-9, atol=1e-12,
                    err_msg=f"{segment}/{name} diverged",
                )


class TestScriptedCrashSynchronous:
    """Mid-epoch crash, synchronous training, both sync modes."""

    @pytest.mark.parametrize("sync_mode", ["average", "staleness"])
    def test_crash_reassigns_and_completes(self, tiny_split_spec, tiny_parts4,
                                           normalize, sync_mode):
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1, server_sync_mode=sync_mode,
            failure_schedule=[(0.012, 1)], failover_policy="rebalance",
        )
        orphans = trainer.cluster.original_clients(1)
        assert orphans, "shard 1 must own clients for the crash to matter"
        history = trainer.train(epochs=2)
        stats = trainer.engine.stats
        assert stats.shard_crashes == 1
        assert not trainer.cluster.shards[1].healthy
        # Every one of the dead shard's clients now lives on the survivor.
        assert all(trainer.cluster.assignment[sid] == 0 for sid in orphans)
        assert stats.clients_reassigned == len(orphans)
        # Training genuinely completed on the survivor: both epochs have
        # records and the survivor processed work for the moved clients.
        assert len(history.records) == 2
        processed = trainer.cluster.processed_per_system()
        assert all(processed.get(sid, 0) > 0 for sid in orphans)
        assert_no_leaks(trainer)
        assert_failover_accounting(trainer)
        assert history.queue_stats["shard_crashes"] == 1
        assert history.queue_stats["clients_reassigned"] == len(orphans)
        assert history.queue_stats["total_downtime_s"] > 0

    def test_average_rendezvous_skips_dead_shard(self, tiny_split_spec, tiny_parts4,
                                                 normalize):
        """The barrier must fire without the crashed shard (no hang)."""
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1, server_sync_mode="average",
            failure_schedule=[(0.012, 1)], failover_policy="rebalance",
        )
        history = trainer.train(epochs=2)
        # The run terminated (no rendezvous deadlock) and every sync
        # after the crash involved only the survivor: snapshots are only
        # ever shipped between two healthy shards, so inter-server
        # traffic stops at the crash.
        assert len(history.records) == 2
        for shard_stats in history.queue_stats["per_shard"]:
            if shard_stats["shard_id"] == 1:
                assert shard_stats["healthy"] is False
                assert shard_stats["crashes"] == 1

    def test_crash_and_recovery_inside_one_flight_time(self, tiny_split_spec,
                                                       tiny_parts4, normalize):
        """A shard that crashes AND recovers while uplinks are in flight.

        The in-flight messages were sent under the pre-crash generation;
        admitting them after the recovery would strand them in a queue
        whose round chain died with the crash.  They must be shed (and
        notified) like any other crash casualty, and the recovered chain
        must resume cleanly.
        """
        from repro.simnet.topology import multi_hub_star_topology

        topology = multi_hub_star_topology(
            4, 2, latencies_s=[0.002, 0.002, 0.05, 0.05],
            assignment=[0, 0, 1, 1],
        )
        config = TrainingConfig.fast_debug(
            num_servers=2, server_sync_every=1, server_sync_mode="staleness",
            failure_schedule=[(0.01, 1, 0.01)], failover_policy="standby",
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts4, config,
                                        topology=topology,
                                        train_transform=normalize)
        history = trainer.train(epochs=1)
        stats = trainer.engine.stats
        assert stats.shard_crashes == 1
        assert stats.shard_recoveries == 1
        # The round-1 uplinks of clients 2/3 (50 ms links) straddled the
        # outage and were shed on arrival despite the shard being up again.
        assert stats.failover_dropped >= 2
        assert len(history.records) == 1
        processed = trainer.cluster.processed_per_system()
        assert processed.get(2, 0) > 0 and processed.get(3, 0) > 0
        assert_no_leaks(trainer)
        assert_failover_accounting(trainer)

    def test_no_duplicate_chain_after_crash_while_released(self, tiny_split_spec,
                                                           tiny_parts4, normalize,
                                                           monkeypatch):
        """Crash + recovery while an 'average' sync is still in flight.

        The shard was already released into the pending ``apply_average``
        when it crashed; the recovery restarts its chain, so the sync's
        release must NOT start a second one (release tickets are
        generation-checked).  A duplicate chain shows up as an extra
        round-start event scheduled when the sync lands.
        """
        import repro.core.engine as engine_mod
        from repro.simnet.events import Simulator
        from repro.simnet.topology import multi_hub_star_topology

        scheduled = []

        class RecordingSimulator(Simulator):
            def schedule(self, time, callback, priority=0, label="", payload=None):
                scheduled.append(label)
                return super().schedule(time, callback, priority, label, payload)

        monkeypatch.setattr(engine_mod, "Simulator", RecordingSimulator)
        topology = multi_hub_star_topology(
            len(tiny_parts4), 2, latencies_s=[0.001] * len(tiny_parts4),
            inter_server_latency_s=0.05,
        )
        config = TrainingConfig.fast_debug(
            num_servers=2, server_sync_every=1, server_sync_mode="average",
            # Crash at t=0.02 and recover at t=0.03 — inside the first
            # sync's 50 ms inter-server flight (it lands ~t=0.053).
            failure_schedule=[(0.02, 1, 0.01)], failover_policy="standby",
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts4, config,
                                        topology=topology,
                                        train_transform=normalize)
        trainer.train(epochs=1)
        assert trainer.engine.stats.shard_recoveries == 1
        # Deterministic timeline (constant latencies, scripted crash):
        # each shard starts rounds 0..3 plus one empty exhaustion round =
        # 10 round-start events.  The duplicate-chain bug scheduled an
        # 11th when apply_average re-released the recovered shard.
        assert scheduled.count("round-start") == 10
        assert_no_leaks(trainer)

    def test_standby_parks_clients_until_recovery(self, tiny_split_spec,
                                                  tiny_parts4, normalize):
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1, server_sync_mode="average",
            failure_schedule=[(0.012, 1, 0.08)], failover_policy="standby",
        )
        orphans = trainer.cluster.original_clients(1)
        history = trainer.train(epochs=2)
        stats = trainer.engine.stats
        assert stats.shard_crashes == 1
        assert stats.shard_recoveries == 1
        # Standby never moves anybody ...
        assert stats.clients_reassigned == 0
        assert all(trainer.cluster.assignment[sid] == 1 for sid in orphans)
        # ... and the parked clients resume on their home shard after the
        # outage: it processed work and the run completed both epochs.
        assert trainer.cluster.shards[1].healthy
        assert trainer.cluster.shards[1].downtime_s == pytest.approx(0.08)
        assert len(history.records) == 2
        processed = trainer.cluster.processed_per_system()
        assert all(processed.get(sid, 0) > 0 for sid in orphans)
        assert_no_leaks(trainer)
        assert_failover_accounting(trainer)


class TestScriptedCrashAsynchronous:
    """Mid-run crash + recovery, asynchronous training (staleness sync)."""

    def test_crash_failover_and_failback(self, tiny_split_spec, tiny_parts4,
                                         normalize):
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1, server_sync_mode="staleness",
            mode="asynchronous", server_step_time_s=0.001,
            failure_schedule=[(0.01, 1, 0.05)], failover_policy="rebalance",
        )
        orphans = trainer.cluster.original_clients(1)
        history = trainer.train(epochs=2)
        stats = trainer.engine.stats
        assert stats.shard_crashes == 1
        assert stats.shard_recoveries == 1
        # Failover moved the orphans out, failback brought them home.
        assert stats.clients_reassigned == 2 * len(orphans)
        assert all(trainer.cluster.assignment[sid] == 1 for sid in orphans)
        assert trainer.cluster.shards[1].healthy
        assert trainer.cluster.shards[1].downtime_s == pytest.approx(0.05)
        assert len(history.records) == 2
        assert_no_leaks(trainer)
        assert_failover_accounting(trainer)

    def test_recovery_resets_dispatch_gate(self, tiny_split_spec, tiny_splits,
                                            normalize):
        """A recovered shard must dispatch work arriving before its stale
        ``next_free``.

        The pre-crash step's slow downlink pushed ``next_free`` far out,
        and the dispatch event parked there died with the crash's
        generation bump — so without resetting the gate at recovery, a
        batch arriving in the window [recovery, old next_free) sits in
        the queue forever once no later arrival comes to rescue it.
        """
        from repro.data.datasets import ArrayDataset
        from repro.simnet.topology import star_topology

        train, _ = tiny_splits
        images, labels = train.arrays()
        # Uneven shards: client 0 holds one batch, client 1 holds two —
        # after client 0 exhausts, only client 1's stalled batch remains.
        parts = [ArrayDataset(images[:15], labels[:15]),
                 ArrayDataset(images[15:45], labels[15:45])]
        topology = star_topology(2, latencies_s=[0.001, 0.001],
                                 downlink_latencies_s=[0.3, 0.3])
        config = TrainingConfig.fast_debug(
            batch_size=15, shuffle=False,
            mode="asynchronous", server_batching=False,
            server_step_time_s=0.01,
            failure_schedule=[(0.05, 0, 0.05)], failover_policy="standby",
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, parts, config,
                                        topology=topology,
                                        train_transform=normalize)
        trainer.train(epochs=1)
        stats = trainer.engine.stats
        assert stats.shard_crashes == 1 and stats.shard_recoveries == 1
        # Client 1's post-recovery batch was dispatched, not stranded
        # behind the dead step's next_free gate.
        assert_no_leaks(trainer)
        processed = trainer.cluster.processed_per_system()
        # Client 1's first batch was shed at the crash; its second — sent
        # after recovery, arriving before the stale gate — must train.
        assert processed.get(1, 0) == 15
        assert_failover_accounting(trainer)

    def test_crash_sheds_queued_work_leak_free(self, tiny_split_spec, tiny_parts4,
                                               normalize):
        # Per-message processing with a slow step keeps messages queued,
        # so the crash genuinely sheds in-queue work through the
        # failover accounting.
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=4, server_sync_mode="staleness",
            mode="asynchronous", server_step_time_s=0.02, max_in_flight=2,
            server_batching=False,
            failure_schedule=[(0.015, 1)], failover_policy="rebalance",
        )
        trainer.train(epochs=1)
        assert trainer.engine.stats.shard_crashes == 1
        assert trainer.engine.stats.failover_dropped > 0
        assert_no_leaks(trainer)
        assert_failover_accounting(trainer)


class TestRecoveryRestore:
    """Recovery reinstalls the last sync snapshot before catching up."""

    def make_cluster(self, spec, num_shards=2):
        shards = [
            ServerShard(index, CentralServer(spec, seed=0), f"server_{index}")
            for index in range(num_shards)
        ]
        assignment = {index: index % num_shards for index in range(num_shards * 2)}
        return ClusterCoordinator(shards, assignment)

    def test_sync_average_records_recovery_point(self, tiny_split_spec):
        cluster = self.make_cluster(tiny_split_spec)
        base = cluster.shards[0].server.state_dict()
        cluster.shards[1].server.load_state_dict(
            {name: value + 2.0 for name, value in base.items()}
        )
        cluster.shards[0].samples_since_sync = 1
        cluster.shards[1].samples_since_sync = 1
        averaged = cluster.sync_average()
        assert cluster.last_sync_snapshot is averaged
        for name, value in base.items():
            np.testing.assert_allclose(averaged[name], value + 1.0,
                                       rtol=1e-12, atol=1e-15)

    def test_sync_average_skips_unhealthy_shard(self, tiny_split_spec):
        cluster = self.make_cluster(tiny_split_spec, num_shards=3)
        base = cluster.shards[0].server.state_dict()
        for index in (1, 2):
            cluster.shards[index].server.load_state_dict(
                {name: value + index for name, value in base.items()}
            )
        for shard in cluster.shards:
            shard.samples_since_sync = 1
        dead = cluster.shards[2]
        dead.mark_down(now=1.0)
        before = dead.server.state_dict()
        before_syncs = dead.syncs_applied
        averaged = cluster.sync_average()
        # The average covers only the two healthy shards ...
        for name, value in base.items():
            np.testing.assert_allclose(averaged[name], value + 0.5,
                                       rtol=1e-12, atol=1e-15)
        # ... and the dead shard neither contributed nor received it.
        after = dead.server.state_dict()
        for name, value in before.items():
            np.testing.assert_array_equal(after[name], value)
        assert dead.syncs_applied == before_syncs

    def test_merge_staleness_ignores_dead_shard(self, tiny_split_spec):
        cluster = self.make_cluster(tiny_split_spec)
        dead = cluster.shards[1]
        dead.mark_down(now=0.5)
        before = dead.server.state_dict()
        snapshot = {name: value + 5.0 for name, value in before.items()}
        assert cluster.merge_staleness(dead, snapshot, staleness_s=0.0) == 0.0
        after = dead.server.state_dict()
        for name, value in before.items():
            np.testing.assert_array_equal(after[name], value)

    def test_recovered_shard_reinstalls_snapshot(self, tiny_split_spec, tiny_parts4,
                                                 normalize):
        # Average mode with sync_every=1: a snapshot exists before the
        # crash, so the recovery installs it (visible as a reset of the
        # per-sync counters plus an extra syncs_applied tick).
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1, server_sync_mode="average",
            failure_schedule=[(0.03, 1, 0.02)], failover_policy="standby",
        )
        trainer.train(epochs=2)
        assert trainer.engine.stats.shard_recoveries == 1
        assert trainer.cluster.last_sync_snapshot is not None

    def test_reassign_moves_client_ids(self, tiny_split_spec):
        cluster = self.make_cluster(tiny_split_spec)
        assert cluster.reassign(1, 0) is True
        assert cluster.assignment[1] == 0
        assert cluster.shards[0].client_ids == [0, 1, 2]
        assert cluster.shards[1].client_ids == [3]
        # Idempotent and reversible.
        assert cluster.reassign(1, 0) is False
        assert cluster.reassign(1, 1) is True
        assert cluster.original_assignment[1] == 1
        with pytest.raises(ValueError, match="reassign"):
            cluster.reassign(1, 5)


class TestRecoveryRestorePreference:
    """The recovery source ladder: newest intact checkpoint, else the last
    sync snapshot, else the initial weights — with RPO accounted per hop."""

    def test_crash_before_first_sync_reinstalls_initial_weights(
            self, tiny_split_spec, tiny_parts4, normalize):
        """Satellite pin: recovery with no sync snapshot (and no store)
        must deterministically reinstall the shard's initial weights."""
        from repro.simnet.events import Simulator

        def build():
            return make_trainer(
                tiny_split_spec, tiny_parts4, normalize,
                num_servers=2, server_sync_every=1000,
                server_sync_mode="average",
                failure_schedule=[(1e6, 0, 1.0)],  # inert: crash injected below
                failover_policy="standby",
            )

        trainer = build()
        initial = {name: value.copy()
                   for name, value in trainer.cluster.initial_snapshot.items()}
        trainer.train(epochs=1)
        assert trainer.cluster.last_sync_snapshot is None
        shard = trainer.cluster.shards[0]
        trained = shard.server.state_dict()
        assert any(not np.array_equal(trained[name], initial[name])
                   for name in initial)  # the epoch actually moved the weights
        samples_at_crash = shard.samples_processed

        sim = Simulator()
        engine = trainer.engine
        engine._crash_shard(sim, engine._runtimes[0])
        engine._recover_shard(sim, engine._runtimes[0])

        recovered = shard.server.state_dict()
        for name, value in initial.items():
            np.testing.assert_array_equal(recovered[name], value,
                                          err_msg=f"{name} not reset")
        # A restart destroys the optimizer's moments and per-sync counters.
        optimizer = shard.server.optimizer
        assert optimizer.step_count == 0
        assert all(buffer is None
                   for buffers in optimizer.state_dict()["slots"].values()
                   for buffer in buffers)
        assert shard.samples_since_sync == 0
        assert shard.steps_since_sync == 0
        assert shard.recoveries_from_initial == 1
        assert shard.rpo_lost_samples == samples_at_crash  # everything lost
        # Deterministic: an identically-seeded twin starts from the exact
        # same initial snapshot the recovery reinstalls.
        twin = build()
        for name, value in twin.cluster.initial_snapshot.items():
            np.testing.assert_array_equal(initial[name], value)

    def test_crash_before_first_sync_end_to_end(self, tiny_split_spec,
                                                tiny_parts4, normalize):
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1000, server_sync_mode="average",
            failure_schedule=[(0.01, 0, 0.02)], failover_policy="standby",
        )
        history = trainer.train(epochs=2)
        assert trainer.engine.stats.shard_recoveries == 1
        shard = trainer.cluster.shards[0]
        assert shard.recoveries_from_initial == 1
        assert shard.rpo_lost_samples > 0
        assert len(history.records) == 2
        assert_no_leaks(trainer)
        assert_failover_accounting(trainer)

    def test_recovery_prefers_newest_checkpoint(self, tiny_split_spec,
                                                tiny_parts4, normalize):
        # No sync ever fires, so the durable checkpoint is the freshest
        # restore point — without it this crash would fall all the way
        # back to the initial weights.
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1000, server_sync_mode="average",
            checkpoint_every_s=0.002,
            failure_schedule=[(0.03, 1, 0.02)], failover_policy="standby",
        )
        history = trainer.train(epochs=2)
        shard = trainer.cluster.shards[1]
        assert trainer.engine.stats.shard_recoveries == 1
        assert shard.recoveries_from_checkpoint == 1
        assert shard.recoveries_from_sync == 0
        assert shard.recoveries_from_initial == 0
        assert shard.checkpoints_taken > 0
        # RPO against a 2 ms cadence is far tighter than the crash time.
        assert 0.0 <= shard.rpo_lost_s < 0.03
        stats = shard.stats()
        for key in ("rpo_lost_s", "rpo_lost_samples",
                    "recoveries_from_checkpoint", "recoveries_from_sync",
                    "recoveries_from_initial", "checkpoints_taken"):
            assert key in stats
        queue_stats = history.queue_stats
        assert queue_stats["recoveries_from_checkpoint"] == 1
        assert queue_stats["rpo_lost_s"] == pytest.approx(shard.rpo_lost_s)
        assert queue_stats["mean_rpo_s_per_recovery"] == \
            pytest.approx(shard.rpo_lost_s)
        assert queue_stats["checkpoints_written"] > 0
        assert_no_leaks(trainer)
        assert_failover_accounting(trainer)

    def test_sync_snapshot_used_when_no_store(self, tiny_split_spec,
                                              tiny_parts4, normalize):
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1, server_sync_mode="average",
            failure_schedule=[(0.03, 1, 0.02)], failover_policy="standby",
        )
        history = trainer.train(epochs=2)
        shard = trainer.cluster.shards[1]
        assert trainer.engine.stats.shard_recoveries == 1
        assert shard.recoveries_from_sync == 1
        assert shard.recoveries_from_checkpoint == 0
        assert history.queue_stats["recoveries_from_sync"] == 1

    def test_sync_snapshot_wins_when_fresher_than_checkpoint(
            self, tiny_split_spec, tiny_parts4, normalize):
        # Per-round averaging keeps syncing among the survivors while the
        # shard is down, so by recovery time the sync snapshot postdates
        # the dead shard's newest checkpoint — freshest state wins.
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1, server_sync_mode="average",
            checkpoint_every_s=0.002,
            failure_schedule=[(0.03, 1, 0.02)], failover_policy="standby",
        )
        trainer.train(epochs=2)
        shard = trainer.cluster.shards[1]
        assert trainer.engine.stats.shard_recoveries == 1
        assert shard.checkpoints_taken > 0
        assert shard.recoveries_from_sync == 1
        assert shard.recoveries_from_checkpoint == 0


class TestStochasticChurnEndToEnd:
    def test_training_survives_churn(self, tiny_split_spec, tiny_parts4, normalize):
        trainer = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1, server_sync_mode="staleness",
            mode="asynchronous", server_step_time_s=0.002,
            failure_mtbf_s=0.02, failure_mttr_s=0.01,
            failover_policy="rebalance", failover_delay_s=0.001,
        )
        history = trainer.train(epochs=2)
        stats = trainer.engine.stats
        assert stats.shard_crashes > 0
        assert stats.shard_recoveries > 0
        assert len(history.records) == 2
        assert_no_leaks(trainer)
        assert_failover_accounting(trainer)
        # Churn is reproducible: an identically-seeded twin sees the
        # exact same crash/recovery counts.
        twin = make_trainer(
            tiny_split_spec, tiny_parts4, normalize,
            num_servers=2, server_sync_every=1, server_sync_mode="staleness",
            mode="asynchronous", server_step_time_s=0.002,
            failure_mtbf_s=0.02, failure_mttr_s=0.01,
            failover_policy="rebalance", failover_delay_s=0.001,
        )
        twin.train(epochs=2)
        assert twin.engine.stats.shard_crashes == stats.shard_crashes
        assert twin.engine.stats.shard_recoveries == stats.shard_recoveries
