"""flush_queue + arena interaction under multi-shard budget stops.

A time-budgeted asynchronous run that stops mid-epoch must leave *every*
shard clean: queues flushed, activation-arena rows released (no staged
payload pins memory), and no end-system holding a pending activation —
on every shard, not just the first.
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.messages import ActivationMessage
from repro.core.models import tiny_cnn_architecture
from repro.core.server import CentralServer
from repro.core.split import SplitSpec
from repro.core.trainer import SpatioTemporalTrainer
from repro.simnet.topology import multi_hub_star_topology


def make_message(spec, system_id, batch_id, rows=4):
    shape = spec.architecture.block_output_shape(spec.client_blocks)
    rng = np.random.default_rng(97 + batch_id)
    return ActivationMessage(
        end_system_id=system_id,
        batch_id=batch_id,
        activations=rng.random((rows, *shape)),
        labels=rng.integers(0, 10, rows),
        arrival_time=float(batch_id),
    )


@pytest.fixture
def shard_servers():
    architecture = tiny_cnn_architecture(image_size=8, num_blocks=2,
                                         base_filters=4, dense_units=16)
    spec = SplitSpec(architecture, client_blocks=1)
    return spec, [CentralServer(spec, use_arena=True, seed=0) for _ in range(2)]


class TestFlushReleasesArenaRows:
    def test_flush_releases_staged_rows_on_every_shard(self, shard_servers):
        spec, servers = shard_servers
        for shard_index, server in enumerate(servers):
            for batch in range(3):
                assert server.receive(make_message(spec, shard_index, batch))
            assert server.arena.staged_messages == 3
            assert len(server.queue) == 3
        for server in servers:
            flushed = server.flush_queue()
            assert len(flushed) == 3
            assert server.arena.staged_messages == 0
            assert not server.has_pending()
            # Flush is the no-statistics shutdown path.
            assert server.queue.mean_waiting_time == 0.0
            assert server.queue.processed_per_system() == {}

    def test_flush_then_restage_reuses_buckets(self, shard_servers):
        """Released rows rewind the bucket; fresh staging allocates nothing."""
        spec, servers = shard_servers
        server = servers[0]
        for batch in range(4):
            server.receive(make_message(spec, 0, batch))
        bytes_before = server.arena.allocated_bytes
        server.flush_queue()
        for batch in range(4, 8):
            server.receive(make_message(spec, 0, batch))
        assert server.arena.allocated_bytes == bytes_before
        assert server.arena.staged_messages == 4


class TestBudgetStopAcrossShards:
    @pytest.mark.parametrize("server_batching", [True, False],
                             ids=["batched", "per-message"])
    def test_budget_stop_leaves_every_shard_clean(self, tiny_split_spec, tiny_parts4,
                                                  normalize, server_batching):
        # Slow shards + fast links: both queues hold work when the budget
        # cuts the run, so the flush path runs on every shard.
        topology = multi_hub_star_topology(
            len(tiny_parts4), 2, assignment=[0, 1, 0, 1],
            latencies_s=[0.001] * len(tiny_parts4),
        )
        config = TrainingConfig.fast_debug(
            num_servers=2, server_sync_every=10, server_sync_mode="staleness",
            mode="asynchronous", server_step_time_s=0.02, max_in_flight=2,
            server_batching=server_batching,
            max_queue_size=2, queue_backpressure="drop",
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts4, config,
                                        topology=topology, train_transform=normalize)
        trainer.train_time_budget(0.05)
        for shard in trainer.cluster.shards:
            assert not shard.has_pending(), f"shard {shard.shard_id} queue not flushed"
            if shard.server.arena is not None:
                assert shard.server.arena.staged_messages == 0, (
                    f"shard {shard.shard_id} pins staged arena rows"
                )
        assert all(es.pending_batches == 0 for es in trainer.end_systems)
        assert trainer.engine.stats.cancelled_at_stop > 0

    def test_budget_stop_resolves_in_flight_nacks(self, tiny_split_spec, tiny_parts4,
                                                  normalize):
        # A tight queue plus slow downlinks keeps NACKs in flight when
        # the budget fires; they must resolve (client notified) so no
        # pending activation leaks past the stop.
        topology = multi_hub_star_topology(
            len(tiny_parts4), 2, assignment=[0, 1, 0, 1],
            latencies_s=[0.001] * len(tiny_parts4),
            downlink_latencies_s=[0.04] * len(tiny_parts4),
        )
        config = TrainingConfig.fast_debug(
            num_servers=2, server_sync_every=10, server_sync_mode="staleness",
            mode="asynchronous", server_step_time_s=0.03, max_in_flight=2,
            server_batching=False, max_queue_size=1, queue_backpressure="drop",
        )
        trainer = SpatioTemporalTrainer(tiny_split_spec, tiny_parts4, config,
                                        topology=topology, train_transform=normalize)
        trainer.train_time_budget(0.06)
        assert trainer.engine.stats.nacks_sent > 0
        assert not trainer.engine._awaiting_nack
        assert all(es.pending_batches == 0 for es in trainer.end_systems)
