"""Fixtures for the cluster (sharded multi-server) test suite."""

import pytest

from repro.data.partition import IIDPartitioner


@pytest.fixture(scope="session")
def tiny_parts4(tiny_splits):
    """The tiny training set partitioned IID across 4 end-systems.

    Two shards then own two clients each, so every shard trains every
    round and the weighted averaging is non-trivial.
    """
    train, _ = tiny_splits
    return IIDPartitioner(4, seed=5).partition(train)
