"""Shard-assignment strategies: balance, determinism and validation."""

import pytest

from repro.cluster import (
    LatencyAwareAssigner,
    LoadAwareAssigner,
    StaticHashAssigner,
    available_assigners,
    get_assigner,
)


class TestRegistry:
    def test_known_names(self):
        assert available_assigners() == ["latency_aware", "load_aware", "static_hash"]
        for name in available_assigners():
            assert get_assigner(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown assigner"):
            get_assigner("bogus")

    def test_validation(self):
        assigner = StaticHashAssigner()
        with pytest.raises(ValueError):
            assigner.assign(0, 2)
        with pytest.raises(ValueError):
            assigner.assign(4, 0)
        with pytest.raises(ValueError):
            assigner.assign(4, 2, latencies_s=[0.1])
        with pytest.raises(ValueError):
            assigner.assign(4, 2, loads=[1, 2, 3])

    def test_single_shard_short_circuits(self):
        for name in available_assigners():
            assert get_assigner(name).assign(5, 1) == [0] * 5


class TestStaticHash:
    def test_modulo_assignment(self):
        assert StaticHashAssigner().assign(6, 3) == [0, 1, 2, 0, 1, 2]

    def test_counts_balanced_within_one(self):
        assignment = StaticHashAssigner().assign(10, 4)
        counts = [assignment.count(shard) for shard in range(4)]
        assert max(counts) - min(counts) <= 1


class TestLoadAware:
    def test_balances_skewed_loads(self):
        # One giant client plus many small ones: the giant must sit alone
        # (or nearly so) while the small ones share the other shard.
        loads = [100, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10]
        assignment = LoadAwareAssigner().assign(len(loads), 2, loads=loads)
        shard_loads = [0, 0]
        for client, shard in enumerate(assignment):
            shard_loads[shard] += loads[client]
        assert abs(shard_loads[0] - shard_loads[1]) <= 10

    def test_defaults_to_uniform_without_loads(self):
        assignment = LoadAwareAssigner().assign(8, 2)
        assert assignment.count(0) == assignment.count(1) == 4


class TestLatencyAware:
    def test_contiguous_latency_bands(self):
        # Interleaved near/far clients: each shard must own one band.
        latencies = [0.001, 0.100, 0.002, 0.110, 0.003, 0.120]
        assignment = LatencyAwareAssigner().assign(6, 2, latencies_s=latencies)
        near = {client for client, lat in enumerate(latencies) if lat < 0.05}
        far = set(range(6)) - near
        near_shards = {assignment[client] for client in near}
        far_shards = {assignment[client] for client in far}
        assert len(near_shards) == 1 and len(far_shards) == 1
        assert near_shards != far_shards

    def test_near_equal_group_sizes(self):
        assignment = LatencyAwareAssigner().assign(10, 3, latencies_s=list(range(10)))
        counts = [assignment.count(shard) for shard in range(3)]
        assert sorted(counts) == [3, 3, 4]
