"""Multi-hub star topology: hub routing, inter-server links, sync traffic."""

import numpy as np
import pytest

from repro.simnet.link import Link
from repro.simnet.topology import GeoTopology, multi_hub_star_topology, star_topology
from repro.simnet.transport import Transport


class TestMultiHubConstruction:
    def test_hubs_and_assignment(self):
        topology = multi_hub_star_topology(6, 2, assignment=[0, 0, 0, 1, 1, 1])
        assert topology.servers == ["server_0", "server_1"]
        for index in range(3):
            assert topology.hub_of(f"end_system_{index}") == "server_0"
        for index in range(3, 6):
            assert topology.hub_of(f"end_system_{index}") == "server_1"
        # Single-server helper must refuse the ambiguity.
        with pytest.raises(ValueError):
            topology.server

    def test_default_assignment_is_static_hash(self):
        topology = multi_hub_star_topology(4, 2)
        assert topology.hub_of("end_system_0") == "server_0"
        assert topology.hub_of("end_system_1") == "server_1"
        assert topology.hub_of("end_system_2") == "server_0"
        assert topology.hub_of("end_system_3") == "server_1"

    def test_inter_server_links_are_directional(self):
        topology = multi_hub_star_topology(2, 2, assignment=[0, 1])
        forward = topology.inter_server_link("server_0", "server_1")
        backward = topology.inter_server_link("server_1", "server_0")
        assert isinstance(forward, Link) and isinstance(backward, Link)
        assert forward is not backward
        assert forward.direction == backward.direction == "sync"

    def test_inter_server_link_rejects_end_systems(self):
        topology = multi_hub_star_topology(2, 2, assignment=[0, 1])
        with pytest.raises(KeyError):
            topology.inter_server_link("end_system_0", "server_0")

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_hub_star_topology(0, 2)
        with pytest.raises(ValueError):
            multi_hub_star_topology(4, 0)
        with pytest.raises(ValueError):
            multi_hub_star_topology(4, 2, assignment=[0, 1])
        with pytest.raises(ValueError):
            multi_hub_star_topology(4, 2, assignment=[0, 1, 2, 0])

    def test_one_hub_matches_star_link_streams(self):
        """num_servers=1 must be RNG-identical to the classic star."""
        latencies = [0.002, 0.007, 0.013]
        star = star_topology(3, latencies_s=latencies, jitter_std_s=0.001, seed=11)
        hub = multi_hub_star_topology(3, 1, latencies_s=latencies,
                                      jitter_std_s=0.001, seed=11)
        for index in range(3):
            name = f"end_system_{index}"
            for pick in ("uplink", "downlink"):
                star_link = getattr(star, pick)(name)
                hub_link = getattr(hub, pick)(name)
                star_samples = [star_link.transfer_time(1000) for _ in range(5)]
                hub_samples = [hub_link.transfer_time(1000) for _ in range(5)]
                assert star_samples == pytest.approx(hub_samples, abs=0.0)


class TestHubOfOnClassicTopologies:
    def test_star_hub_is_the_server(self):
        topology = star_topology(3)
        for name in topology.end_systems:
            assert topology.hub_of(name) == GeoTopology.SERVER
        assert topology.servers == [GeoTopology.SERVER]

    def test_unknown_node(self):
        with pytest.raises(KeyError):
            star_topology(2).hub_of("nope")


class TestSyncTransport:
    def test_send_between_servers_logs_sync_traffic(self):
        topology = multi_hub_star_topology(
            2, 2, assignment=[0, 1], inter_server_latency_s=0.02,
        )
        transport = Transport(topology)
        payload = {"weights": np.zeros((16, 16))}
        message = transport.send_between_servers("server_0", "server_1", payload,
                                                 now=1.0)
        assert message is not None
        assert message.arrival_time >= 1.0 + 0.02
        assert transport.log.sync_messages == 1
        assert transport.log.sync_bytes >= 16 * 16 * 8
        assert transport.log.uplink_messages == 0
        assert transport.log.downlink_messages == 0
        summary = transport.log.summary()
        assert summary["sync_messages"] == 1
        assert summary["sync_megabytes"] > 0

    def test_dropped_sync_message_is_counted(self):
        topology = multi_hub_star_topology(
            2, 2, assignment=[0, 1], inter_server_drop_probability=0.99,
            seed=5,
        )
        transport = Transport(topology)
        drops = 0
        for attempt in range(20):
            if transport.send_between_servers("server_0", "server_1",
                                              {"w": np.zeros(4)},
                                              now=float(attempt)) is None:
                drops += 1
        assert drops > 0
        assert transport.log.sync_dropped == drops
        assert transport.log.dropped_messages == drops
        assert topology.dropped_totals()["sync"] == drops

    def test_uplinks_route_to_the_owning_hub(self):
        topology = multi_hub_star_topology(4, 2, assignment=[0, 1, 0, 1])
        transport = Transport(topology)
        message = transport.send_to_server("end_system_1", {"x": np.zeros(2)}, now=0.0)
        assert message.destination == "server_1"
        message = transport.send_to_end_system("end_system_2", np.zeros(2), now=0.0)
        assert message.source == "server_0"
