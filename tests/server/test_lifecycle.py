"""Full control-plane lifecycle over real HTTP and real worker processes.

The centerpiece is the acceptance drill: a job submitted over the API is
SIGKILLed mid-run, resumed through ``POST /v1/jobs/<id>/resume``, and
must finish with weights matching an uninterrupted in-process twin at
1e-9 — and with every simulation-side metric row identical to the twin's.

``perf.*`` series are excluded from the crash comparison on purpose:
they are process-scoped wall-clock op counters (baselined when the
trainer is wired, "counts only this run"), so a resumed run's second
process legitimately reports its own, smaller counts.  Everything the
simulation owns — clocks, losses, queue waits, retries, traffic —
must replay exactly.

The twin runs in-process under the library's float32 default (the same
dtype policy the worker subprocess uses), temporarily overriding the
suite-wide float64 fixture.
"""

import json
import os
import signal
import threading
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.api import (ApiError, JobSpec, RunClient, build_trainer,
                       build_workload)
from repro.backend import use_backend
from repro.nn.dtype import default_dtype
from repro.utils import perf
from repro.server.http import create_server
from repro.server.worker import flatten_state_dict
from repro.state.store import load_state_dict


@pytest.fixture
def server(tmp_path):
    instance = create_server(tmp_path)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown_workers()
    instance.shutdown()


@pytest.fixture
def client(server):
    return RunClient(server.url)


def wait_for_epochs(client, job_id, epochs, timeout_s=120.0):
    """Poll until the worker has durably completed ``epochs`` epochs."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        record = client.status(job_id)
        if record.get("epochs_completed", 0) >= epochs:
            return record
        if record["state"] in ("completed", "failed", "cancelled"):
            raise AssertionError(
                f"job reached {record['state']!r} before {epochs} epochs: "
                f"{record}")
        time.sleep(0.02)
    raise AssertionError(f"job never reached {epochs} epochs")


def run_twin(client, job_id, twin_dir):
    """Re-run the job's *effective* spec uninterrupted, in-process."""
    spec = JobSpec.from_json_dict(client.status(job_id)["spec"])
    spec = replace(spec, config=replace(spec.config,
                                        checkpoint_dir=str(twin_dir)))
    # Match the worker subprocess's fresh-process state regardless of
    # what earlier tests left behind: float32 default dtype, the default
    # backend, no pre-existing perf counter keys (the obs export lists
    # every known key, even at 0), and a cold workspace cache.
    perf.counters.reset()
    perf.workspaces.clear()
    with default_dtype(np.float32), use_backend("blocked"):
        pieces = build_workload(spec.workload)
        twin = build_trainer(spec, pieces=pieces)
        twin.train(test_dataset=pieces.test if spec.evaluate else None)
    return twin


def assert_weights_match(server, job_id, twin, atol=1e-9):
    served = load_state_dict(
        server.manager.job_dir(job_id) / "final_state.npz")
    twin_state = flatten_state_dict(twin.state_dict())
    assert set(served) == set(twin_state)
    for key in served:
        np.testing.assert_allclose(served[key], twin_state[key],
                                   rtol=0, atol=atol, err_msg=key)


def sim_side(line):
    """One metrics JSONL line, keyed by series, without ``perf.*``."""
    row = json.loads(line)
    return row["t"], {
        (m["name"], tuple(tuple(pair) for pair in m.get("labels", []))): m
        for m in row["metrics"] if not m["name"].startswith("perf.")
    }


class TestUninterrupted:
    def test_submit_completes_byte_identical_to_twin(self, server, client,
                                                     tmp_path_factory):
        job_id = client.submit(JobSpec.fast_debug(name="clean", epochs=3))
        record = client.wait(job_id, timeout_s=180)
        assert record["state"] == "completed"
        assert record["epochs_completed"] == 3
        assert record["attempts"] == 1

        # Served raw bytes ARE the job's on-disk metrics.jsonl.
        raw = client.metrics_raw(job_id)
        disk = server.manager.metrics_path(job_id).read_bytes()
        assert raw == disk

        # And byte-identical to what an uninterrupted in-process twin
        # exports — the live stream adds nothing and loses nothing.
        twin = run_twin(client, job_id,
                        tmp_path_factory.mktemp("twin-ckpt"))
        assert raw == twin.obs.metrics_jsonl().encode()
        assert_weights_match(server, job_id, twin)

        # The parsed-rows endpoint serves the same rows, with paging.
        rows = client.metrics(job_id)
        assert rows == [json.loads(line) for line in raw.splitlines()]
        assert client.metrics(job_id, since=len(rows) - 1) == rows[-1:]

        # Snapshot / report / result views over the same data.
        snapshot = client.snapshot(job_id)
        assert snapshot  # flat {series: value} of the newest row
        assert any(name.startswith("engine.") for name in snapshot)
        report = client.report(job_id)
        assert report
        summary = client.result(job_id)["summary"]
        assert summary["epochs"] == 3


class TestKillNine:
    def test_worker_kill9_resume_replay_exact(self, server, client,
                                              tmp_path_factory):
        job_id = client.submit(JobSpec.fast_debug(name="kill", epochs=6))
        record = wait_for_epochs(client, job_id, 2)
        assert record["state"] == "running"

        os.kill(record["pid"], signal.SIGKILL)
        deadline = time.monotonic() + 30
        while client.status(job_id)["state"] != "interrupted":
            assert time.monotonic() < deadline, "never reconciled"
            time.sleep(0.02)

        assert client.resume(job_id)["state"] == "running"
        record = client.wait(job_id, timeout_s=180)
        assert record["state"] == "completed"
        assert record["attempts"] == 2
        assert record["epochs_completed"] == 6

        twin = run_twin(client, job_id,
                        tmp_path_factory.mktemp("twin-ckpt"))
        assert_weights_match(server, job_id, twin)

        # The epoch ledger spans both attempts without duplicates.
        result = client.result(job_id)
        assert [entry["epoch"] for entry in result["epochs"]] == list(range(6))
        assert result["summary"]["epochs"] == 6

        # Metrics: the repaired + replayed stream must carry the same
        # rows as the twin — same count, same timestamps, and identical
        # values for every simulation-side series.
        served_lines = client.metrics_raw(job_id).decode().splitlines()
        twin_lines = twin.obs.metrics_jsonl().splitlines()
        assert len(served_lines) == len(twin_lines)
        for served_line, twin_line in zip(served_lines, twin_lines):
            served_t, served_rows = sim_side(served_line)
            twin_t, twin_rows = sim_side(twin_line)
            assert served_t == twin_t
            assert served_rows == twin_rows

    def test_pause_resume_via_api(self, server, client):
        job_id = client.submit(JobSpec.fast_debug(name="pause", epochs=6))
        wait_for_epochs(client, job_id, 1)
        assert client.pause(job_id)["state"] == "paused"
        assert client.resume(job_id)["state"] == "running"
        record = client.wait(job_id, timeout_s=180)
        assert record["state"] == "completed"
        assert record["epochs_completed"] == 6


class TestServerRestart:
    def test_job_survives_server_restart(self, tmp_path, tmp_path_factory):
        first = create_server(tmp_path)
        thread = threading.Thread(target=first.serve_forever, daemon=True)
        thread.start()
        client = RunClient(first.url)
        job_id = client.submit(JobSpec.fast_debug(name="restart", epochs=5))
        record = wait_for_epochs(client, job_id, 2)

        # The server host dies: worker SIGKILLed, HTTP gone.
        os.kill(record["pid"], signal.SIGKILL)
        first.shutdown_workers()
        first.shutdown()

        # A fresh server over the same root reconciles from disk alone.
        second = create_server(tmp_path)
        thread = threading.Thread(target=second.serve_forever, daemon=True)
        thread.start()
        try:
            client = RunClient(second.url)
            assert client.status(job_id)["state"] == "interrupted"
            client.resume(job_id)
            record = client.wait(job_id, timeout_s=180)
            assert record["state"] == "completed"
            assert record["epochs_completed"] == 5

            twin = run_twin(client, job_id,
                            tmp_path_factory.mktemp("twin-ckpt"))
            assert_weights_match(server=second, job_id=job_id, twin=twin)
        finally:
            second.shutdown_workers()
            second.shutdown()


class TestHttpContract:
    def test_health(self, client):
        health = client.health()
        assert health["ok"] is True
        assert health["api_version"] == 1

    def test_invalid_spec_is_400_with_reason(self, client):
        payload = JobSpec.fast_debug().to_json_dict()
        payload["config"]["learning_rate"] = 0.1
        with pytest.raises(ApiError) as excinfo:
            client.submit(payload)
        assert excinfo.value.status == 400
        assert "learning_rate" in excinfo.value.message

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ApiError) as excinfo:
            client.status("job-9999-ghost")
        assert excinfo.value.status == 404

    def test_illegal_transition_is_409(self, client):
        job_id = client.submit(JobSpec.fast_debug(name="t", epochs=1))
        client.cancel(job_id)
        with pytest.raises(ApiError) as excinfo:
            client.cancel(job_id)
        assert excinfo.value.status == 409
        with pytest.raises(ApiError) as excinfo:
            client.resume(job_id)
        assert excinfo.value.status == 409
