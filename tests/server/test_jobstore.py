"""JobManager mechanics: layout, state machine, reconciliation, repair.

These tests never train: the worker spawn is replaced by a stub that
starts a trivial sleeper process, so every manager code path (status
reconciliation, SIGKILL on pause/cancel, Popen bookkeeping) runs for
real against directories and processes, just without the expensive part.
The full submit → train → crash → resume path lives in
``test_lifecycle.py``.
"""

import json
import subprocess
import sys

import pytest

from repro.api import JobSpec
from repro.server.jobs import (InvalidTransition, JobManager, UnknownJob,
                               read_json, write_json_atomic)
from repro.server.worker import flatten_state_dict, repair_metrics


@pytest.fixture
def manager(tmp_path, monkeypatch):
    """A JobManager whose workers are sleeper processes, not trainers."""
    instance = JobManager(tmp_path)
    spawned = []

    def fake_spawn(job_id):
        proc = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        instance._procs[job_id] = proc
        spawned.append(job_id)
        status = read_json(instance._status_path(job_id))
        status.update(state="running", pid=proc.pid, error=None,
                      attempts=int(status.get("attempts", 0)) + 1)
        write_json_atomic(instance._status_path(job_id), status)

    monkeypatch.setattr(instance, "_spawn_worker", fake_spawn)
    instance.spawned = spawned
    yield instance
    instance.shutdown()


def force_state(manager, job_id, state, **extra):
    status = read_json(manager._status_path(job_id))
    status.update(state=state, **extra)
    write_json_atomic(manager._status_path(job_id), status)


class TestSubmit:
    def test_invalid_payload_leaves_no_trace(self, manager):
        with pytest.raises(ValueError, match="unknown JobSpec keys"):
            manager.submit({"nonsense": True})
        assert manager.job_ids() == []

    def test_layout_and_effective_spec(self, manager):
        job_id = manager.submit(JobSpec.fast_debug(name="demo").to_json_dict())
        job_dir = manager.job_dir(job_id)
        assert (job_dir / "spec.json").exists()
        assert (job_dir / "status.json").exists()

        effective = JobSpec.from_json_dict(manager.spec(job_id))
        assert effective.config.checkpoint_dir == str(job_dir / "checkpoints")
        assert effective.config.obs_enabled is True
        assert effective.config.obs_dir is None
        assert effective.config.checkpoint_every_s is not None
        assert effective.config.obs_flush_every_s is not None

        status = manager.status(job_id)
        assert status["state"] == "running"
        assert status["attempts"] == 1
        assert status["epochs_total"] == effective.config.epochs

    def test_submitted_cadences_are_kept(self, manager):
        spec = JobSpec.fast_debug(name="tuned", checkpoint_every_s=0.7,
                                  obs_flush_every_s=0.9)
        job_id = manager.submit(spec.to_json_dict())
        effective = JobSpec.from_json_dict(manager.spec(job_id))
        assert effective.config.checkpoint_every_s == 0.7
        assert effective.config.obs_flush_every_s == 0.9

    def test_job_ids_sequence_and_slug(self, manager):
        first = manager.submit(JobSpec.fast_debug(name="My Job!!").to_json_dict())
        second = manager.submit(JobSpec.fast_debug(name="other").to_json_dict())
        assert first == "job-0001-my-job"
        assert second.startswith("job-0002-")

    def test_unknown_job(self, manager):
        with pytest.raises(UnknownJob):
            manager.status("job-9999-ghost")


class TestLifecycle:
    def test_pause_kills_worker_and_resume_restarts(self, manager):
        job_id = manager.submit(JobSpec.fast_debug(name="p").to_json_dict())
        status = manager.pause(job_id)
        assert status["state"] == "paused"
        assert status["pid"] is None
        assert job_id not in manager._procs  # worker really gone

        status = manager.resume(job_id)
        assert status["state"] == "running"
        assert status["attempts"] == 2

    def test_pause_requires_running(self, manager):
        job_id = manager.submit(JobSpec.fast_debug(name="p").to_json_dict())
        force_state(manager, job_id, "completed", pid=None)
        manager._procs.pop(job_id).kill()
        with pytest.raises(InvalidTransition, match="pause"):
            manager.pause(job_id)

    def test_resume_requires_resumable_state(self, manager):
        job_id = manager.submit(JobSpec.fast_debug(name="r").to_json_dict())
        with pytest.raises(InvalidTransition, match="resume"):
            manager.resume(job_id)  # still running

    def test_cancel_is_terminal(self, manager):
        job_id = manager.submit(JobSpec.fast_debug(name="c").to_json_dict())
        assert manager.cancel(job_id)["state"] == "cancelled"
        with pytest.raises(InvalidTransition):
            manager.cancel(job_id)
        with pytest.raises(InvalidTransition):
            manager.resume(job_id)

    def test_result_before_completion_rejected(self, manager):
        job_id = manager.submit(JobSpec.fast_debug(name="r").to_json_dict())
        with pytest.raises(InvalidTransition, match="no result"):
            manager.result(job_id)


class TestReconciliation:
    def test_dead_worker_becomes_interrupted(self, manager):
        job_id = manager.submit(JobSpec.fast_debug(name="dead").to_json_dict())
        manager._procs[job_id].kill()
        manager._procs[job_id].wait()
        assert manager.status(job_id)["state"] == "interrupted"
        # and the reconciled state is durable
        assert read_json(manager._status_path(job_id))["state"] == "interrupted"

    def test_reconciles_after_server_restart(self, manager, tmp_path):
        """A fresh manager on the same root (no Popen handles) must reach
        the same verdict from the pid alone."""
        job_id = manager.submit(JobSpec.fast_debug(name="dead").to_json_dict())
        proc = manager._procs[job_id]
        proc.kill()
        proc.wait()  # reap: the pid is properly gone, not a zombie

        restarted = JobManager(tmp_path)
        assert restarted.status(job_id)["state"] == "interrupted"

    def test_restarted_manager_continues_id_sequence(self, manager, tmp_path):
        manager.submit(JobSpec.fast_debug(name="a").to_json_dict())
        restarted = JobManager(tmp_path)
        restarted._spawn_worker = lambda job_id: force_state(
            restarted, job_id, "running")
        second = restarted.submit(JobSpec.fast_debug(name="b").to_json_dict())
        assert second.startswith("job-0002-")


class TestRepairMetrics:
    def rows(self, *ts):
        return "".join(
            json.dumps({"t": t, "metrics": [{"name": "x", "value": t}]}) + "\n"
            for t in ts)

    def test_keeps_rows_up_to_clock_byte_exact(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        keep = self.rows(0.05, 0.10)
        path.write_text(keep + self.rows(0.15, 0.20))
        repair_metrics(path, restored_clock=0.12)
        assert path.read_bytes() == keep.encode()

    def test_drops_torn_trailing_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        keep = self.rows(0.05)
        path.write_text(keep + '{"t": 0.1, "metr')  # killed mid-write
        repair_metrics(path, restored_clock=1.0)
        assert path.read_bytes() == keep.encode()

    def test_drops_unparseable_line_and_everything_after(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        keep = self.rows(0.05)
        path.write_text(keep + "garbage\n" + self.rows(0.10))
        repair_metrics(path, restored_clock=1.0)
        assert path.read_bytes() == keep.encode()

    def test_missing_file_is_a_noop(self, tmp_path):
        repair_metrics(tmp_path / "metrics.jsonl", restored_clock=1.0)
        assert not (tmp_path / "metrics.jsonl").exists()


class TestFlattenStateDict:
    def test_flattens_component_params(self):
        import numpy as np
        flat = flatten_state_dict(
            {"server": {"w": np.ones(2)}, "client_0": {"b": np.zeros(1)}})
        assert sorted(flat) == ["client_0::b", "server::w"]
