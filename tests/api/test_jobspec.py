"""JobSpec schema: round-trip exactness, strictness, versioning.

The golden fixture (``golden_jobspec_v1.json``) pins the serialized
form of a representative spec — any change to the payload layout shows
up as a diff to that file and has to be a deliberate, reviewed schema
change (with a version bump when an old reader could misread it).
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.api import JOBSPEC_SCHEMA_VERSION, JobSpec, JobWorkload
from repro.core.config import CONFIG_SCHEMA_VERSION, TrainingConfig

GOLDEN_PATH = Path(__file__).with_name("golden_jobspec_v1.json")


def golden_spec() -> JobSpec:
    """The spec the golden fixture serializes (keep in sync with the file)."""
    return JobSpec(
        name="golden",
        workload=JobWorkload(scale="laptop", num_samples=320,
                             num_end_systems=2, partition="dirichlet",
                             partition_kwargs={"alpha": 0.3},
                             test_fraction=0.25, client_blocks=1, seed=11),
        config=TrainingConfig.fast_debug(epochs=2, seed=11),
        evaluate=False,
    )


class TestRoundTrip:
    def test_through_json_text(self):
        spec = golden_spec()
        text = json.dumps(spec.to_json_dict())
        rebuilt = JobSpec.from_json_dict(json.loads(text))
        assert rebuilt == spec

    def test_defaults_round_trip(self):
        spec = JobSpec()
        assert JobSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_envelope_carries_versions(self):
        payload = golden_spec().to_json_dict()
        assert payload["schema_version"] == JOBSPEC_SCHEMA_VERSION
        assert payload["config"]["schema_version"] == CONFIG_SCHEMA_VERSION

    def test_golden_fixture_is_current(self):
        """Serialized form matches the committed fixture byte-for-byte."""
        expected = json.dumps(golden_spec().to_json_dict(),
                              indent=2, sort_keys=True) + "\n"
        assert GOLDEN_PATH.read_text() == expected

    def test_golden_fixture_loads(self):
        payload = json.loads(GOLDEN_PATH.read_text())
        assert JobSpec.from_json_dict(payload) == golden_spec()


class TestStrictness:
    def test_unknown_envelope_key_rejected(self):
        payload = JobSpec().to_json_dict()
        payload["epochs"] = 5  # a config knob typo'd onto the envelope
        with pytest.raises(ValueError, match="unknown JobSpec keys: epochs"):
            JobSpec.from_json_dict(payload)

    def test_unknown_workload_key_rejected(self):
        payload = JobSpec().to_json_dict()
        payload["workload"]["nmu_samples"] = 100
        with pytest.raises(ValueError, match="nmu_samples"):
            JobSpec.from_json_dict(payload)

    def test_unknown_config_key_rejected(self):
        payload = JobSpec().to_json_dict()
        payload["config"]["learning_rate"] = 0.1
        with pytest.raises(ValueError, match="learning_rate"):
            JobSpec.from_json_dict(payload)

    def test_non_mapping_payload_rejected(self):
        with pytest.raises(TypeError):
            JobSpec.from_json_dict(["not", "a", "mapping"])
        payload = JobSpec().to_json_dict()
        payload["workload"] = "iid"
        with pytest.raises(TypeError):
            JobSpec.from_json_dict(payload)


class TestVersioning:
    def test_future_envelope_version_rejected(self):
        payload = JobSpec().to_json_dict()
        payload["schema_version"] = JOBSPEC_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            JobSpec.from_json_dict(payload)

    def test_future_config_version_rejected(self):
        payload = JobSpec().to_json_dict()
        payload["config"]["schema_version"] = CONFIG_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            JobSpec.from_json_dict(payload)

    def test_missing_version_reads_as_v1(self):
        payload = JobSpec().to_json_dict()
        del payload["schema_version"]
        assert JobSpec.from_json_dict(payload) == JobSpec()


class TestValidation:
    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            JobWorkload(scale="huge")

    def test_nonpositive_end_systems(self):
        with pytest.raises(ValueError, match="num_end_systems"):
            JobWorkload(num_end_systems=0)

    def test_dataset_too_small(self):
        with pytest.raises(ValueError, match="num_samples"):
            JobWorkload(num_samples=30, num_end_systems=4)

    def test_bad_test_fraction(self):
        with pytest.raises(ValueError, match="test_fraction"):
            JobWorkload(test_fraction=1.5)

    def test_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            JobSpec(name="  ")

    def test_revalidated_on_parse(self):
        """Values surviving the key filter still go through __post_init__."""
        payload = JobSpec().to_json_dict()
        payload["workload"]["num_end_systems"] = -3
        with pytest.raises(ValueError, match="num_end_systems"):
            JobSpec.from_json_dict(payload)


class TestPresets:
    def test_fast_debug_shape(self):
        spec = JobSpec.fast_debug(name="smoke", epochs=2)
        assert spec.name == "smoke"
        assert spec.workload.num_samples == 160
        assert spec.workload.num_end_systems == 2
        assert spec.config.epochs == 2

    def test_specs_are_plain_dataclasses(self):
        spec = JobSpec.fast_debug()
        clone = dataclasses.replace(
            spec, config=dataclasses.replace(spec.config, epochs=9))
        assert clone.config.epochs == 9
        assert spec.config.epochs != 9
