"""The runtime facade: materialization determinism and trainer wiring."""

import numpy as np

from repro.api import (JobSpec, JobWorkload, build_trainer, build_workload,
                       resume_trainer, run_job)
from repro.state import FileCheckpointStore


def tiny_workload() -> JobWorkload:
    return JobWorkload(num_samples=160, num_end_systems=2, seed=3)


class TestBuildWorkload:
    def test_two_materializations_are_bit_identical(self):
        """Two processes building the same workload must hold identical
        datasets — the property crash-resume correctness rests on."""
        first = build_workload(tiny_workload())
        second = build_workload(tiny_workload())
        first_images, first_labels = first.train.arrays()
        second_images, second_labels = second.train.arrays()
        assert np.array_equal(first_images, second_images)
        assert np.array_equal(first_labels, second_labels)
        assert [len(part) for part in first.parts] == \
            [len(part) for part in second.parts]
        for part_a, part_b in zip(first.parts, second.parts):
            images_a, labels_a = part_a.arrays()
            images_b, labels_b = part_b.arrays()
            assert np.array_equal(images_a, images_b)
            assert np.array_equal(labels_a, labels_b)

    def test_split_matches_workload(self):
        pieces = build_workload(
            JobWorkload(num_samples=160, num_end_systems=2, client_blocks=2))
        assert pieces.split_spec.client_blocks == 2

    def test_experiment_harness_delegates_here(self):
        """repro.experiments.build_workload is a shim over this module."""
        from repro.experiments.base import WorkloadSpec
        from repro.experiments.base import build_workload as legacy_build

        legacy = legacy_build(WorkloadSpec.laptop(num_samples=160,
                                                  num_end_systems=2, seed=3))
        modern = build_workload(tiny_workload())
        legacy_images, _ = legacy["train"].arrays()
        modern_images, _ = modern.train.arrays()
        assert np.array_equal(legacy_images, modern_images)


class TestBuildTrainer:
    def test_checkpoint_dir_override(self, tmp_path):
        spec = JobSpec.fast_debug(epochs=1, checkpoint_every_s=0.05)
        trainer = build_trainer(spec, checkpoint_dir=str(tmp_path / "ckpt"))
        assert trainer.config.checkpoint_dir == str(tmp_path / "ckpt")

    def test_pieces_reused(self):
        spec = JobSpec.fast_debug(epochs=1)
        pieces = build_workload(spec.workload)
        trainer = build_trainer(spec, pieces=pieces)
        assert trainer.end_systems[0] is not None
        assert len(trainer.end_systems) == spec.workload.num_end_systems


class TestRunAndResume:
    def test_run_job_returns_history(self):
        spec = JobSpec.fast_debug(epochs=1)
        history = run_job(spec)
        assert len(history.records) == 1
        assert history.final_test_accuracy is not None

    def test_resume_trainer_picks_up_from_store(self, tmp_path):
        spec = JobSpec.fast_debug(epochs=3, checkpoint_every_s=0.05,
                                  checkpoint_dir=str(tmp_path))
        pieces = build_workload(spec.workload)
        trainer = build_trainer(spec, pieces=pieces)
        trainer.train(epochs=2)
        store = FileCheckpointStore(tmp_path)
        resumed = resume_trainer(spec, store, pieces=pieces)
        assert resumed._start_epoch == 2
        history = resumed.train()
        assert history.records[-1].epoch == 2
