"""Unit tests of the chaos plane: fault plans and per-message chaos.

Everything here is seeded and deterministic by construction — the same
plan inspected twice, or rebuilt from a ``state_dict`` snapshot, must
replay the exact same fault timeline.  That determinism is what makes
chaos testing usable as a regression tool rather than a flake generator.
"""

import numpy as np
import pytest

from repro.chaos import (
    FaultEvent,
    MessageChaos,
    ScheduledFaults,
    StochasticFaults,
    build_fault_plan,
)
from repro.core.config import TrainingConfig
from repro.simnet.link import Message
from repro.simnet.transport import TrafficLog


def drain(plan, limit=64):
    """Consume up to ``limit`` events from a plan (scripted plans end)."""
    events = []
    while len(events) < limit:
        event = plan.peek()
        if event is None:
            break
        events.append(event)
        plan.advance()
    return events


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(-1.0, "flap", "begin", 0)
        with pytest.raises(ValueError, match="kind"):
            FaultEvent(0.0, "meteor", "begin", 0)
        with pytest.raises(ValueError, match="phase"):
            FaultEvent(0.0, "flap", "during", 0)

    def test_sort_key_ends_before_begins(self):
        end = FaultEvent(1.0, "flap", "end", 0)
        begin = FaultEvent(1.0, "flap", "begin", 1)
        apply_ = FaultEvent(1.0, "move", "apply", 2, value=1.0)
        ordered = sorted([begin, apply_, end], key=lambda e: e.sort_key)
        assert [e.phase for e in ordered] == ["end", "apply", "begin"]


class TestScheduledFaults:
    def test_expands_begin_end_pairs_in_order(self):
        plan = ScheduledFaults([
            ("flap", 0.02, 0.01, 1),
            ("partition", 0.01, 0.05, 1, 0),
            ("straggler", 0.0, 0.03, 0, 2.5),
            ("move", 0.04, 3, 1),
        ])
        events = drain(plan)
        assert [(e.kind, e.phase) for e in events] == [
            ("straggler", "begin"),
            ("partition", "begin"),
            ("flap", "begin"),
            ("flap", "end"),
            ("straggler", "end"),
            ("move", "apply"),
            ("partition", "end"),
        ]
        assert [e.time for e in events] == pytest.approx(
            [0.0, 0.01, 0.02, 0.03, 0.03, 0.04, 0.06])
        # Partition hubs are normalized (low, high) whichever way given.
        partition = events[1]
        assert (partition.target, partition.peer) == (0, 1)
        assert events[0].value == 2.5

    def test_open_ended_fault_has_no_end(self):
        plan = ScheduledFaults([("leave", 0.1, None, 2)])
        events = drain(plan)
        assert [(e.kind, e.phase) for e in events] == [("leave", "begin")]

    def test_rejects_overlapping_outages_same_key(self):
        with pytest.raises(ValueError, match="overlapping"):
            ScheduledFaults([("flap", 0.0, 0.1, 0), ("flap", 0.05, 0.1, 0)])
        # Distinct targets may overlap freely.
        ScheduledFaults([("flap", 0.0, 0.1, 0), ("flap", 0.05, 0.1, 1)])

    def test_rejects_malformed_entries(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ScheduledFaults([("meteor", 0.0, 0.1, 0)])
        with pytest.raises(ValueError, match="factor"):
            ScheduledFaults([("straggler", 0.0, 0.1, 0, 0.5)])
        with pytest.raises(ValueError, match="distinct hubs"):
            ScheduledFaults([("partition", 0.0, 0.1, 1, 1)])
        with pytest.raises(ValueError, match="duration"):
            ScheduledFaults([("flap", 0.0, -0.1, 0)])
        with pytest.raises(ValueError, match="entries are"):
            ScheduledFaults([("move", 0.0, 1)])

    def test_advance_past_end_raises(self):
        plan = ScheduledFaults([("flap", 0.0, 0.1, 0)])
        drain(plan)
        assert plan.peek() is None
        with pytest.raises(LookupError):
            plan.advance()

    def test_state_dict_round_trip_mid_consumption(self):
        entries = [("flap", 0.0, 0.01, 0), ("leave", 0.02, 0.01, 1)]
        plan = ScheduledFaults(entries)
        plan.advance()  # consume the first begin
        snapshot = plan.state_dict()
        twin = ScheduledFaults(entries)
        twin.load_state_dict(snapshot)
        assert drain(twin) == drain(plan)


class TestStochasticFaults:
    def make(self, seed=3):
        return StochasticFaults(num_clients=3, seed=seed,
                                flap_mtbf_s=0.05, flap_mttr_s=0.01,
                                leave_mtbf_s=0.2, leave_mttr_s=0.05)

    def test_validation(self):
        with pytest.raises(ValueError, match="num_clients"):
            StochasticFaults(num_clients=0, flap_mtbf_s=1.0)
        with pytest.raises(ValueError, match="mtbf_s"):
            StochasticFaults(num_clients=2, flap_mtbf_s=-1.0)
        with pytest.raises(ValueError, match="mttr_s"):
            StochasticFaults(num_clients=2, flap_mtbf_s=1.0, flap_mttr_s=0.0)
        with pytest.raises(ValueError, match="at least one"):
            StochasticFaults(num_clients=2)

    def test_same_seed_same_timeline(self):
        first = [(e.time, e.kind, e.phase, e.target)
                 for e in drain(self.make(), limit=32)]
        second = [(e.time, e.kind, e.phase, e.target)
                  for e in drain(self.make(), limit=32)]
        assert first == second
        assert first != [(e.time, e.kind, e.phase, e.target)
                         for e in drain(self.make(seed=4), limit=32)]

    def test_phases_alternate_per_key(self):
        phase_by_key = {}
        for event in drain(self.make(), limit=64):
            key = (event.kind, event.target)
            assert event.phase != phase_by_key.get(key), \
                f"two consecutive {event.phase!r} phases on {key}"
            phase_by_key[key] = event.phase

    def test_timeline_is_monotone(self):
        times = [e.time for e in drain(self.make(), limit=64)]
        assert times == sorted(times)

    def test_state_dict_round_trip_resumes_stream(self):
        plan = self.make()
        for _ in range(10):
            plan.advance()
        snapshot = plan.state_dict()
        tail = [(e.time, e.kind, e.phase, e.target)
                for e in drain(plan, limit=16)]
        twin = self.make()
        twin.load_state_dict(snapshot)
        assert [(e.time, e.kind, e.phase, e.target)
                for e in drain(twin, limit=16)] == tail


class TestBuildFaultPlan:
    def test_none_when_no_chaos_configured(self):
        assert build_fault_plan(TrainingConfig(), num_clients=4) is None
        # Per-message chaos alone is not a timeline plan.
        config = TrainingConfig(chaos_corrupt_probability=0.1)
        assert build_fault_plan(config, num_clients=4) is None

    def test_scripted_schedule_wins(self):
        config = TrainingConfig(chaos_schedule=[("flap", 0.0, 0.1, 0)])
        plan = build_fault_plan(config, num_clients=4)
        assert isinstance(plan, ScheduledFaults)

    def test_stochastic_plan_derives_from_config_seed(self):
        config = TrainingConfig(chaos_flap_mtbf_s=0.1, seed=11)
        plan = build_fault_plan(config, num_clients=4)
        assert isinstance(plan, StochasticFaults)
        assert plan.seed == 11 + 393_241
        twin = build_fault_plan(TrainingConfig(chaos_flap_mtbf_s=0.1, seed=11),
                                num_clients=4)
        assert [(e.time, e.target) for e in drain(plan, limit=8)] == \
               [(e.time, e.target) for e in drain(twin, limit=8)]


def wire(arrival=1.0):
    return Message(source="es", destination="hub", payload=None,
                   created_at=0.0, arrival_time=arrival)


class TestMessageChaos:
    def test_corrupt_consumes_the_message(self):
        chaos = MessageChaos(corrupt_probability=1.0, seed=5)
        log = TrafficLog()
        assert chaos.apply(wire(), "up", log) is None
        assert chaos.apply(wire(), "down", log) is None
        assert log.corrupted_messages == 2
        assert log.uplink_corrupted == 1
        assert log.downlink_corrupted == 1

    def test_reorder_inflates_arrival_time(self):
        chaos = MessageChaos(reorder_probability=1.0, reorder_delay_s=0.01, seed=5)
        log = TrafficLog()
        message = wire(arrival=1.0)
        out = chaos.apply(message, "up", log)
        assert out is message
        assert 1.0 <= out.arrival_time <= 1.01
        assert log.reordered_messages == 1

    def test_duplicate_tags_uplink_only(self):
        from repro.chaos.message_chaos import DUPLICATE_ARRIVAL_KEY

        chaos = MessageChaos(duplicate_probability=1.0, duplicate_delay_s=0.01,
                             seed=5)
        log = TrafficLog()
        up = chaos.apply(wire(arrival=1.0), "up", log)
        assert DUPLICATE_ARRIVAL_KEY in up.metadata
        assert 1.0 <= up.metadata[DUPLICATE_ARRIVAL_KEY] <= 1.01
        down = chaos.apply(wire(arrival=1.0), "down", log)
        assert DUPLICATE_ARRIVAL_KEY not in down.metadata
        assert log.duplicated_messages == 1

    def test_same_seed_same_decisions(self):
        def decisions(seed):
            chaos = MessageChaos(corrupt_probability=0.3, reorder_probability=0.3,
                                 duplicate_probability=0.3, seed=seed)
            log = TrafficLog()
            return [chaos.apply(wire(arrival=float(i)), "up", log) is None
                    for i in range(40)]

        assert decisions(9) == decisions(9)
        assert decisions(9) != decisions(10)

    def test_state_dict_round_trip_resumes_streams(self):
        chaos = MessageChaos(corrupt_probability=0.4, seed=2)
        log = TrafficLog()
        for i in range(10):
            chaos.apply(wire(arrival=float(i)), "up", log)
        snapshot = chaos.state_dict()
        tail = [chaos.apply(wire(arrival=float(i)), "up", log) is None
                for i in range(20)]
        twin = MessageChaos(corrupt_probability=0.4, seed=2)
        twin.load_state_dict(snapshot)
        assert [twin.apply(wire(arrival=float(i)), "up", log) is None
                for i in range(20)] == tail

    def test_validation(self):
        with pytest.raises(ValueError, match="corrupt_probability"):
            MessageChaos(corrupt_probability=1.5)
        with pytest.raises(ValueError, match="reorder_delay_s"):
            MessageChaos(reorder_delay_s=-1.0)
