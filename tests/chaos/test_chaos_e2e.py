"""End-to-end chaos-plane contracts on real trainers.

Three properties turn fault injection from a demo into a tool:

* **inertness** — with every chaos/reliability knob at its default the
  trainer builds no chaos machinery at all (the PR is a no-op for
  existing configs);
* **determinism** — two runs of the same seeded config face the exact
  same faults and produce identical traffic ledgers and weights;
* **replay-exactness** — a coordinator restart mid-run restores the
  fault plan, the per-message chaos streams and the retry RNG, so the
  resumed run replays the same chaos the uninterrupted twin saw.
"""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.trainer import SpatioTemporalTrainer
from repro.state import FileCheckpointStore

CHAOS = dict(
    mode="synchronous",
    num_servers=2,
    server_sync_every=2,
    reliable_delivery=True,
    retry_timeout_s=0.02,
    retry_max=2,
    chaos_flap_mtbf_s=0.04,
    chaos_flap_mttr_s=0.01,
    chaos_corrupt_probability=0.05,
    chaos_duplicate_probability=0.1,
    chaos_reorder_probability=0.1,
)


def make_trainer(spec, parts, normalize, **overrides):
    config = TrainingConfig.fast_debug(**overrides)
    return SpatioTemporalTrainer(spec, parts, config, train_transform=normalize)


def assert_same_weights(reference, other, atol=0.0):
    ref_state = reference.state_dict()
    oth_state = other.state_dict()
    assert ref_state.keys() == oth_state.keys()
    for key in ref_state:
        for name in ref_state[key]:
            np.testing.assert_allclose(
                oth_state[key][name], ref_state[key][name],
                rtol=0, atol=atol, err_msg=f"{key}/{name}",
            )


class TestInertDefaults:
    def test_no_chaos_machinery_without_knobs(self, tiny_split_spec, tiny_parts,
                                              normalize):
        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize)
        assert trainer.fault_plan is None
        assert trainer.message_chaos is None
        assert not trainer.engine._dedup_enabled
        trainer.train()
        stats = trainer.engine.stats
        assert stats.retries == 0
        assert stats.gave_up == 0
        assert stats.deduped == 0
        assert stats.chaos_events == 0
        log = trainer.transport.log
        assert log.retried_messages == 0
        assert log.corrupted_messages == 0
        assert log.duplicated_messages == 0
        assert log.reordered_messages == 0
        # And none of the per-run stats columns appear either.
        history_keys = trainer.train().queue_stats
        assert "retries" not in history_keys
        assert "chaos_events" not in history_keys


class TestSeededChaosDeterminism:
    def test_same_seed_same_faults_same_weights(self, tiny_split_spec, tiny_parts,
                                                normalize):
        def run():
            trainer = make_trainer(tiny_split_spec, tiny_parts, normalize,
                                   epochs=2, **CHAOS)
            history = trainer.train()
            return trainer, history

        first, first_history = run()
        second, second_history = run()
        # The chaos actually fired — this config is not a vacuous check.
        assert first.engine.stats.chaos_events > 0
        assert first.transport.log.corrupted_messages > 0
        # Byte-identical traffic ledger, chaos counters and stats columns.
        assert first.transport.log.summary() == second.transport.log.summary()
        assert first_history.queue_stats == second_history.queue_stats
        assert first.engine.stats.chaos_events == second.engine.stats.chaos_events
        assert_same_weights(first, second)

    def test_different_seed_different_fault_stream(self, tiny_split_spec,
                                                   tiny_parts, normalize):
        first = make_trainer(tiny_split_spec, tiny_parts, normalize,
                             epochs=2, **CHAOS)
        second = make_trainer(tiny_split_spec, tiny_parts, normalize,
                              epochs=2, seed=first.config.seed + 1, **CHAOS)
        first.train()
        second.train()
        assert first.transport.log.summary() != second.transport.log.summary()


class TestReplayExactRestartUnderChaos:
    def test_restart_mid_chaos_matches_uninterrupted_twin(
            self, tiny_split_spec, tiny_parts, normalize, tmp_path):
        overrides = dict(CHAOS, epochs=3, checkpoint_every_s=0.005)
        reference = make_trainer(tiny_split_spec, tiny_parts, normalize,
                                 **overrides)
        ref_history = reference.train()
        assert reference.engine.stats.chaos_events > 0

        trainer = make_trainer(tiny_split_spec, tiny_parts, normalize,
                               checkpoint_dir=str(tmp_path), **overrides)
        trainer.train(epochs=2)
        del trainer  # the coordinator dies mid-chaos
        store = FileCheckpointStore(tmp_path)
        resumed = SpatioTemporalTrainer.resume_from_store(
            store, tiny_split_spec, tiny_parts, train_transform=normalize)
        history = resumed.train(epochs=3)

        assert_same_weights(reference, resumed, atol=1e-9)
        assert resumed.engine.clock == pytest.approx(reference.engine.clock,
                                                     abs=1e-9)
        # The fault stream resumed where it left off: cumulative chaos,
        # retry and dedup counters match the uninterrupted run exactly.
        for name in ("chaos_events", "retries", "deduped", "gave_up"):
            assert getattr(resumed.engine.stats, name) == \
                getattr(reference.engine.stats, name), name
        for key in ("corrupted_messages", "duplicated_messages",
                    "reordered_messages", "retried_messages"):
            assert history.traffic[key] == ref_history.traffic[key], key
        assert history.records[-1].train_loss == pytest.approx(
            ref_history.records[-1].train_loss, abs=1e-9)
