"""Tests for the experiment harness (workloads, registry, runners, CLI)."""

import json

import pytest

from repro.experiments import (
    PAPER_TABLE1,
    ExperimentResult,
    WorkloadSpec,
    build_workload,
    get_experiment,
    list_experiments,
    run_baselines_comparison,
    run_chaos_matrix,
    run_clients_sweep,
    run_compression,
    run_experiment,
    run_figure4,
    run_queue_congestion,
    run_server_failover,
    run_server_sharding,
    run_staleness,
    run_table1,
)
from repro.experiments.cli import build_parser, main


@pytest.fixture(scope="module")
def quick_workload():
    """The smallest workload that still exercises every experiment code path."""
    return WorkloadSpec.laptop(num_samples=240, num_end_systems=2, epochs=1, batch_size=16)


class TestWorkloadSpec:
    def test_laptop_and_paper_presets(self):
        laptop = WorkloadSpec.laptop()
        paper = WorkloadSpec.paper()
        assert laptop.image_size == 16
        assert paper.image_size == 32
        assert paper.architecture().num_blocks == 5
        assert laptop.architecture().num_blocks == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(scale="huge")
        with pytest.raises(ValueError):
            WorkloadSpec(num_end_systems=0)
        with pytest.raises(ValueError):
            WorkloadSpec(num_samples=10, num_end_systems=4)

    def test_build_workload_pieces(self, quick_workload):
        pieces = build_workload(quick_workload)
        assert len(pieces["parts"]) == quick_workload.num_end_systems
        total = sum(len(part) for part in pieces["parts"])
        assert total == len(pieces["train"])
        images, _ = pieces["test"].arrays()
        assert images.shape[1:] == (3, quick_workload.image_size, quick_workload.image_size)


class TestExperimentResult:
    def test_add_row_validates_length(self):
        result = ExperimentResult(name="x", headers=["a", "b"])
        result.add_row([1, 2])
        with pytest.raises(ValueError):
            result.add_row([1])

    def test_column_extraction(self):
        result = ExperimentResult(name="x", headers=["a", "b"])
        result.add_row([1, 2])
        result.add_row([3, 4])
        assert result.column("b") == [2, 4]
        with pytest.raises(KeyError):
            result.column("missing")

    def test_to_table_and_as_dict(self):
        result = ExperimentResult(name="Demo", headers=["metric"], rows=[[1.234]])
        assert "Demo" in result.to_table()
        payload = result.as_dict()
        assert payload["rows"] == [[1.234]]


class TestRegistry:
    def test_all_expected_experiments_registered(self):
        names = {entry.name for entry in list_experiments()}
        assert {"table1", "figure4", "staleness", "clients_sweep", "baselines",
                "compression", "queue_congestion", "server_sharding",
                "server_failover", "chaos_matrix"} <= names

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("bogus")

    def test_entries_reference_paper_artifacts(self):
        assert get_experiment("table1").paper_artifact == "Table I"
        assert get_experiment("figure4").paper_artifact == "Figure 4"


class TestTable1:
    def test_rows_match_requested_cuts(self, quick_workload):
        result = run_table1(workload=quick_workload, client_block_range=[0, 1])
        assert result.column("client_blocks") == [0, 1]
        labels = result.column("layers_at_end_systems")
        assert labels[0].startswith("Nothing")
        assert labels[1] == "L1"

    def test_accuracy_within_bounds_and_reference_attached(self, quick_workload):
        result = run_table1(workload=quick_workload, client_block_range=[0, 1])
        for accuracy in result.column("accuracy_pct"):
            assert 0.0 <= accuracy <= 100.0
        assert result.paper_reference["values_pct"] == PAPER_TABLE1
        # The centralized row's degradation is zero by construction.
        assert result.column("degradation_pct")[0] == pytest.approx(0.0)

    def test_registry_dispatch(self, quick_workload):
        result = run_experiment("table1", workload=quick_workload, client_block_range=[1])
        assert len(result.rows) == 1


class TestFigure4:
    def test_layer_rows_and_monotone_leakage(self, quick_workload):
        result = run_figure4(workload=quick_workload, num_probe_images=60, train_first=False)
        layers = result.column("layer")
        assert layers[0] == "input"
        assert "L1_pool" in layers
        nmse = dict(zip(layers, result.column("reconstruction_nmse")))
        # Post-pooling activations must not reconstruct better than the input.
        assert nmse["L1_pool"] >= nmse["input"] - 1e-6

    def test_requires_at_least_one_block(self, quick_workload):
        with pytest.raises(ValueError):
            run_figure4(workload=quick_workload, client_blocks=0)


class TestStaleness:
    def test_policies_reported(self, quick_workload):
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=2, epochs=1,
                                       batch_size=16)
        result = run_staleness(workload=workload, policies=("fifo", "weighted_fair"),
                               latencies_s=(0.002, 0.1), simulated_budget_s=0.5)
        assert result.column("policy") == ["fifo", "weighted_fair"]
        for fairness in result.column("fairness_index"):
            assert 0.0 < fairness <= 1.0

    def test_latency_count_must_match(self, quick_workload):
        with pytest.raises(ValueError, match="latencies"):
            run_staleness(workload=quick_workload, latencies_s=(0.1,) * 5)


class TestQueueCongestion:
    def test_sweep_rows_and_backpressure_contract(self):
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=8, epochs=1,
                                       batch_size=8)
        result = run_queue_congestion(
            workload=workload,
            capacities=(2, None),
            backpressures=("drop", "block"),
            policies=("fifo",),
            server_step_time_s=0.01,
            near_latency_s=0.002,
            far_latency_s=0.02,
        )
        # (capacity=2 x {drop, block}) + unbounded reference.
        assert len(result.rows) == 3
        keys = list(zip(result.column("capacity"), result.column("backpressure")))
        dropped = dict(zip(keys, result.column("queue_dropped")))
        blocked = dict(zip(keys, result.column("blocked_sends")))
        # A tight bound with drop backpressure sheds work...
        assert dropped[(2, "drop")] > 0
        # ...while block defers sends instead of dropping anything...
        assert dropped[(2, "block")] == 0
        assert blocked[(2, "block")] > 0
        # ...and the unbounded reference does neither.
        assert dropped[("unbounded", "drop")] == 0
        assert blocked[("unbounded", "drop")] == 0

    def test_registry_dispatch(self):
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=4, epochs=1,
                                       batch_size=16)
        result = run_experiment(
            "queue_congestion", workload=workload, capacities=(2,),
            backpressures=("drop",), policies=("fifo",),
        )
        assert len(result.rows) == 1
        assert result.column("policy") == ["fifo"]


class TestServerSharding:
    def test_shard_sweep_rows_and_sync_accounting(self):
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=8, epochs=1,
                                       batch_size=16)
        result = run_server_sharding(
            workload=workload, shard_counts=(1, 2),
            near_latency_s=0.002, far_latency_s=0.03,
        )
        assert result.column("num_servers") == [1, 2]
        for accuracy in result.column("train_accuracy_pct"):
            assert 0.0 <= accuracy <= 100.0
        balance = result.column("clients_per_shard")
        assert balance[0] == "8"
        assert balance[1] == "4/4"
        syncs = dict(zip(result.column("num_servers"), result.column("weight_syncs")))
        sync_mb = dict(zip(result.column("num_servers"), result.column("sync_megabytes")))
        # One server never synchronizes; two shards must, and it costs traffic.
        assert syncs[1] == 0 and sync_mb[1] == 0.0
        assert syncs[2] > 0 and sync_mb[2] > 0.0

    def test_latency_aware_sharding_cuts_queue_wait(self):
        """Splitting off the far latency band must cut the mean queue wait.

        A synchronous epoch still ends when the slowest band's last round
        does, but the near shard's messages stop waiting behind far-away
        arrivals at the (per-shard) barrier — the freshness win sharding
        actually buys in the synchronous regime.
        """
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=8, epochs=1,
                                       batch_size=16)
        result = run_server_sharding(
            workload=workload, shard_counts=(1, 2), shard_assigner="latency_aware",
            near_latency_s=0.002, far_latency_s=0.2, inter_server_latency_s=0.001,
        )
        waits = dict(zip(result.column("num_servers"),
                         result.column("mean_queue_wait_ms")))
        assert waits[2] < 0.6 * waits[1]
        # The sync barrier must not blow the completion time up either:
        # the far band still sets the epoch length.
        times = dict(zip(result.column("num_servers"),
                         result.column("simulated_time_s")))
        assert times[2] <= times[1] * 1.1

    def test_registry_dispatch(self):
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=4, epochs=1,
                                       batch_size=16)
        result = run_experiment("server_sharding", workload=workload,
                                shard_counts=(2,))
        assert len(result.rows) == 1
        assert result.column("num_servers") == [2]


class TestServerFailover:
    def test_sweep_rows_and_churn_accounting(self):
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=8, epochs=1,
                                       batch_size=16)
        result = run_server_failover(
            workload=workload,
            mtbf_values_s=(None, 0.02),
            mttr_s=0.01,
            checkpoint_every_values_s=(None,),
            failover_policies=("rebalance", "standby"),
            sync_modes=("average",),
            near_latency_s=0.002, far_latency_s=0.03,
        )
        # Control (policy-independent) + one row per policy under churn.
        assert len(result.rows) == 3
        # Checkpointing off: no writes, no overhead, every column present.
        assert result.column("ckpt_s") == ["off"] * 3
        assert result.column("ckpts") == [0] * 3
        assert result.column("ckpt_wall_ms") == [0.0] * 3
        crashes = result.column("crashes")
        assert crashes[0] == 0, "the failure-free control must see no crashes"
        assert all(count > 0 for count in crashes[1:])
        # The same seeded churn hits every policy: crash counts match.
        assert crashes[1] == crashes[2]
        policies = result.column("policy")
        reassigned = dict(zip(policies, result.column("reassigned")))
        assert reassigned["rebalance"] > 0
        assert reassigned["standby"] == 0
        downtime = result.column("downtime_s")
        assert downtime[0] == 0.0
        assert all(value > 0 for value in downtime[1:])
        for accuracy in result.column("train_accuracy_pct"):
            assert 0.0 <= accuracy <= 100.0

    def test_checkpoint_axis_bounds_rpo(self):
        """The tentpole claim in one sweep: durable checkpoints shift
        recoveries off the initial-weights fallback and shrink the lost
        work per crash.  ``server_sync_every`` is huge so the sync
        snapshot never exists — without a store, every recovery rewinds
        to the initial weights and the RPO is the whole run so far."""
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=8, epochs=1,
                                       batch_size=16)
        result = run_server_failover(
            workload=workload,
            mtbf_values_s=(0.02,),
            mttr_s=0.01,
            checkpoint_every_values_s=(None, 0.002),
            failover_policies=("standby",),
            sync_modes=("average",),
            server_sync_every=1000,
            near_latency_s=0.002, far_latency_s=0.03,
        )
        assert len(result.rows) == 2
        by_ckpt = {row[result.headers.index("ckpt_s")]: row for row in result.rows}
        assert set(by_ckpt) == {"off", 0.002}
        crashes = result.column("crashes")
        assert crashes[0] == crashes[1] > 0  # same seeded churn on both rows
        index = {name: result.headers.index(name) for name in result.headers}
        off, on = by_ckpt["off"], by_ckpt[0.002]
        # Off: no store, no sync snapshot -> initial-weights recoveries only.
        assert off[index["ckpts"]] == 0
        assert off[index["recovered_from"]].endswith(str(off[index["recoveries"]]))
        # On: checkpoints get written and recovery prefers them.
        assert on[index["ckpts"]] > 0
        assert on[index["ckpt_wall_ms"]] > 0.0
        assert int(on[index["recovered_from"]].split("/")[0]) > 0
        # The point of the feature: less work lost per crash.
        assert on[index["rpo_lost_s"]] < off[index["rpo_lost_s"]]
        assert on[index["rpo_samples"]] <= off[index["rpo_samples"]]

    def test_registry_dispatch(self):
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=4, epochs=1,
                                       batch_size=16)
        result = run_experiment(
            "server_failover", workload=workload,
            mtbf_values_s=(0.05,), failover_policies=("rebalance",),
            sync_modes=("staleness",), checkpoint_every_values_s=(None,),
        )
        assert len(result.rows) == 1
        assert result.column("sync_mode") == ["staleness"]


class TestChaosMatrix:
    def test_matrix_rows_and_reliability_contract(self):
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=8, epochs=1,
                                       batch_size=16)
        regimes = {
            "clean": {},
            "lossy": {"link_drop": 0.2},
        }
        result = run_chaos_matrix(
            workload=workload, regimes=regimes,
            near_latency_s=0.002, far_latency_s=0.03,
        )
        # regime x {off, on}; the runner re-asserts the drop balance per
        # cell, so reaching here already proves leak-freedom.
        assert len(result.rows) == 4
        index = {name: result.headers.index(name) for name in result.headers}
        cells = {(row[index["regime"]], row[index["reliable"]]): row
                 for row in result.rows}
        # The fault-free control drops nothing either way.
        assert cells[("clean", "off")][index["dropped"]] == 0
        assert cells[("clean", "on")][index["dropped"]] == 0
        assert cells[("clean", "on")][index["gave_up"]] == 0
        # Under loss, reliability converts transport drops into retries
        # and silences the client notifications the off row suffered.
        assert cells[("lossy", "off")][index["dropped"]] > 0
        assert cells[("lossy", "off")][index["notified"]] > 0
        assert cells[("lossy", "on")][index["dropped"]] == 0
        assert cells[("lossy", "on")][index["retried"]] > 0
        assert (cells[("lossy", "on")][index["notified"]]
                < cells[("lossy", "off")][index["notified"]]
                + cells[("lossy", "on")][index["gave_up"]] + 1)
        for row in result.rows:
            assert 0.0 <= row[index["train_accuracy_pct"]] <= 100.0

    def test_registry_dispatch(self):
        workload = WorkloadSpec.laptop(num_samples=240, num_end_systems=4, epochs=1,
                                       batch_size=16)
        result = run_experiment(
            "chaos_matrix", workload=workload,
            regimes={"clean": {}}, reliability_values=(False,),
        )
        assert len(result.rows) == 1
        assert result.column("reliable") == ["off"]


class TestClientsSweepAndBaselines:
    def test_clients_sweep_rows(self):
        workload = WorkloadSpec.laptop(num_samples=240, epochs=1, batch_size=16)
        result = run_clients_sweep(workload=workload, num_end_systems=(1, 2))
        assert result.column("num_end_systems") == [1, 2]
        assert all(0 <= value <= 100 for value in result.column("accuracy_pct"))

    def test_compression_rows_and_traffic_ordering(self, quick_workload):
        result = run_compression(
            workload=quick_workload,
            transforms=({"name": "none"}, {"name": "uint8"}),
        )
        labels = result.column("transform")
        assert labels == ["none", "uint8"]
        traffic = result.column("uplink_megabytes")
        # 8-bit quantization must not increase traffic over the raw baseline.
        assert traffic[1] < traffic[0]
        relative = result.column("uplink_vs_baseline")
        assert relative[0] == pytest.approx(1.0)

    def test_baselines_comparison_rows(self, quick_workload):
        result = run_baselines_comparison(
            workload=quick_workload,
            methods=("centralized", "spatio_temporal"),
        )
        methods = result.column("method")
        assert methods == ["centralized", "spatio_temporal"]
        leak = dict(zip(methods, result.column("raw_data_leaves_client")))
        assert leak["centralized"] == "yes"
        assert leak["spatio_temporal"] == "no"


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "table1" in output and "figure4" in output

    def test_run_command_table(self, capsys):
        code = main(["run", "table1", "--num-samples", "240", "--end-systems", "2",
                     "--epochs", "1", "--batch-size", "16"])
        assert code == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_command_json(self, capsys):
        code = main(["run", "clients_sweep", "--num-samples", "240", "--end-systems", "2",
                     "--epochs", "1", "--batch-size", "16", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"].startswith("Ablation")

    def test_parser_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_parser_workload_options(self):
        args = build_parser().parse_args(["run", "table1", "--scale", "paper", "--seed", "3"])
        assert args.scale == "paper"
        assert args.seed == 3

    def test_run_without_flags_uses_the_experiments_canonical_workload(self):
        from repro.experiments.cli import _workload_from_args

        bare = build_parser().parse_args(["run", "server_sharding"])
        assert _workload_from_args(bare, required=False) is None
        tuned = build_parser().parse_args(["run", "server_sharding", "--epochs", "1"])
        workload = _workload_from_args(tuned, required=False)
        assert workload is not None and workload.epochs == 1
        # run-all keeps the explicit shared workload either way.
        shared = build_parser().parse_args(["run-all"])
        assert _workload_from_args(shared) is not None
