"""Reproduce the paper's Fig. 4: what does the server actually see?

Fig. 4 shows an original CIFAR-10 image next to (b) the activation after
the Conv2D of block L1 and (c) the activation after the full L1 block
(Conv2D + MaxPooling2D): the convolution output is blurred but still
recognizable, the pooled output is not.

This example renders the same three "image captures" as ASCII heat-maps
(no plotting dependencies needed), then quantifies the visual impression
with the leakage metrics from :mod:`repro.core.privacy` — pixel
correlation with the original and the quality a linear reconstruction
attack achieves.

Run with::

    python examples/privacy_visualization.py
"""

from __future__ import annotations

import numpy as np

from repro import SplitSpec, SpatioTemporalTrainer, TrainingConfig, tiny_cnn_architecture
from repro.core.privacy import activation_to_images, leakage_report, upsample_nearest
from repro.data import IIDPartitioner, Normalize, SyntheticCIFAR10, train_test_split
from repro.nn import Tensor, no_grad
from repro.utils.tables import format_table

ASCII_RAMP = " .:-=+*#%@"


def ascii_heatmap(image: np.ndarray, width: int = 32) -> str:
    """Render a 2-D array as an ASCII heat-map (dark = low, bright = high)."""
    if image.shape[0] != width:
        image = upsample_nearest(image[None], width)[0]
    normalized = (image - image.min()) / max(image.max() - image.min(), 1e-12)
    characters = (normalized * (len(ASCII_RAMP) - 1)).astype(int)
    return "\n".join("".join(ASCII_RAMP[value] for value in row) for row in characters)


def main() -> None:
    # Train a small split deployment first so the L1 filters are realistic.
    dataset = SyntheticCIFAR10(num_samples=900, image_size=16, seed=0,
                               pixel_noise=0.15, deformation_noise=0.3)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
    parts = IIDPartitioner(3, seed=0).partition(train)
    architecture = tiny_cnn_architecture(image_size=16, num_blocks=3,
                                         base_filters=8, dense_units=64)
    split = SplitSpec(architecture, client_blocks=1)
    normalize = Normalize(mean=[0.5, 0.5, 0.5], std=[0.5, 0.5, 0.5])
    trainer = SpatioTemporalTrainer(
        split, parts, TrainingConfig(epochs=3, batch_size=32, seed=0),
        train_transform=normalize,
    )
    print("training a small split deployment so the first-block filters are realistic...")
    trainer.train()

    # Pick one test image and capture the per-layer activations (Fig. 4).
    images, _ = test.arrays()
    sample = images[:1]
    client_model = trainer.end_systems[0].model
    client_model.eval()
    with no_grad():
        activations = client_model.forward_collect(Tensor(sample))

    captures = {
        "(a) original image": sample.mean(axis=1)[0],
        "(b) after Conv2D of L1": activation_to_images(activations["L1_conv"].data)[0],
        "(c) after L1 (Conv2D + MaxPooling2D)": activation_to_images(activations["L1_pool"].data)[0],
    }
    for title, capture in captures.items():
        print(f"\n{title}  [{capture.shape[0]}x{capture.shape[1]}]")
        print(ascii_heatmap(capture, width=16))

    # Quantify the impression across a probe set.
    report = leakage_report(client_model, images[:200])
    print()
    print(format_table(
        ["layer", "pixel_correlation", "reconstruction_nmse", "reconstruction_ssim"],
        [[entry.layer, entry.correlation, entry.reconstruction_nmse, entry.reconstruction_ssim]
         for entry in report],
        float_format="{:.3f}",
        title="Fig. 4 quantified: leakage per client-side layer",
    ))
    print("\nExpected shape: correlation and reconstruction quality drop from the raw")
    print("input to the post-pooling activation — max-pooling is what hides the image.")


if __name__ == "__main__":
    main()
