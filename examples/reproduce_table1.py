"""Reproduce the paper's Table I: accuracy vs. layers at the end-systems.

Runs the Table-I sweep (cut = nothing, L1, L1-L2, ...) on the laptop-scale
workload and prints the measured accuracies next to the values the paper
reports for CIFAR-10.  Pass ``--scale paper`` for the full-size Fig.-3 CNN
on 32x32 images (takes minutes instead of seconds).

Run with::

    python examples/reproduce_table1.py
    python examples/reproduce_table1.py --scale paper --epochs 15
"""

from __future__ import annotations

import argparse

from repro.experiments import WorkloadSpec, run_table1


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--scale", choices=["laptop", "paper"], default="laptop")
    parser.add_argument("--samples", type=int, default=None, help="synthetic dataset size")
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--end-systems", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    factory = WorkloadSpec.paper if args.scale == "paper" else WorkloadSpec.laptop
    overrides = {"num_end_systems": args.end_systems, "seed": args.seed}
    if args.samples is not None:
        overrides["num_samples"] = args.samples
    if args.epochs is not None:
        overrides["epochs"] = args.epochs
    workload = factory(**overrides)

    print(f"workload: scale={workload.scale}, {workload.num_samples} samples, "
          f"{workload.num_end_systems} end-systems, {workload.epochs} epochs")
    print("running the Table-I sweep (this trains one model per row)...\n")

    result = run_table1(workload=workload)
    print(result.to_table())
    print()

    accuracies = result.column("accuracy_pct")
    degradation = accuracies[0] - min(accuracies)
    print(f"measured worst-case degradation vs. centralized: {degradation:.2f} points")
    print("paper's worst-case degradation (Table I):          5.43 points")
    print("\nExpected shape: the centralized row is the best and accuracy degrades")
    print("gradually as more blocks move to the end-systems, while raw data never")
    print("leaves them for any row except the first.")


if __name__ == "__main__":
    main()
