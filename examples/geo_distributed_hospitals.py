"""Geo-distributed hospitals: the paper's motivating medical scenario.

The paper motivates spatio-temporal split learning with geo-distributed
medical systems: hospitals hold patient data that cannot legally leave
the premises, yet a single model should be trained on all of it.  This
example builds that deployment end to end:

* five "hospitals" in different cities, each with a *non-IID* local
  dataset (Dirichlet label skew — one hospital sees mostly a few disease
  classes),
* WAN links whose latencies follow real geographic distances to a
  centralized server in Seoul (the authors' institution),
* asynchronous training under a fixed simulated time budget, comparing a
  naive FIFO queue against the weighted-fair scheduling policy the
  paper's queue discussion calls for.

Run with::

    python examples/geo_distributed_hospitals.py
"""

from __future__ import annotations

from repro import SplitSpec, SpatioTemporalTrainer, TrainingConfig, tiny_cnn_architecture
from repro.data import DirichletPartitioner, Normalize, SyntheticCIFAR10, train_test_split
from repro.data.partition import partition_summary
from repro.simnet import geo_star_topology
from repro.utils.tables import format_table

HOSPITAL_CITIES = ["tokyo", "singapore", "frankfurt", "new_york", "sao_paulo"]


def build_hospital_data(seed: int = 0):
    """Synthetic patient images, skewed so each hospital sees different classes."""
    dataset = SyntheticCIFAR10(num_samples=1500, image_size=16, seed=seed,
                               pixel_noise=0.15, deformation_noise=0.3)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=seed)
    shards = DirichletPartitioner(len(HOSPITAL_CITIES), alpha=0.5, seed=seed).partition(train)
    return train, test, shards


def run_policy(policy: str, shards, test, seed: int = 0):
    """Train asynchronously for a fixed simulated time budget under one policy."""
    architecture = tiny_cnn_architecture(image_size=16, num_blocks=3,
                                         base_filters=8, dense_units=64)
    split = SplitSpec(architecture, client_blocks=1)
    topology = geo_star_topology(HOSPITAL_CITIES, server_city="seoul", seed=seed)
    config = TrainingConfig(
        epochs=4, batch_size=32, seed=seed,
        mode="asynchronous", queue_policy=policy,
        max_in_flight=2, server_step_time_s=0.02,
        # Per-message server steps: batched draining would empty the queue
        # every step and erase the contention the policies arbitrate.
        server_batching=False,
    )
    trainer = SpatioTemporalTrainer(
        split, shards, config, topology=topology,
        train_transform=Normalize(mean=[0.5] * 3, std=[0.5] * 3),
    )
    history = trainer.train_time_budget(simulated_seconds=8.0, test_dataset=test)
    return trainer, history


def main() -> None:
    train, test, shards = build_hospital_data()

    print("Hospitals and their (non-IID) local data:")
    summary = partition_summary(shards, num_classes=10)
    rows = []
    for hospital_id, city in enumerate(HOSPITAL_CITIES):
        entry = summary[hospital_id]
        dominant = max(range(10), key=lambda cls: entry["class_histogram"][cls])
        rows.append([city, entry["num_samples"], f"class {dominant}"])
    print(format_table(["hospital", "local samples", "dominant class"], rows))
    print()

    print("Training asynchronously for an 8-second simulated budget over real WAN "
          "distances (server in Seoul)...\n")
    comparison_rows = []
    for policy in ("fifo", "weighted_fair"):
        trainer, history = run_policy(policy, shards, test)
        latencies = trainer.topology.mean_latencies()
        per_system = history.per_system_accuracy
        updates = trainer.per_system_update_counts()
        comparison_rows.append([
            policy,
            100.0 * (history.final_test_accuracy or 0.0),
            history.queue_stats["fairness_index"],
            min(per_system.values()) * 100.0,
            sum(updates.values()),
        ])
        print(format_table(
            ["hospital", "one-way latency (ms)", "updates applied", "test accuracy (%)"],
            [[city,
              1e3 * latencies[node],
              updates[hospital_id],
              100.0 * per_system[hospital_id]]
             for hospital_id, (city, node) in enumerate(
                 zip(HOSPITAL_CITIES, trainer.topology.end_systems))],
            float_format="{:.1f}",
            title=f"Per-hospital outcome under the '{policy}' queue policy",
        ))
        print()

    print(format_table(
        ["queue policy", "mean accuracy (%)", "fairness index", "worst hospital (%)",
         "total updates"],
        comparison_rows,
        float_format="{:.2f}",
        title="FIFO vs. weighted-fair scheduling (paper Fig. 2 discussion)",
    ))
    print("\nExpected shape: nearby hospitals complete more updates inside the budget;")
    print("fairness-aware scheduling narrows the gap the paper warns about.")


if __name__ == "__main__":
    main()
