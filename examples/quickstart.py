"""Quickstart: train a spatio-temporal split-learning deployment in ~30 seconds.

This example builds the smallest end-to-end deployment that still shows
every moving part of the paper's framework:

1. a synthetic CIFAR-10-like dataset, partitioned IID across 3 end-systems,
2. the block-structured CNN of the paper's Fig. 3 (scaled down),
3. a split at L1 — each end-system keeps Conv2D+MaxPooling2D block 1 and its
   raw data, the centralized server keeps everything else,
4. synchronous training over a simulated star network, and
5. evaluation plus a privacy check on the smashed activations.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SplitSpec, SpatioTemporalTrainer, TrainingConfig, tiny_cnn_architecture
from repro.core.privacy import leakage_report
from repro.data import IIDPartitioner, Normalize, SyntheticCIFAR10, train_test_split
from repro.utils.tables import format_table


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Data: a synthetic CIFAR-10 stand-in, split across 3 "hospitals".
    # ------------------------------------------------------------------ #
    dataset = SyntheticCIFAR10(num_samples=1200, image_size=16, seed=0,
                               pixel_noise=0.15, deformation_noise=0.3)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
    end_system_shards = IIDPartitioner(num_parts=3, seed=0).partition(train)
    print(f"dataset: {len(train)} train / {len(test)} test samples, "
          f"{len(end_system_shards)} end-systems "
          f"({[len(shard) for shard in end_system_shards]} samples each)")

    # ------------------------------------------------------------------ #
    # 2. Model + split: block L1 stays on every end-system.
    # ------------------------------------------------------------------ #
    architecture = tiny_cnn_architecture(image_size=16, num_blocks=3,
                                         base_filters=8, dense_units=64)
    split = SplitSpec(architecture, client_blocks=1)
    print(f"architecture: {architecture.describe()}")
    print(f"split: end-systems hold {split.label}; smashed activation shape "
          f"{split.smashed_shape}")

    # ------------------------------------------------------------------ #
    # 3. Train synchronously over a simulated star network.
    # ------------------------------------------------------------------ #
    config = TrainingConfig(epochs=6, batch_size=32, client_lr=1e-3, server_lr=1e-3, seed=0)
    normalize = Normalize(mean=[0.5, 0.5, 0.5], std=[0.5, 0.5, 0.5])
    trainer = SpatioTemporalTrainer(split, end_system_shards, config,
                                    train_transform=normalize)
    history = trainer.train(test_dataset=test)

    print()
    print(format_table(
        ["epoch", "train_acc", "test_acc", "simulated_time_s"],
        [[record.epoch,
          record.train_accuracy,
          record.test_accuracy if record.test_accuracy is not None else float("nan"),
          record.simulated_time_s]
         for record in history],
        float_format="{:.3f}",
        title="Training progress",
    ))
    print()
    print(f"final test accuracy: {history.final_test_accuracy:.1%}")
    print(f"uplink traffic:      {history.traffic['uplink_megabytes']:.1f} MB")
    print(f"queue fairness:      {history.queue_stats['fairness_index']:.3f}")

    # ------------------------------------------------------------------ #
    # 4. Privacy: what could the server reconstruct from what it received?
    # ------------------------------------------------------------------ #
    probe_images, _ = test.arrays()
    report = leakage_report(trainer.end_systems[0].model, probe_images[:150])
    print()
    print(format_table(
        ["layer", "pixel_correlation", "reconstruction_nmse"],
        [[entry.layer, entry.correlation, entry.reconstruction_nmse] for entry in report],
        float_format="{:.3f}",
        title="Leakage per client-side layer (higher NMSE = better privacy)",
    ))


if __name__ == "__main__":
    main()
