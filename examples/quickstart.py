"""Quickstart: train a spatio-temporal split-learning deployment in ~30 seconds.

This example builds the smallest end-to-end deployment that still shows
every moving part of the paper's framework, driven entirely through the
public API (:mod:`repro.api`):

1. a :class:`~repro.api.JobSpec` — the versioned, JSON-serializable
   description of the whole job: a synthetic CIFAR-10-like dataset
   partitioned IID across 3 end-systems, the block-structured CNN of the
   paper's Fig. 3 (scaled down), and a split at L1 — each end-system
   keeps Conv2D+MaxPooling2D block 1 and its raw data, the centralized
   server keeps everything else,
2. synchronous training over a simulated star network, and
3. evaluation plus a privacy check on the smashed activations.

The same spec, serialized with ``spec.to_json_dict()``, is exactly what
``POST /v1/jobs`` on the run-server accepts — see
``examples/run_server_job.py``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import json

from repro.api import JobSpec, JobWorkload, build_trainer, build_workload
from repro.core.config import TrainingConfig
from repro.core.privacy import leakage_report
from repro.utils.tables import format_table


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Describe the whole job as one versioned, serializable spec.
    # ------------------------------------------------------------------ #
    spec = JobSpec(
        name="quickstart",
        workload=JobWorkload(num_samples=1200, num_end_systems=3,
                             partition="iid", client_blocks=1, seed=0),
        config=TrainingConfig(epochs=6, batch_size=32, client_lr=1e-3,
                              server_lr=1e-3, seed=0),
    )
    print("JobSpec (what POST /v1/jobs would accept):")
    print(json.dumps(spec.to_json_dict(), indent=2)[:400] + " ...")
    print()

    # ------------------------------------------------------------------ #
    # 2. Materialize it: dataset, shards, architecture, split.
    # ------------------------------------------------------------------ #
    pieces = build_workload(spec.workload)
    print(f"dataset: {len(pieces.train)} train / {len(pieces.test)} test "
          f"samples, {len(pieces.parts)} end-systems "
          f"({[len(shard) for shard in pieces.parts]} samples each)")
    print(f"architecture: {pieces.architecture.describe()}")
    print(f"split: end-systems hold {pieces.split_spec.label}; smashed "
          f"activation shape {pieces.split_spec.smashed_shape}")

    # ------------------------------------------------------------------ #
    # 3. Train synchronously over a simulated star network.
    # ------------------------------------------------------------------ #
    trainer = build_trainer(spec, pieces=pieces)
    history = trainer.train(test_dataset=pieces.test)

    print()
    print(format_table(
        ["epoch", "train_acc", "test_acc", "simulated_time_s"],
        [[record.epoch,
          record.train_accuracy,
          record.test_accuracy if record.test_accuracy is not None else float("nan"),
          record.simulated_time_s]
         for record in history],
        float_format="{:.3f}",
        title="Training progress",
    ))
    print()
    print(f"final test accuracy: {history.final_test_accuracy:.1%}")
    print(f"uplink traffic:      {history.traffic['uplink_megabytes']:.1f} MB")
    print(f"queue fairness:      {history.queue_stats['fairness_index']:.3f}")

    # ------------------------------------------------------------------ #
    # 4. Privacy: what could the server reconstruct from what it received?
    # ------------------------------------------------------------------ #
    probe_images, _ = pieces.test.arrays()
    report = leakage_report(trainer.end_systems[0].model, probe_images[:150])
    print()
    print(format_table(
        ["layer", "pixel_correlation", "reconstruction_nmse"],
        [[entry.layer, entry.correlation, entry.reconstruction_nmse] for entry in report],
        float_format="{:.3f}",
        title="Leakage per client-side layer (higher NMSE = better privacy)",
    ))


if __name__ == "__main__":
    main()
