"""Submit a training job to a run-server and follow it over the /v1 API.

This example is the client half of the control plane: it starts a
run-server in a subprocess (in real use it would already be running —
``python -m repro.server --root run-server``), then drives one job
through its whole lifecycle with :class:`repro.api.RunClient`:

1. ``POST /v1/jobs`` — submit a versioned JSON JobSpec,
2. ``GET /v1/jobs/<id>/metrics`` — stream metrics rows while it trains,
3. ``POST /v1/jobs/<id>/pause`` — SIGKILL the worker mid-run,
4. ``POST /v1/jobs/<id>/resume`` — restart replay-exact from the newest
   durable checkpoint (a different worker process, same result), and
5. ``GET /v1/jobs/<id>/result`` — fetch the final summary.

Run with::

    python examples/run_server_job.py
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.api import JobSpec, RunClient, ServerUnavailable


def wait_for_server(client: RunClient, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            client.health()
            return
        except ServerUnavailable:
            time.sleep(0.1)
    raise RuntimeError("run-server did not come up in time")


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="run-server-example-"))
    port = 8321
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.server",
         "--root", str(root), "--port", str(port)],
    )
    client = RunClient(f"http://127.0.0.1:{port}")
    try:
        wait_for_server(client)
        print(f"run-server up: {client.health()}")

        # 1. Submit: the body is spec.to_json_dict() — plain versioned JSON.
        spec = JobSpec.fast_debug(name="example", epochs=4)
        job_id = client.submit(spec)
        print(f"submitted {job_id}")

        # 2. Poll metrics while the job trains: one JSONL row per obs
        #    flush, identical to what metrics.jsonl will hold on disk.
        seen = 0
        interrupted_once = False
        while True:
            record = client.status(job_id)
            rows = client.metrics(job_id, since=seen)
            for row in rows:
                print(f"  t={row['t']:.3f}s: {len(row['metrics'])} series")
            seen += len(rows)
            if record["state"] in ("completed", "failed"):
                break
            # 3./4. Pause (SIGKILL the worker) once, then resume: the new
            #       worker replays from the checkpoint bit-exactly.
            if (not interrupted_once
                    and record.get("epochs_completed", 0) >= 2
                    and record["state"] == "running"):
                interrupted_once = True
                print(f"pausing at epoch {record['epochs_completed']} ...")
                client.pause(job_id)
                print("resuming (new worker process, same trajectory) ...")
                client.resume(job_id)
            time.sleep(0.2)

        # 5. Result: the run history summary the worker wrote at the end.
        record = client.wait(job_id)
        print(f"final state: {record['state']} after "
              f"{record['attempts']} worker attempt(s)")
        summary = client.result(job_id)["summary"]
        print(f"final test accuracy: {summary['final_test_accuracy']:.1%}")
        print(f"job directory: {root / 'jobs' / job_id}")
    finally:
        server.terminate()
        server.wait(timeout=10)


if __name__ == "__main__":
    main()
