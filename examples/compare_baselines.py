"""Compare spatio-temporal split learning against the standard alternatives.

Trains four paradigms on the *same* partitioned workload and budget:

* centralized training (all raw data pooled at the server — no privacy),
* sequential split learning (one shared client segment visited in turns,
  the classic Vepakomma et al. protocol),
* FedAvg (every client trains a full local model copy; weights averaged),
* spatio-temporal split learning (this paper).

The comparison prints accuracy, whether raw data ever leaves a client,
and the number of parameters a client has to host — the three axes the
paper's introduction argues about.

Run with::

    python examples/compare_baselines.py
"""

from __future__ import annotations

import argparse

from repro.experiments import WorkloadSpec, run_baselines_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--samples", type=int, default=1200)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--end-systems", type=int, default=4)
    parser.add_argument("--client-blocks", type=int, default=1,
                        help="CNN blocks held by each end-system for the split variants")
    args = parser.parse_args()

    workload = WorkloadSpec.laptop(
        num_samples=args.samples,
        epochs=args.epochs,
        num_end_systems=args.end_systems,
    )
    print(f"workload: {workload.num_samples} samples across "
          f"{workload.num_end_systems} clients, {workload.epochs} epochs/rounds each\n")
    print("training all four paradigms (this takes a few minutes)...\n")

    result = run_baselines_comparison(workload=workload, client_blocks=args.client_blocks)
    print(result.to_table())
    print()
    print("How to read this table:")
    print(" * 'centralized' is the non-private upper bound (Table I row 1).")
    print(" * the split variants keep raw data on the clients and only host the first")
    print(f"   {args.client_blocks} block(s) locally — a tiny fraction of the full model.")
    print(" * FedAvg also keeps data local but every client must host and train the")
    print("   entire network, which is exactly what thin medical end-systems cannot do.")


if __name__ == "__main__":
    main()
